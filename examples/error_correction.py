"""Error correction with spin-wave logic: TMR and Hamming(7,4).

Section II-B of the paper motivates majority hardware with error
detection and correction.  This example builds two classic schemes
entirely from the triangle gate library and exercises them against
injected faults:

* triple modular redundancy (MAJ3 voter) masking module failures;
* a Hamming(7,4) single-error corrector (XOR syndrome chains + AND
  decoders) repairing any single-bit channel flip.

Run with ``python examples/error_correction.py``.
"""

import random
from itertools import product

from repro.circuits import CircuitSimulator
from repro.circuits.faults import StuckAtFault, FaultySimulator, fault_coverage, tmr_netlist, xor_module
from repro.circuits.hamming import (
    hamming74_corrector_netlist,
    hamming74_encode,
    hamming74_encoder_netlist,
    run_corrector,
)


def demo_tmr() -> None:
    netlist = tmr_netlist(xor_module, n_inputs=2)
    print(f"TMR(XOR) netlist: {netlist.gate_count} gates "
          f"({netlist.count_by_type()})")
    clean = CircuitSimulator(netlist)
    for bits in product((0, 1), repeat=2):
        inputs = {"d0": bits[0], "d1": bits[1]}
        vote = clean.run(inputs).outputs["vote"]
        print(f"  inputs {bits}: vote = {vote}")
    # Break one module copy and show the voter masking it.
    broken = FaultySimulator(netlist, StuckAtFault("m1_y", 1))
    masked = all(
        broken.run({"d0": a, "d1": b}).outputs["vote"]
        == clean.run({"d0": a, "d1": b}).outputs["vote"]
        for a, b in product((0, 1), repeat=2))
    print(f"  module m1 output stuck at 1 -> voter masks it: {masked}\n")


def demo_hamming(n_messages: int = 6, seed: int = 7) -> None:
    rng = random.Random(seed)
    encoder = CircuitSimulator(hamming74_encoder_netlist())
    corrector = CircuitSimulator(hamming74_corrector_netlist())
    print("Hamming(7,4) over spin-wave XOR/AND/NOT gates:")
    for _ in range(n_messages):
        data = tuple(rng.randint(0, 1) for _ in range(4))
        inputs = {f"d{i + 1}": b for i, b in enumerate(data)}
        outputs = encoder.run(inputs).outputs
        codeword = [outputs[f"c{i}"] for i in range(1, 8)]
        assert tuple(codeword) == hamming74_encode(data)
        error = rng.randint(0, 7)
        received = codeword.copy()
        note = "clean"
        if error:
            received[error - 1] ^= 1
            note = f"bit {error} flipped"
        decoded = run_corrector(corrector, received)
        status = "OK" if decoded == data else "FAIL"
        print(f"  data {data} -> codeword {tuple(codeword)} "
              f"-> channel: {note:>13} -> decoded {decoded}  [{status}]")

    report = fault_coverage(hamming74_corrector_netlist())
    print(f"\n  corrector testability: {report.coverage * 100:.0f} % "
          f"single-stuck-at coverage over {report.n_faults} faults "
          "(exhaustive vectors)")


def main() -> None:
    demo_tmr()
    demo_hamming()


if __name__ == "__main__":
    main()
