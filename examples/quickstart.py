"""Quickstart: evaluate the paper's triangle FO2 gates.

Run with ``python examples/quickstart.py``.  Demonstrates:

* the MAJ3 gate with phase detection (Table I configuration),
* the XOR gate with threshold detection (Table II configuration),
* the derived AND/OR/NAND/NOR gates (control input on I3),
* the energy/delay numbers of Table III.
"""

from repro import (
    DerivedTriangleGate,
    TriangleMajorityGate,
    TriangleXorGate,
    paper_table_i_gate,
)
from repro.core.logic import input_patterns
from repro.evaluation import format_table_iii, headline_ratios
from repro.io import format_truth_table


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The FO2 Majority gate: phase in, phase out.
    # ------------------------------------------------------------------
    maj = TriangleMajorityGate()
    print("Triangle FO2 MAJ3 gate "
          f"({maj.n_excitation_cells} excitation + "
          f"{maj.n_detection_cells} detection cells)")
    rows = []
    for bits in input_patterns(3):
        result = maj.evaluate(bits)
        rows.append([result.outputs["O1"].logic_value,
                     result.outputs["O2"].logic_value,
                     result.expected,
                     "ok" if result.correct else "FAIL"])
    print(format_truth_table(input_patterns(3),
                             ["O1", "O2", "expected", "status"],
                             rows, ["I1", "I2", "I3"]))

    # ------------------------------------------------------------------
    # 2. Table I amplitudes from the calibrated model.
    # ------------------------------------------------------------------
    print("\nNormalised output magnetisation (calibrated to Table I):")
    for bits, (o1, o2) in paper_table_i_gate() \
            .normalized_output_table().items():
        print(f"  {bits} -> O1 = {o1:.3f}, O2 = {o2:.3f}")

    # ------------------------------------------------------------------
    # 3. The FO2 XOR gate: threshold detection.
    # ------------------------------------------------------------------
    xor_gate = TriangleXorGate()
    print("\nTriangle FO2 XOR gate (threshold 0.5):")
    for bits in input_patterns(2):
        result = xor_gate.evaluate(bits)
        print(f"  {bits} -> O1 = {result.outputs['O1'].logic_value}, "
              f"O2 = {result.outputs['O2'].logic_value} "
              f"(amplitude {result.outputs['O1'].amplitude:.2f})")

    # ------------------------------------------------------------------
    # 4. Derived gates: I3 as a control input.
    # ------------------------------------------------------------------
    print("\nDerived 2-input gates (I3 = control):")
    for name in ("AND", "OR", "NAND", "NOR"):
        gate = DerivedTriangleGate(name)
        values = [gate.evaluate(a, b).outputs["O1"].logic_value
                  for a, b in input_patterns(2)]
        print(f"  {name:<4} (I3 = {gate.control_value}): "
              f"{dict(zip(input_patterns(2), values))}")

    # ------------------------------------------------------------------
    # 5. Performance summary (Table III).
    # ------------------------------------------------------------------
    print()
    print(format_table_iii())
    ratios = headline_ratios()
    print(f"\nEnergy saving vs ladder SW gates: "
          f"{ratios.energy_saving_vs_sw_maj * 100:.0f} % (MAJ), "
          f"{ratios.energy_saving_vs_sw_xor * 100:.0f} % (XOR)")


if __name__ == "__main__":
    main()
