"""Scaling extensions: n-bit parallel operation and deep gate cascades.

Demonstrates the two growth directions of Section III-A on top of the
core library:

* a frequency-multiplexed triangle gate computing bitwise majority of
  three 8-bit words in a single pass (the ref [9] direction);
* cascade-depth analysis with automatic repeater planning -- how deep
  an all-magnonic pipeline can run before regeneration.

Run with ``python examples/parallel_and_cascade.py``.
"""

from repro.circuits.cascade import CascadeAnalyzer, triangle_stage_model
from repro.core.extended import FanoutTree, TriangleMajority5Gate
from repro.core.parallel import ParallelMajorityGate
from repro.physics import FECOB, AttenuationModel, DispersionRelation, FilmStack


def demo_parallel() -> None:
    dispersion = DispersionRelation(FilmStack(material=FECOB,
                                              thickness=1e-9))
    gate = ParallelMajorityGate(dispersion, n_channels=8,
                                centre_frequency=17e9,
                                channel_spacing=0.05e9)
    print("Frequency-multiplexed MAJ3 (8 channels):")
    for row in gate.channel_summary():
        print(f"  {row}")
    a, b, c = 0b10110100, 0b11010110, 0b01110010
    result, o1, o2 = gate.evaluate_word(a, b, c)
    expected = (a & b) | (a & c) | (b & c)
    print(f"  MAJ({a:#010b}, {b:#010b}, {c:#010b}) = {result:#010b} "
          f"(expected {expected:#010b}) "
          f"{'OK' if result == expected else 'MISMATCH'}")
    print(f"  both outputs identical (FO2): {o1 == o2}")
    print(f"  throughput gain: x{gate.throughput_gain():.0f}\n")


def demo_maj5() -> None:
    gate = TriangleMajority5Gate()
    print(f"Fan-in-5 majority (stacked inputs, {gate.n_cells} cells): "
          f"all 32 patterns correct = {gate.is_functionally_correct()}")
    outputs = gate.evaluate((1, 0, 1, 1, 0))
    print(f"  MAJ5(1,0,1,1,0) -> O1 = {outputs['O1'].logic_value}, "
          f"O2 = {outputs['O2'].logic_value}\n")


def demo_cascade() -> None:
    attenuation = AttenuationModel(decay_length=3.3e-6)
    analyzer = CascadeAnalyzer(attenuation, min_detectable=0.05)
    best = triangle_stage_model(worst_case=False)
    worst = triangle_stage_model(worst_case=True)
    print("Cascade-depth budget (detect threshold 5 % of nominal):")
    print(f"  best case (unanimous inputs)   : "
          f"{analyzer.max_depth(best)} stages without repeater")
    print(f"  worst case (Table I minorities): "
          f"{analyzer.max_depth(worst)} stages without repeater")
    report = analyzer.plan([best] * 25)
    print(f"  25-stage pipeline plan: repeaters before stages "
          f"{list(report.repeater_positions)}, "
          f"+{report.total_repeater_energy * 1e18:.1f} aJ, "
          f"+{report.added_delay * 1e9:.2f} ns")

    tree = FanoutTree()
    print(f"\nFan-out trees: max achievable fan-out = {tree.max_fanout()}")
    for n in (4, 16):
        plan = tree.plan(n)
        print(f"  FO{n}: {plan.n_couplers} couplers + {plan.n_repeaters} "
              f"repeaters, energy {plan.energy * 1e18:.1f} aJ")


def main() -> None:
    demo_parallel()
    demo_maj5()
    demo_cascade()


if __name__ == "__main__":
    main()
