"""Design-space exploration for triangle FO2 gates.

The paper's structure is "generic and its dimensions are indicated in
Figure 3" -- everything scales with the operating wavelength.  This
script sweeps candidate wavelengths on the paper's FeCoB film, derives
for each one the full gate dimension set, the dispersion operating
point (frequency, group velocity, attenuation length) and the resulting
loss margins, then prints a design table.

Each candidate wavelength is one independent job
(:func:`repro.runtime.jobs.gate_design_point`) submitted through the
experiment-orchestration engine: design points evaluate in parallel
across worker processes, and a persistent content-addressed cache under
``.repro_cache/`` makes re-exploration (add a wavelength, rerun)
instantaneous for the points already computed.

Run with ``python examples/design_explorer.py``; pass extra
wavelengths in nm as arguments (``python examples/design_explorer.py
70 95``) to see the cache at work.
"""

import sys

from repro.io import format_table
from repro.runtime import DiskCache, Executor
from repro.runtime.jobs import gate_design_point


def explore(wavelengths_nm, executor=None) -> str:
    executor = executor or Executor(workers=4, cache=DiskCache())
    result = executor.map(
        gate_design_point,
        [{"wavelength_nm": float(lam)} for lam in wavelengths_nm],
        label="design-point").raise_on_failure()
    rows = []
    for point in result.values:
        rows.append([
            f"{point['wavelength_nm']:.0f}",
            f"{point['frequency_ghz']:.1f}",
            f"{point['group_velocity_m_s']:.0f}",
            f"{point['attenuation_length_um']:.1f}",
            f"{point['d2_nm']:.0f}",
            f"{point['longest_path_nm']:.0f}",
            f"{point['path_over_l_att'] * 100:.0f} %",
            "yes" if point["logic_ok"] else "NO",
        ])
    table = format_table(
        ["lambda (nm)", "f (GHz)", "v_g (m/s)", "L_att (um)",
         "d2 (nm)", "longest path (nm)", "path/L_att", "logic OK"],
        rows,
        title="Triangle MAJ3 design space on 1 nm Fe60Co20B20")
    return table + "\n\n" + result.report.summary()


def main() -> None:
    extra = [float(arg) for arg in sys.argv[1:]]
    print(explore([30, 40, 55, 80, 110, 160] + extra))
    print("\nNotes:")
    print(" * the paper's design point is lambda = 55 nm")
    print(" * shorter wavelengths shrink the gate but raise the operating")
    print("   frequency and the fractional propagation loss")
    print(" * 'logic OK' runs the full 8-pattern truth table through the")
    print("   damping-calibrated network model at each design point")
    print(" * design points are engine jobs: parallel workers, cached in")
    print("   .repro_cache/ -- rerun with extra wavelengths and only the")
    print("   new points compute")


if __name__ == "__main__":
    main()
