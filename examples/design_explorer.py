"""Design-space exploration for triangle FO2 gates.

The paper's structure is "generic and its dimensions are indicated in
Figure 3" -- everything scales with the operating wavelength.  This
script sweeps candidate wavelengths on the paper's FeCoB film, derives
for each one the full gate dimension set, the dispersion operating
point (frequency, group velocity, attenuation length) and the resulting
loss margins, then prints a design table.

Run with ``python examples/design_explorer.py``.
"""

import math

from repro.core import TriangleMajorityGate, paper_maj3_dimensions
from repro.core.logic import input_patterns
from repro.io import format_table
from repro.physics import (
    FECOB,
    DispersionRelation,
    FilmStack,
    from_dispersion,
)


def explore(wavelengths_nm) -> str:
    film = FilmStack(material=FECOB, thickness=1e-9)
    dispersion = DispersionRelation(film)
    rows = []
    for lam_nm in wavelengths_nm:
        lam = lam_nm * 1e-9
        k = 2.0 * math.pi / lam
        frequency = float(dispersion.frequency(k))
        v_g = float(dispersion.group_velocity(k))
        l_att = float(dispersion.attenuation_length(k))
        dims = paper_maj3_dimensions(wavelength=lam, width=0.9 * lam)
        # Longest path: I1 -> M -> C -> K -> B -> O.
        longest = dims.d1 + dims.stem + dims.d1 + dims.d3 + dims.d4
        attenuation = from_dispersion(dispersion, frequency)
        gate = TriangleMajorityGate(dimensions=dims, frequency=frequency,
                                    attenuation=attenuation)
        all_ok = all(gate.evaluate(bits).correct
                     for bits in input_patterns(3))
        rows.append([
            f"{lam_nm:.0f}",
            f"{frequency / 1e9:.1f}",
            f"{v_g:.0f}",
            f"{l_att * 1e6:.1f}",
            f"{dims.d2 * 1e9:.0f}",
            f"{longest * 1e9:.0f}",
            f"{longest / l_att * 100:.0f} %",
            "yes" if all_ok else "NO",
        ])
    return format_table(
        ["lambda (nm)", "f (GHz)", "v_g (m/s)", "L_att (um)",
         "d2 (nm)", "longest path (nm)", "path/L_att", "logic OK"],
        rows,
        title="Triangle MAJ3 design space on 1 nm Fe60Co20B20")


def main() -> None:
    print(explore([30, 40, 55, 80, 110, 160]))
    print("\nNotes:")
    print(" * the paper's design point is lambda = 55 nm")
    print(" * shorter wavelengths shrink the gate but raise the operating")
    print("   frequency and the fractional propagation loss")
    print(" * 'logic OK' runs the full 8-pattern truth table through the")
    print("   damping-calibrated network model at each design point")


if __name__ == "__main__":
    main()
