"""Micromagnetic (LLG-tier) spin-wave interference demo.

Reproduces the physics of the paper's Figure 2b with the from-scratch
finite-difference LLG solver: two phase-encoded excitation cells on a
Fe60Co20B20 waveguide, showing constructive interference for equal
logic values and destructive interference for opposite ones -- the
primitive every gate in the paper is built from.

Run with ``python examples/micromagnetic_interference.py``
(about a minute on a laptop: this is the full magnetisation dynamics,
not the fast wave tier).
"""

import math

from repro.micromag import (
    Envelope,
    ExcitationSource,
    Mesh,
    Probe,
    Simulation,
    rectangle,
)
from repro.physics import FECOB, DispersionRelation, FilmStack


def run_case(bit_a: int, bit_b: int, frequency: float) -> float:
    """Detected amplitude after the interference of two sources."""
    # 600 nm x 30 nm x 1 nm FeCoB strip, 5 nm cells, absorbing ends.
    mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(120, 6, 1))
    sim = Simulation(mesh, FECOB, demag="thin_film",
                     absorber_width=100e-9, absorber_axes=(0,))
    sim.initialize((0, 0, 1))

    # Two co-located excitation cells phase-encoding the bits: their
    # waves superpose at the source plane, so cancellation is exact and
    # does not depend on matching the simulated wavelength.  (Separated
    # cells also work when spaced n*lambda apart, but the residual then
    # measures the few-percent analytic-vs-numerical wavelength
    # mismatch of the thin-film demag approximation.)
    x_a = 120e-9
    for bit in (bit_a, bit_b):
        sim.add_source(ExcitationSource.for_logic(
            rectangle(x_a, 0, x_a + 15e-9, 30e-9), bit,
            amplitude=6e3, frequency=frequency,
            envelope=Envelope(start=0.0, rise=0.1e-9)))

    probe = Probe("detector", rectangle(420e-9, 0, 440e-9, 30e-9))
    sim.add_probe(probe)
    sim.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
    amplitude, _phase = probe.trace.window(0.6e-9).demodulate(frequency)
    return amplitude


def main() -> None:
    frequency = 18e9  # comfortably above the ~3.7 GHz FVSW gap
    film = FilmStack(material=FECOB, thickness=1e-9)
    dispersion = DispersionRelation(film)
    print("Fe60Co20B20 film: "
          f"gap = {dispersion.gap_frequency() / 1e9:.2f} GHz, "
          f"lambda({frequency / 1e9:.0f} GHz) = "
          f"{dispersion.wavelength(frequency) * 1e9:.1f} nm, "
          f"v_g = {float(dispersion.group_velocity(dispersion.wavenumber(frequency))):.0f} m/s")

    print("\nrunning LLG simulations (four phase combinations) ...")
    results = {}
    for bits in ((0, 0), (0, 1), (1, 0), (1, 1)):
        results[bits] = run_case(*bits, frequency=frequency)
        print(f"  sources {bits}: detected amplitude "
              f"{results[bits]:.3e}")

    constructive = (results[(0, 0)] + results[(1, 1)]) / 2.0
    destructive = (results[(0, 1)] + results[(1, 0)]) / 2.0
    contrast = constructive / max(destructive, 1e-30)
    contrast_text = (f"{contrast:.1f}x" if contrast < 1e6
                     else "machine-precision cancellation (> 1e6 x)")
    print(f"\nconstructive / destructive contrast: {contrast_text}")
    print("equal phases add, opposite phases cancel -- the interference "
          "primitive of the paper's Figure 2b.")


if __name__ == "__main__":
    main()
