"""Render Figure-5-style field maps of the XOR gate.

Runs the wave-FDTD tier on the rasterised triangle XOR geometry for all
four input patterns and writes colour snapshots (blue = logic 0 phase,
red = logic 1 phase, as in the paper's Figure 5) to
``examples/output/``.

Run with ``python examples/gate_field_maps.py`` (takes a few seconds).
"""

import os

import numpy as np

from repro import TriangleXorGate
from repro.core.logic import input_patterns
from repro.viz import diverging_rgb, snapshot_grid, write_ppm

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def main() -> None:
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    gate = TriangleXorGate()
    fab = gate.fabricated
    print(f"canvas: {fab.mask.shape[1]} x {fab.mask.shape[0]} cells "
          f"({fab.cell_size * 1e9:.1f} nm cells)")

    panels = []
    maps = {}
    for bits in input_patterns(2):
        print(f"solving steady state for inputs {bits} ...")
        maps[bits] = gate.field_map(bits)
        result = gate.evaluate(bits, backend="fdtd")
        print(f"  O1 = {result.outputs['O1'].logic_value}, "
              f"O2 = {result.outputs['O2'].logic_value} "
              f"(expected {result.expected}, "
              f"normalised amplitude {result.outputs['O1'].amplitude:.2f})")

    vmax = max(float(np.abs(m).max()) for m in maps.values())
    for bits in input_patterns(2):
        panels.append(diverging_rgb(maps[bits].real, vmax=vmax,
                                    mask=fab.mask))
    sheet = snapshot_grid(panels, columns=2)
    path = os.path.join(OUTPUT_DIR, "xor_field_maps.ppm")
    write_ppm(path, sheet)
    print(f"\nwrote {path} (panels in pattern order "
          f"{input_patterns(2)})")


if __name__ == "__main__":
    main()
