"""Spin-wave full adder and ripple-carry adder.

The paper motivates the MAJ3 gate with the full adder: carry-out is a
3-input majority, sum a 3-input parity (Section II-B), and the fan-out
of 2 lets the carry feed the next stage without gate replication.

Run with ``python examples/full_adder.py [width]``.
"""

import sys
from itertools import product

from repro.circuits import (
    CircuitSimulator,
    full_adder_netlist,
    ripple_carry_adder_netlist,
)
from repro.core.logic import full_adder


def demo_full_adder() -> None:
    netlist = full_adder_netlist()
    sim = CircuitSimulator(netlist)
    print(f"Full adder: {netlist.gate_count} gate instances "
          f"({netlist.count_by_type()})")
    print("a b cin | sum carry | energy (aJ)")
    for a, b, cin in product((0, 1), repeat=3):
        report = sim.run({"a": a, "b": b, "cin": cin})
        s, c = report.outputs["sum"], report.outputs["carry"]
        ref = full_adder(a, b, cin)
        status = "" if (s, c) == ref else "  <-- MISMATCH"
        print(f"{a} {b}  {cin}  |  {s}    {c}    | "
              f"{report.energy * 1e18:.1f}{status}")
    report = sim.run({"a": 1, "b": 1, "cin": 1})
    print(f"critical path: {report.stage_count} stages = "
          f"{report.delay * 1e9:.1f} ns\n")


def demo_ripple_carry(width: int) -> None:
    netlist = ripple_carry_adder_netlist(width)
    sim = CircuitSimulator(netlist)
    print(f"{width}-bit ripple-carry adder: {netlist.gate_count} gates")
    demos = [(2 ** width - 1, 1), (5, 9), (2 ** width - 1, 2 ** width - 1)]
    for a, b in demos:
        a %= 2 ** width
        b %= 2 ** width
        inputs = {f"a{i}": (a >> i) & 1 for i in range(width)}
        inputs.update({f"b{i}": (b >> i) & 1 for i in range(width)})
        inputs["cin"] = 0
        report = sim.run(inputs)
        total = sum(report.outputs[f"s{i}"] << i for i in range(width)) \
            + (report.outputs["cout"] << width)
        print(f"  {a:>3} + {b:>3} = {total:>3}  "
              f"[energy {report.energy * 1e18:.0f} aJ, "
              f"delay {report.delay * 1e9:.1f} ns, "
              f"{report.stage_count} stages]")
        assert total == a + b

    # The physically-modelled variant: every MAJ3/XOR evaluated through
    # the actual triangle-gate wave model.
    physical = CircuitSimulator(full_adder_netlist(), model="network")
    report = physical.run({"a": 1, "b": 0, "cin": 1})
    print("\nwave-model full adder agrees with boolean model: "
          f"{report.outputs}")


def main() -> None:
    width = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    demo_full_adder()
    demo_ripple_carry(width)


if __name__ == "__main__":
    main()
