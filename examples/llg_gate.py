"""Full micromagnetic (LLG) simulation of a scaled triangle XOR gate.

The ground-truth tier: actual magnetisation dynamics on the triangle
geometry, the same experiment the paper runs in MuMax3, scaled to a
CPU-friendly size (the interference logic is scale-invariant in units
of the wavelength).

Run with ``python examples/llg_gate.py`` -- about 5 minutes for the
four XOR input patterns.
"""

import time

from repro.micromag.gate_experiment import scaled_xor_experiment, xor_contrast


def main() -> None:
    experiment = scaled_xor_experiment()
    fab = experiment.fabricated
    print("scaled triangle XOR on Fe60Co20B20:")
    print(f"  frequency {experiment.frequency / 1e9:.0f} GHz, "
          f"lambda {experiment.wavelength * 1e9:.1f} nm")
    print(f"  canvas {fab.mask.shape[1]} x {fab.mask.shape[0]} cells "
          f"({fab.cell_size * 1e9:.2f} nm), "
          f"{int(fab.mask.sum())} magnetic cells")
    print(f"  settle time {experiment.settle_time * 1e9:.2f} ns, "
          f"dt {experiment.dt * 1e15:.0f} fs")

    patterns = [(0, 0), (0, 1), (1, 0), (1, 1)]
    cases = []
    for bits in patterns:
        start = time.time()
        case = experiment.run_case(bits)
        cases.append(case)
        amps = ", ".join(f"{name} = {value:.3e}"
                         for name, value in case.amplitudes.items())
        print(f"  inputs {bits}: {amps}   [{time.time() - start:.0f} s]")

    contrast = xor_contrast(cases)
    print(f"\nunanimous/antiphase amplitude contrast: {contrast:.1f}x")
    print("threshold 0.5 decodes XOR on the LLG tier: "
          f"{contrast > 2.0}")


if __name__ == "__main__":
    main()
