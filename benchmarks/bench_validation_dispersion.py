"""Solver validation: numerically extracted dispersion vs Kalinikos-Slavin.

The strongest single check of the LLG substrate standing in for the
paper's MuMax3: drive a FeCoB waveguide with a broadband sinc pulse,
space-time-FFT the recorded magnetisation and compare the spectral
ridge against the analytic FVSW branch -- the curve every design rule
of the paper is built on.

Single round (this is a full micromagnetic run, ~1.5 minutes).
"""

import numpy as np
import pytest

from bench_common import emit
from repro.micromag import extract_dispersion
from repro.physics import FECOB


def _generate():
    return extract_dispersion(FECOB, duration=3e-9, length=1.5e-6,
                              f_max=35e9, k_band=(4e7, 2.2e8))


def bench_validation_dispersion(benchmark, output_dir):
    experiment = benchmark.pedantic(_generate, rounds=1, iterations=1)

    lines = ["k (rad/um) | f_LLG (GHz) | f_KS (GHz) | rel. error"]
    stride = max(1, len(experiment.k_values) // 10)
    for k, fm, fa, err in list(zip(experiment.k_values,
                                   experiment.f_measured,
                                   experiment.f_analytic,
                                   experiment.relative_error))[::stride]:
        lines.append(f"{k * 1e-6:10.1f} | {fm / 1e9:11.2f} | "
                     f"{fa / 1e9:10.2f} | {err * 100:+.1f} %")
    lines.append(f"mean |error| = {experiment.mean_relative_error * 100:.1f} %, "
                 f"max |error| = {experiment.max_relative_error * 100:.1f} % "
                 f"over {len(experiment.k_values)} ridge points")
    emit("VALIDATION -- LLG dispersion vs Kalinikos-Slavin", "\n".join(lines))

    data = np.column_stack([experiment.k_values, experiment.f_measured,
                            experiment.f_analytic])
    np.savetxt(f"{output_dir}/validation_dispersion.csv", data,
               delimiter=",", header="k_rad_per_m,f_llg_hz,f_ks_hz")

    assert len(experiment.k_values) >= 10
    # The numerical branch must track the analytic one: monotone rising
    # and within ~15 % everywhere on the probed band (the residual is
    # the thin-film demag approximation + discretisation).
    assert np.all(np.diff(experiment.f_measured) >= 0)
    assert experiment.mean_relative_error < 0.12
    assert experiment.max_relative_error < 0.2
