"""Figure 3: the FO2 MAJ3 triangle geometry and its dimensioning rules.

Section IV-A fixes the dimensions at lambda = 55 nm: d1 = 330 nm,
d2 = 880 nm, d3 = 220 nm, d4 = 55 nm.  The bench regenerates the layout
from the wavelength alone, verifies every dimension and every
phase-design rule of Section III-A (n lambda vs (n+1/2) lambda), and
rasterises the geometry into a mask image.
"""

import pytest

from bench_common import emit
from repro.core import (
    fabricate,
    maj3_layout,
    paper_maj3_dimensions,
    validate_phase_design,
)
from repro.viz import amplitude_gray, write_pgm


def _generate():
    dims = paper_maj3_dimensions()
    layout = maj3_layout(dims)
    checks = validate_phase_design(layout)
    fab = fabricate(layout)
    return dims, layout, checks, fab


def bench_fig3_maj3_layout(benchmark, output_dir):
    dims, layout, checks, fab = benchmark(_generate)

    lam = dims.wavelength
    lines = [
        f"lambda = {lam * 1e9:.0f} nm, width = {dims.width * 1e9:.0f} nm",
        f"d1 = {dims.d1 * 1e9:.0f} nm ({dims.d1 / lam:.0f} lambda)   "
        "[paper: 330 nm]",
        f"d2 = {dims.d2 * 1e9:.0f} nm ({dims.d2 / lam:.0f} lambda)   "
        "[paper: 880 nm]",
        f"d3 = {dims.d3 * 1e9:.0f} nm ({dims.d3 / lam:.0f} lambda)   "
        "[paper: 220 nm]",
        f"d4 = {dims.d4 * 1e9:.0f} nm ({dims.d4 / lam:.0f} lambda)   "
        "[paper: 55 nm]",
        "",
        "phase-design checks:",
    ]
    lines += [f"  {name}: {'PASS' if ok else 'FAIL'}"
              for name, ok in checks.items()]
    emit("FIGURE 3 -- FO2 MAJ3 gate geometry (reconstructed)",
         "\n".join(lines))

    assert dims.d1 == pytest.approx(330e-9)
    assert dims.d2 == pytest.approx(880e-9)
    assert dims.d3 == pytest.approx(220e-9)
    assert dims.d4 == pytest.approx(55e-9)
    assert all(checks.values()), checks
    # Five transducer terminals: 3 inputs + 2 outputs.
    assert len(layout.input_names) == 3
    assert len(layout.output_names) == 2

    image = amplitude_gray(fab.mask.astype(float))
    write_pgm(f"{output_dir}/fig3_maj3_geometry.pgm", image)
    from repro.viz import save_layout_svg

    save_layout_svg(layout, f"{output_dir}/fig3_maj3_geometry.svg",
                    title="Figure 3: FO2 MAJ3 triangle gate (reconstructed)")


def bench_fig3_inverted_variant(benchmark):
    """The d4 = (n+1/2) lambda rule: the inverting-output geometry."""
    def _build():
        dims = paper_maj3_dimensions(invert_output=True)
        layout = maj3_layout(dims)
        return dims, validate_phase_design(layout)

    dims, checks = benchmark(_build)
    assert dims.d4 == pytest.approx(82.5e-9)  # 1.5 lambda
    assert all(checks.values()), checks
