"""Table III: performance comparison (energy / delay / cell counts).

Reproduces every row of the paper's Table III from the component models
(ME transducer 34.4 nW x 100 ps pulses; CMOS data from refs [40][41])
and re-derives the headline ratios of the abstract: 25 %-50 % energy
saving vs the ladder SW gates at equal delay, 43x-0.8x energy vs
16/7 nm CMOS, and 11x-40x delay overhead.
"""

import pytest

from bench_common import emit
from repro.evaluation import build_table_iii, format_table_iii, headline_ratios


def _generate():
    return build_table_iii(), headline_ratios()


def bench_table3_performance(benchmark):
    rows, ratios = benchmark(_generate)

    lines = [format_table_iii(rows), "", "Derived headline ratios:"]
    for name, value in ratios.as_dict().items():
        if "saving" in name:
            lines.append(f"  {name}: {value * 100:.0f} %")
        else:
            lines.append(f"  {name}: {value:.1f}x")
    emit("TABLE III -- PERFORMANCE COMPARISON (reproduced)",
         "\n".join(lines))

    by_key = {(r.design, r.function): r for r in rows}

    # Cell counts ("Used cell No." row of Table III).
    assert by_key[("This work", "MAJ")].device_count == 5
    assert by_key[("This work", "XOR")].device_count == 4
    assert by_key[("SW [23]", "MAJ")].device_count == 6
    assert by_key[("16nm CMOS", "MAJ")].device_count == 16

    # Energy values (aJ).
    assert by_key[("This work", "MAJ")].energy_aj == pytest.approx(
        10.3, abs=0.1)
    assert by_key[("This work", "XOR")].energy_aj == pytest.approx(
        6.9, abs=0.1)
    assert by_key[("SW [23]", "MAJ")].energy_aj == pytest.approx(
        13.7, abs=0.15)

    # Delay: all SW gates 0.4 ns.
    for design in ("This work", "SW [23]"):
        for function in ("MAJ", "XOR"):
            assert by_key[(design, function)].delay_ns == pytest.approx(0.4)

    # Abstract's headline claims.
    assert ratios.energy_saving_vs_sw_maj == pytest.approx(0.25)
    assert ratios.energy_saving_vs_sw_xor == pytest.approx(0.50)
    assert ratios.energy_vs_cmos16_xor == pytest.approx(44.0, rel=0.05)
    assert ratios.energy_vs_cmos7_xor == pytest.approx(0.8, rel=0.05)
    assert ratios.delay_overhead_cmos7_xor == pytest.approx(40.0)
    assert ratios.delay_overhead_cmos16_maj == pytest.approx(13.3, rel=0.01)
