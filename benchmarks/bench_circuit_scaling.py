"""Circuit-scaling bench: the ref. [42] comparison at adder level.

Section IV-D cites Zografos et al. [42]: despite the gate-level delay
deficit, SW circuits win on area/power products (800x ADP for a 32-bit
hybrid divider vs 10 nm CMOS).  We regenerate that *kind* of table for
ripple-carry adders built from our triangle gates: energy, delay, area,
EDP and area x energy against 16/7 nm CMOS across widths.
"""

import pytest

from bench_common import emit
from repro.evaluation.circuit_level import adder_comparison, format_comparison


def _generate():
    return {width: adder_comparison(width) for width in (4, 8, 16, 32)}


def bench_circuit_scaling(benchmark):
    tables = benchmark(_generate)

    blocks = []
    for width, figures in tables.items():
        blocks.append(f"{width}-bit ripple-carry adder:")
        blocks.append(format_comparison(figures))
        blocks.append("")
    emit("CIRCUIT SCALING -- adders vs CMOS (ref [42] style)",
         "\n".join(blocks))

    for width, figures in tables.items():
        sw = figures["SW (this work)"]
        c16 = figures["16nm CMOS"]
        c7 = figures["7nm CMOS"]
        # Energy: SW beats 16 nm CMOS at every width by a wide margin.
        assert c16.energy / sw.energy > 10, width
        # Delay: CMOS wins at every width (the paper's 11x-40x story).
        assert sw.delay > 5 * c7.delay, width
        # Area x energy: SW far ahead of 16 nm CMOS, competitive with
        # 7 nm -- the circuit-level conclusion of [42].
        assert (c16.area_delay_power_product
                / sw.area_delay_power_product) > 10, width
        ratio_7nm = (c7.area_delay_power_product
                     / sw.area_delay_power_product)
        assert 0.1 < ratio_7nm < 10, width

    # Scaling shape: SW energy grows linearly with width.
    sw4 = tables[4]["SW (this work)"].energy
    sw32 = tables[32]["SW (this work)"].energy
    assert sw32 == pytest.approx(8 * sw4, rel=1e-6)
