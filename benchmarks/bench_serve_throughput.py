"""Throughput/latency benchmark for the gate-evaluation service.

Hosts :class:`repro.serve.GateService` in-process (``ServerThread``)
and drives it over real HTTP with keep-alive connections from a pool
of load-generator threads, reporting p50/p95/p99 latency and requests
per second for two regimes:

* **cold**  -- every request is a distinct network-tier evaluation
  (distinct ``seed`` values force fresh cache keys), so each one runs
  through admission, micro-batching and the executor;
* **warm**  -- the requests repeat the paper's truth-table cases, so
  after the first round everything is served from the result cache's
  fast path.

The ISSUE acceptance floor is >= 500 req/s sustained on warm
network-tier requests; ``REPRO_SERVE_MIN_RPS`` overrides it (0
disables the gate, e.g. on a throttled CI runner).  Runnable
standalone (``python benchmarks/bench_serve_throughput.py`` exits
non-zero below the floor) or through pytest.
"""

import http.client
import json
import os
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro.serve import ServeConfig, ServerThread
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.serve import ServeConfig, ServerThread

MIN_WARM_RPS = float(os.environ.get("REPRO_SERVE_MIN_RPS", "500"))
THREADS = 8
COLD_REQUESTS = 200
WARM_REQUESTS = 2000

#: The paper's truth-table cases (Table I MAJ3 + Table II XOR).
CASES = ([{"gate": "maj3", "bits": [(i >> 2) & 1, (i >> 1) & 1, i & 1]}
          for i in range(8)]
         + [{"gate": "xor", "bits": [(i >> 1) & 1, i & 1]}
            for i in range(4)])


class _Worker(threading.Thread):
    """One load generator: a keep-alive connection posting its share of
    the workload and recording per-request latency."""

    def __init__(self, host, port, payloads):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.payloads = payloads
        self.latencies_ms = []
        self.errors = 0

    def run(self):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            for payload in self.payloads:
                body = json.dumps(payload)
                t0 = time.perf_counter()
                conn.request("POST", "/v1/gate", body,
                             {"Content-Type": "application/json"})
                resp = conn.getresponse()
                data = resp.read()
                self.latencies_ms.append(
                    (time.perf_counter() - t0) * 1e3)
                if resp.status != 200 or not json.loads(
                        data)["result"]["correct"]:
                    self.errors += 1
        finally:
            conn.close()


def _drive(host, port, payloads):
    """Fan ``payloads`` over the worker pool; return the stats dict."""
    shares = [payloads[i::THREADS] for i in range(THREADS)]
    workers = [_Worker(host, port, share) for share in shares if share]
    t0 = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - t0
    latencies = sorted(lat for w in workers for lat in w.latencies_ms)
    n = len(latencies)
    return {
        "requests": n,
        "errors": sum(w.errors for w in workers),
        "elapsed_s": elapsed,
        "rps": n / elapsed if elapsed else float("inf"),
        "p50_ms": statistics.quantiles(latencies, n=100)[49],
        "p95_ms": statistics.quantiles(latencies, n=100)[94],
        "p99_ms": statistics.quantiles(latencies, n=100)[98],
        "max_ms": latencies[-1],
    }


def measure():
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as scratch:
        config = ServeConfig(port=0,
                             cache_dir=os.path.join(scratch, "cache"))
        with ServerThread(config) as server:
            host, port = config.host, server.port
            cold_load = [dict(CASES[i % len(CASES)], tier="network",
                              seed=1000 + i)
                         for i in range(COLD_REQUESTS)]
            warm_load = [dict(CASES[i % len(CASES)], tier="network")
                         for i in range(WARM_REQUESTS)]
            cold = _drive(host, port, cold_load)
            _drive(host, port, warm_load[:len(CASES)])  # populate cache
            warm = _drive(host, port, warm_load)
    return {"cold": cold, "warm": warm}


def _report(result):
    lines = [f"{THREADS} keep-alive connections, network tier"]
    for regime in ("cold", "warm"):
        stats = result[regime]
        lines.append(
            f"{regime:5s}: {stats['requests']:5d} requests in "
            f"{stats['elapsed_s']:6.2f} s = {stats['rps']:8.0f} req/s | "
            f"p50 {stats['p50_ms']:6.2f} ms  p95 {stats['p95_ms']:6.2f} ms"
            f"  p99 {stats['p99_ms']:6.2f} ms  max {stats['max_ms']:6.2f}"
            f" ms | errors {stats['errors']}")
    verdict = ("PASS" if result["warm"]["rps"] >= MIN_WARM_RPS
               else "FAIL")
    lines.append(f"floor: warm >= {MIN_WARM_RPS:.0f} req/s -> {verdict}")
    return "\n".join(lines)


def _write_trajectory(result) -> None:
    metrics = {}
    for regime in ("cold", "warm"):
        stats = result[regime]
        metrics[f"{regime}_rps"] = (stats["rps"], "req/s")
        for quantile in ("p50_ms", "p95_ms", "p99_ms"):
            metrics[f"{regime}_{quantile[:-3]}"] = (stats[quantile], "ms")
    write_bench_json("serve_throughput", metrics)


def bench_serve_throughput(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("SERVE THROUGHPUT (warm cache must sustain the req/s floor)",
         _report(result))
    _write_trajectory(result)
    assert result["cold"]["errors"] == 0
    assert result["warm"]["errors"] == 0
    assert result["warm"]["rps"] >= MIN_WARM_RPS


def main() -> int:
    result = measure()
    emit("SERVE THROUGHPUT (warm cache must sustain the req/s floor)",
         _report(result))
    _write_trajectory(result)
    if result["cold"]["errors"] or result["warm"]["errors"]:
        return 1
    return 0 if result["warm"]["rps"] >= MIN_WARM_RPS else 1


if __name__ == "__main__":
    sys.exit(main())
