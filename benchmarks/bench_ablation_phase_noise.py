"""Ablation: input phase-noise tolerance of the phase-encoded logic.

The paper encodes bits in {0, pi} phases and detects with a pi/2
decision boundary; any transducer jitter or path-length variability
shows up as input phase error.  This Monte-Carlo bench measures the
MAJ3 decoding error rate versus Gaussian input phase noise and locates
the sigma where errors first appear -- the quantitative version of the
paper's "variability ... will not disturb the gate functionality"
expectation.

Each sigma is an independent Monte-Carlo job
(:func:`repro.runtime.jobs.phase_noise_error_rate`), submitted through
the orchestration engine: parallel across sigmas on multi-core
hardware, and seeded deterministically from the job parameters so a
cached rate and a recomputed one agree bit-exactly.
"""

from bench_common import emit
from repro.runtime import Executor, MemoryCache
from repro.runtime.jobs import phase_noise_error_rate

N_TRIALS = 200
SIGMAS = (0.0, 0.1, 0.2, 0.4, 0.6, 0.9, 1.2)


def _generate():
    executor = Executor(workers=4, cache=MemoryCache())
    result = executor.map(
        phase_noise_error_rate,
        [{"sigma": sigma, "n_trials": N_TRIALS} for sigma in SIGMAS],
        label="phase-noise").raise_on_failure()
    return [(case["sigma"], case["error_rate"])
            for case in result.values], result.report


def bench_ablation_phase_noise(benchmark):
    rows, report = benchmark.pedantic(_generate, rounds=1, iterations=1)

    lines = ["input phase noise sigma (rad) | MAJ3 decode error rate"]
    for sigma, rate in rows:
        lines.append(f"  {sigma:26.2f} | {rate * 100:6.2f} %")
    lines.append("")
    lines.append(report.summary())
    emit("ABLATION -- phase-noise tolerance of phase detection",
         "\n".join(lines))

    by_sigma = dict(rows)
    # Noise-free decoding is perfect.
    assert by_sigma[0.0] == 0.0
    # Small jitter (0.1-0.2 rad ~ 6-11 degrees) stays essentially
    # error-free: the unanimity margin is pi/2.
    assert by_sigma[0.1] == 0.0
    assert by_sigma[0.2] < 0.01
    # Large jitter degrades monotonically toward coin-flip territory.
    rates = [rate for _s, rate in rows]
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    assert by_sigma[1.2] > 0.1
    # One engine job per sigma, none lost to retries or failures.
    assert report.n_jobs == len(SIGMAS)
    assert report.n_failed == 0
