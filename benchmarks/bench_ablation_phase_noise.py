"""Ablation: input phase-noise tolerance of the phase-encoded logic.

The paper encodes bits in {0, pi} phases and detects with a pi/2
decision boundary; any transducer jitter or path-length variability
shows up as input phase error.  This Monte-Carlo bench measures the
MAJ3 decoding error rate versus Gaussian input phase noise and locates
the sigma where errors first appear -- the quantitative version of the
paper's "variability ... will not disturb the gate functionality"
expectation.
"""

import math

import numpy as np
import pytest

from bench_common import emit
from repro.core import TriangleMajorityGate, PhaseDetector
from repro.core.logic import input_patterns, majority
from repro.physics import Wave

N_TRIALS = 200


def _error_rate(gate: TriangleMajorityGate, sigma: float,
                rng: np.random.Generator) -> float:
    """Fraction of (pattern, trial) decodings that are wrong."""
    errors = 0
    total = 0
    detector = PhaseDetector()
    for bits in input_patterns(3):
        expected = majority(*bits)
        for _ in range(N_TRIALS):
            injections = {}
            for name, bit in zip(("I1", "I2", "I3"), bits):
                phase = (math.pi if bit else 0.0) \
                    + rng.normal(0.0, sigma)
                injections[name] = Wave(1.0, phase,
                                        gate.frequency).envelope
            env = gate.network.propagate(injections)
            decoded = detector.detect_envelope(env["O1"],
                                               gate.frequency)
            errors += decoded.logic_value != expected
            total += 1
    return errors / total


def _generate():
    rng = np.random.default_rng(2021)
    gate = TriangleMajorityGate()
    sigmas = (0.0, 0.1, 0.2, 0.4, 0.6, 0.9, 1.2)
    return [(s, _error_rate(gate, s, rng)) for s in sigmas]


def bench_ablation_phase_noise(benchmark):
    rows = benchmark.pedantic(_generate, rounds=1, iterations=1)

    lines = ["input phase noise sigma (rad) | MAJ3 decode error rate"]
    for sigma, rate in rows:
        lines.append(f"  {sigma:26.2f} | {rate * 100:6.2f} %")
    emit("ABLATION -- phase-noise tolerance of phase detection",
         "\n".join(lines))

    by_sigma = dict(rows)
    # Noise-free decoding is perfect.
    assert by_sigma[0.0] == 0.0
    # Small jitter (0.1-0.2 rad ~ 6-11 degrees) stays essentially
    # error-free: the unanimity margin is pi/2.
    assert by_sigma[0.1] == 0.0
    assert by_sigma[0.2] < 0.01
    # Large jitter degrades monotonically toward coin-flip territory.
    rates = [rate for _s, rate in rows]
    assert all(b >= a - 0.02 for a, b in zip(rates, rates[1:]))
    assert by_sigma[1.2] > 0.1
