"""Figure 5 (a-h): magnetisation field maps of the FO2 MAJ3 gate.

The paper shows MuMax3 snapshots for all 8 input patterns, colour-coded
blue (logic 0) / red (logic 1), demonstrating correct functionality at
both outputs.  The bench runs the wave-FDTD tier on the full rasterised
triangle geometry for all 8 patterns, decodes O1/O2 by phase detection,
renders the eight panels with the matching diverging colormap and tiles
them into ``fig5_maj3_panels.ppm``.

This is the heaviest bench (8 steady-state field solves); it runs a
single round.
"""

import numpy as np
import pytest

from bench_common import emit
from repro.core import TriangleMajorityGate
from repro.core.logic import input_patterns, majority
from repro.viz import diverging_rgb, snapshot_grid, write_ppm


def _generate():
    gate = TriangleMajorityGate()
    patterns = sorted(input_patterns(3), key=lambda b: (b[2], b[1], b[0]))
    maps = {}
    results = {}
    for bits in patterns:
        maps[bits] = gate.field_map(bits)
        results[bits] = gate.evaluate(bits, backend="fdtd")
    return gate, patterns, maps, results


def bench_fig5_field_maps(benchmark, output_dir):
    gate, patterns, maps, results = benchmark.pedantic(
        _generate, rounds=1, iterations=1)

    fab = gate.fabricated
    lines = []
    panels = []
    vmax = max(float(np.abs(m).max()) for m in maps.values())
    for index, bits in enumerate(patterns):
        result = results[bits]
        o1 = result.outputs["O1"].logic_value
        o2 = result.outputs["O2"].logic_value
        lines.append(
            f"panel {chr(ord('a') + index)}) I3I2I1="
            f"{bits[2]}{bits[1]}{bits[0]} -> O1={o1} O2={o2} "
            f"(expected {result.expected}) "
            f"{'OK' if result.correct else 'MISMATCH'}")
        panels.append(diverging_rgb(maps[bits].real, vmax=vmax,
                                    mask=fab.mask))
    sheet = snapshot_grid(panels, columns=4)
    path = f"{output_dir}/fig5_maj3_panels.ppm"
    write_ppm(path, sheet)
    lines.append(f"contact sheet written to {path}")
    emit("FIGURE 5 -- FO2 MAJ3 field maps (wave-FDTD tier)",
         "\n".join(lines))

    for bits in patterns:
        result = results[bits]
        assert result.expected == majority(*bits)
        assert result.correct, bits           # both outputs decode right
        assert result.fanout_matched, bits    # O1 == O2 (fan-out of 2)
        # Field maps are confined to the waveguide mask.
        assert np.all(np.abs(maps[bits])[~fab.mask] == 0.0)
