"""Ablation: the ladder baseline's unequal-excitation penalty.

Table III prices all transducers at the nominal drive level; the paper
only notes qualitatively that the ladder "inputs may have to be excited
at different energy levels depending on whether they have a straight
path to the outputs or face bent regions".  This bench quantifies that
hidden cost: the ladder MAJ energy at its *real* drive levels vs the
nominal-level accounting, and the resulting widening of the triangle
gate's advantage.
"""

import pytest

from bench_common import emit
from repro.core import LadderMajorityGate
from repro.evaluation import (
    ladder_maj3_report,
    ladder_xor_report,
    triangle_maj3_report,
    triangle_xor_report,
)


def _generate():
    nominal = ladder_maj3_report()
    real = ladder_maj3_report(real_levels=True)
    triangle = triangle_maj3_report()
    return nominal, real, triangle


def bench_ablation_ladder_energy(benchmark):
    nominal, real, triangle = benchmark(_generate)

    saving_nominal = 1.0 - triangle.energy / nominal.energy
    saving_real = 1.0 - triangle.energy / real.energy
    lines = [
        f"ladder MAJ, nominal levels : {nominal.energy * 1e18:.2f} aJ "
        "(Table III accounting)",
        f"ladder MAJ, real levels    : {real.energy * 1e18:.2f} aJ "
        f"(bent-path inputs at {LadderMajorityGate.BENT_PATH_EXCITATION_FACTOR}x drive)",
        f"triangle MAJ (this work)   : {triangle.energy * 1e18:.2f} aJ",
        f"energy saving vs ladder    : {saving_nominal * 100:.0f} % nominal "
        f"-> {saving_real * 100:.0f} % with real levels",
    ]
    emit("ABLATION -- ladder unequal-excitation penalty", "\n".join(lines))

    # The paper's 25 % saving is the *conservative* number; pricing the
    # ladder's real drive levels only widens the gap.
    assert saving_nominal == pytest.approx(0.25)
    assert real.energy > nominal.energy
    assert saving_real > saving_nominal

    # XOR comparison: 50 % at nominal levels.
    saving_xor = 1.0 - triangle_xor_report().energy \
        / ladder_xor_report().energy
    assert saving_xor == pytest.approx(0.5)
