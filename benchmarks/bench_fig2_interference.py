"""Figure 2b: constructive and destructive interference in a waveguide.

The figure shows two waves interfering: same phase -> amplitude doubles
(constructive), opposite phase -> the waves cancel (destructive).  The
bench demonstrates this at all three tiers:

* analytic superposition (exact),
* scalar-wave FDTD with two co-located sources in a guide,

and prints the resulting amplitudes side by side.
"""

import numpy as np
import pytest

from bench_common import emit
from repro.fdtd import ScalarWaveSimulator, WaveSource, run_steady_state
from repro.physics import Wave, interference_kind, superpose

F = 10e9
LAM = 55e-9


def _analytic():
    w0 = Wave.logic(0, F)
    return {
        "constructive": superpose([w0, Wave.logic(0, F)]).amplitude,
        "destructive": superpose([w0, Wave.logic(1, F)]).amplitude,
    }


def _fdtd():
    results = {}
    for label, bit in (("constructive", 0), ("destructive", 1)):
        mask = np.ones((12, 360), dtype=bool)
        sim = ScalarWaveSimulator(mask, dx=5e-9, wavelength=LAM,
                                  frequency=F, absorber_width=150e-9,
                                  absorber_sides=("left", "right"))
        patch = sim.point_source_mask(400e-9, 30e-9, radius=10e-9)
        sim.add_source(WaveSource.logic(patch, 0))
        sim.add_source(WaveSource.logic(patch, bit))
        env = run_steady_state(sim, settle_periods=40)
        det = sim.point_source_mask(1200e-9, 30e-9, radius=15e-9)
        results[label] = abs(sim.region_envelope(det, env))
    return results


def _generate():
    return _analytic(), _fdtd()


def bench_fig2_interference(benchmark):
    analytic, fdtd = benchmark(_generate)

    single = _single_source_fdtd_amplitude()
    emit("FIGURE 2b -- constructive / destructive interference",
         "\n".join([
             f"analytic: constructive = {analytic['constructive']:.3f} "
             f"(2x single), destructive = {analytic['destructive']:.3e}",
             f"FDTD:     single wave = {single:.4f}, constructive = "
             f"{fdtd['constructive']:.4f}, destructive = "
             f"{fdtd['destructive']:.2e}",
         ]))

    # Analytic: exact doubling and cancellation.
    assert analytic["constructive"] == pytest.approx(2.0)
    assert analytic["destructive"] == pytest.approx(0.0, abs=1e-12)
    # FDTD: constructive doubles the single-source wave; destructive
    # cancels to numerical dust.
    assert fdtd["constructive"] == pytest.approx(2.0 * single, rel=0.05)
    assert fdtd["destructive"] < 0.01 * fdtd["constructive"]
    # Classifier agrees with the figure.
    assert interference_kind(Wave.logic(0, F), Wave.logic(0, F)) \
        == "constructive"
    assert interference_kind(Wave.logic(0, F), Wave.logic(1, F)) \
        == "destructive"


def _single_source_fdtd_amplitude():
    mask = np.ones((12, 360), dtype=bool)
    sim = ScalarWaveSimulator(mask, dx=5e-9, wavelength=LAM, frequency=F,
                              absorber_width=150e-9,
                              absorber_sides=("left", "right"))
    patch = sim.point_source_mask(400e-9, 30e-9, radius=10e-9)
    sim.add_source(WaveSource.logic(patch, 0))
    env = run_steady_state(sim, settle_periods=40)
    det = sim.point_source_mask(1200e-9, 30e-9, radius=15e-9)
    return abs(sim.region_envelope(det, env))
