"""ECC / voting bench: the majority gate as an error-correction element.

Section II-B: "most of the error detection and correction schemes rely
on n-input majorities".  This bench quantifies that use-case over the
triangle-gate library:

* TMR (triple modular redundancy) with a MAJ3 voter masks every single
  module fault (verified exhaustively by fault injection);
* a 9-input voting tree of MAJ3 gates corrects local vote corruption;
* the full-adder's single-stuck-at fault coverage under exhaustive
  vectors (testability of the magnonic circuit style).
"""

import pytest

from bench_common import emit
from repro.circuits import CircuitSimulator, full_adder_netlist, majority_tree_netlist
from repro.circuits.faults import (
    FaultySimulator,
    StuckAtFault,
    fault_coverage,
    masks_single_module_faults,
    tmr_netlist,
    xor_module,
)
from repro.core.logic import input_patterns, xor


def _generate():
    tmr = tmr_netlist(xor_module, n_inputs=2)
    module_outputs = [f"m{i}_y" for i in range(3)]
    masked = masks_single_module_faults(tmr, module_outputs)
    coverage = fault_coverage(full_adder_netlist())

    # Hamming(7,4) corrector built from XOR/AND/NOT triangle gates:
    # all 16 data words x 8 channel conditions must decode clean.
    from itertools import product

    from repro.circuits.hamming import (
        hamming74_corrector_netlist,
        hamming74_encode,
        run_corrector,
    )

    hamming = CircuitSimulator(hamming74_corrector_netlist())
    hamming_ok = True
    hamming_trials = 0
    for data in product((0, 1), repeat=4):
        codeword = list(hamming74_encode(data))
        for error in range(8):
            corrupted = codeword.copy()
            if error:
                corrupted[error - 1] ^= 1
            hamming_trials += 1
            if run_corrector(hamming, corrupted) != data:
                hamming_ok = False

    # Voting-tree resilience: corrupt each single leaf of a 9-input
    # tree where the true vote is unanimous -- the tree must hold.
    tree = majority_tree_netlist(9)
    resilient = True
    for value in (0, 1):
        golden_inputs = {f"v{i}": value for i in range(9)}
        for leaf in range(9):
            simulator = FaultySimulator(
                tree, StuckAtFault(f"v{leaf}", 1 - value))
            if simulator.run(golden_inputs).outputs["vote"] != value:
                resilient = False
    return tmr, masked, coverage, resilient, hamming_ok, hamming_trials


def bench_ecc_voting(benchmark):
    tmr, masked, coverage, resilient, hamming_ok, hamming_trials = \
        benchmark(_generate)

    lines = [
        f"TMR (XOR module x3 + MAJ3 voter, {tmr.gate_count} gates): "
        f"single module faults masked = {masked}",
        f"9-leaf MAJ3 voting tree: any single corrupted unanimous vote "
        f"masked = {resilient}",
        f"full adder stuck-at coverage (exhaustive vectors): "
        f"{coverage.coverage * 100:.0f} % of {coverage.n_faults} faults",
        f"Hamming(7,4) corrector over XOR/AND/NOT gates: "
        f"{hamming_trials} (word, error) channel trials, all decoded "
        f"clean = {hamming_ok}",
    ]
    emit("ECC / VOTING -- majority gates as error correctors",
         "\n".join(lines))

    assert masked
    assert resilient
    assert coverage.coverage == pytest.approx(1.0)
    assert hamming_ok
    assert hamming_trials == 128

    # And the TMR wrapper is functionally transparent.
    simulator = CircuitSimulator(tmr)
    for bits in input_patterns(2):
        outputs = simulator.run({"d0": bits[0], "d1": bits[1]}).outputs
        assert outputs["vote"] == xor(*bits)
