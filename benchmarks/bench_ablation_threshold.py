"""Ablation: the XOR threshold choice (Section IV-C).

"The appropriate threshold in this case is 0.5 because for {I1,I2}
being {0,0} and {1,1} magnetization are approximately 1 while they are
approximately 0 when the inputs are {0,1} and {1,0}."

The bench sweeps the decision threshold on the *FDTD* output amplitudes
(which carry real residual amplitude in the destructive cases) and maps
the window of thresholds for which the gate decodes XOR correctly on
all four patterns -- 0.5 must sit comfortably inside it.
"""

import numpy as np
import pytest

from bench_common import emit
from repro.core import TriangleXorGate
from repro.core.detection import ThresholdDetector
from repro.core.logic import input_patterns, xor
from repro.physics import Wave


def _generate():
    gate = TriangleXorGate()
    table = gate.normalized_output_table(backend="fdtd")
    thresholds = np.linspace(0.05, 0.95, 19)
    working = []
    for threshold in thresholds:
        ok = True
        for bits in input_patterns(2):
            amplitude = table[bits][0]
            detector = ThresholdDetector(threshold=float(threshold))
            decoded = detector.detect(Wave(amplitude, 0.0, 10e9)).logic_value
            if decoded != xor(*bits):
                ok = False
                break
        working.append((float(threshold), ok))
    return table, working


def bench_ablation_threshold(benchmark):
    table, working = benchmark.pedantic(_generate, rounds=1, iterations=1)

    window = [t for t, ok in working if ok]
    lines = [
        "FDTD normalised amplitudes: "
        + ", ".join(f"{bits}: {table[bits][0]:.3f}"
                    for bits in input_patterns(2)),
        f"thresholds decoding XOR correctly: "
        f"[{min(window):.2f}, {max(window):.2f}]",
        "paper's choice 0.5 inside the window: "
        f"{min(window) <= 0.5 <= max(window)}",
    ]
    emit("ABLATION -- XOR threshold window", "\n".join(lines))

    assert window, "no working threshold at all"
    assert min(window) <= 0.5 <= max(window)
    # The window is a contiguous band (single crossover in amplitude).
    oks = [ok for _t, ok in working]
    transitions = sum(1 for a, b in zip(oks, oks[1:]) if a != b)
    assert transitions <= 2
