"""Pytest fixtures for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper and prints the
rows it produced next to the published values (via
:func:`bench_common.emit`); the blocks are also appended to
``benchmarks/output/report.txt`` (reset at session start), so every
``pytest benchmarks/ --benchmark-only`` run leaves a complete
reproduction record even without ``-s``.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from bench_common import OUTPUT_DIR, REPORT_PATH  # noqa: E402


@pytest.fixture(scope="session", autouse=True)
def _fresh_report():
    """Start each bench session with an empty reproduction report."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    if os.path.exists(REPORT_PATH):
        os.remove(REPORT_PATH)
    yield


@pytest.fixture(scope="session")
def output_dir():
    """Directory for generated artifacts (created on first use)."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR
