"""Scaling and overhead benchmark for the repro.cluster backend.

Starts an in-process coordinator plus real ``python -m repro worker``
subprocesses and drives Monte-Carlo phase-noise jobs
(:func:`repro.runtime.jobs.phase_noise_error_rate`, ~0.3 s each)
through the TCP backend, reporting two things:

* **scaling efficiency** -- wall time of the same 8-job batch on 1, 2
  and 4 workers; efficiency_n = T1 / (n * Tn).  Jobs are genuinely
  CPU-bound and run in separate processes, so the curve reflects the
  coordinator's scheduling, not the GIL.
* **coordination overhead** -- a batch of cheap distinct jobs through
  one worker; overhead/job = (batch wall time - sum of on-worker job
  times) / jobs.  This isolates what the cluster machinery itself
  costs: framing, scheduling, the cache check, outcome fan-out.

The overhead figure is the regression gate for the high-availability
machinery as well: every frame on the measured path now flows through
``send_message``/``recv_message`` (the chunk-threshold check), every
submitted job through the backend's resubmission bookkeeping
(``by_id``/``frames`` built per batch) and the journalling hook --
so a regression in any of them shows up here as ms/job.

The ISSUE budget is < 5 ms coordination overhead per job;
``REPRO_CLUSTER_MAX_OVERHEAD_MS`` overrides it (0 disables the gate,
e.g. on a throttled CI runner).  Runnable standalone
(``python benchmarks/bench_cluster.py`` exits non-zero over budget)
or through pytest; CI runs it non-gating.
"""

import os
import subprocess
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro.cluster import Coordinator, TcpClusterBackend
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.cluster import Coordinator, TcpClusterBackend
from repro.runtime import Executor, JobSpec  # noqa: E402

MAX_OVERHEAD_MS = float(os.environ.get("REPRO_CLUSTER_MAX_OVERHEAD_MS", "5"))
WORKER_COUNTS = (1, 2, 4)
HEAVY_JOBS = 8
HEAVY_TRIALS = 1200     # ~0.3 s of Monte-Carlo per job
CHEAP_JOBS = 40

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def _spawn_workers(url, count):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return [subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", url,
         "--capacity", "1", "--name", f"bench{i}"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        for i in range(count)]


def _wait_for_workers(coordinator, count, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(coordinator.status()["workers"]) >= count:
            return
        time.sleep(0.05)
    raise RuntimeError(f"{count} worker(s) never registered")


def _stop_workers(procs):
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)


def _heavy_specs():
    """Distinct keys (distinct sigma) so nothing coalesces or caches."""
    return [JobSpec(fn="repro.runtime.jobs:phase_noise_error_rate",
                    params={"sigma": 0.10 + 0.01 * i,
                            "n_trials": HEAVY_TRIALS},
                    label=f"noise{i}")
            for i in range(HEAVY_JOBS)]


def _cheap_specs():
    return [JobSpec(fn="repro.runtime.jobs:phase_noise_error_rate",
                    params={"sigma": 0.10 + 0.001 * i, "n_trials": 1},
                    label=f"cheap{i}")
            for i in range(CHEAP_JOBS)]


def _run_batch(url, specs):
    executor = Executor(workers=1, cache=None,
                        backend=TcpClusterBackend(url))
    t0 = time.perf_counter()
    result = executor.run(specs)
    elapsed = time.perf_counter() - t0
    failures = result.failures
    if failures:
        raise RuntimeError(
            f"{len(failures)} job(s) failed: "
            f"{failures[0].record.error}")
    busy = sum(r.wall_time for r in result.report.records)
    return elapsed, busy


def measure():
    # No cache anywhere: every batch recomputes, keeping rounds
    # comparable (the shared-cache path has its own tests).
    coordinator = Coordinator(port=0, cache=None).start()
    scaling = {}
    overhead_ms = None
    try:
        for count in WORKER_COUNTS:
            procs = _spawn_workers(coordinator.url, count)
            try:
                _wait_for_workers(coordinator, count)
                # One throwaway cheap batch warms the workers' imports
                # so the first timed job is not paying module loading.
                _run_batch(coordinator.url, _cheap_specs()[:count])
                elapsed, busy = _run_batch(coordinator.url, _heavy_specs())
                scaling[count] = {"elapsed_s": elapsed, "busy_s": busy}
                if count == 1:
                    cheap_elapsed, cheap_busy = _run_batch(
                        coordinator.url, _cheap_specs())
                    overhead_ms = max(
                        0.0,
                        (cheap_elapsed - cheap_busy) / CHEAP_JOBS * 1e3)
            finally:
                _stop_workers(procs)
            # Let the coordinator notice the workers are gone.
            deadline = time.monotonic() + 10
            while (coordinator.status()["workers"]
                   and time.monotonic() < deadline):
                time.sleep(0.05)
    finally:
        coordinator.stop()
    t1 = scaling[WORKER_COUNTS[0]]["elapsed_s"]
    for count, stats in scaling.items():
        stats["efficiency"] = t1 / (count * stats["elapsed_s"])
    return {"scaling": scaling, "overhead_ms_per_job": overhead_ms}


def _report(result):
    lines = [f"{HEAVY_JOBS} Monte-Carlo jobs "
             f"({HEAVY_TRIALS} trials each), TCP worker processes, "
             f"{os.cpu_count()} CPU(s) on this host"]
    for count, stats in sorted(result["scaling"].items()):
        lines.append(
            f"{count} worker(s): {stats['elapsed_s']:6.2f} s wall "
            f"({stats['busy_s']:6.2f} s on-worker) -> "
            f"efficiency {stats['efficiency'] * 100:5.1f} %")
    overhead = result["overhead_ms_per_job"]
    lines.append(f"coordination overhead: {overhead:.2f} ms/job "
                 f"({CHEAP_JOBS} cheap jobs through 1 worker)")
    if MAX_OVERHEAD_MS:
        verdict = "PASS" if overhead < MAX_OVERHEAD_MS else "FAIL"
        lines.append(f"budget: < {MAX_OVERHEAD_MS:.0f} ms/job -> {verdict}")
    else:
        lines.append("budget: disabled (REPRO_CLUSTER_MAX_OVERHEAD_MS=0)")
    return "\n".join(lines)


def _write_trajectory(result):
    metrics = {"overhead_ms_per_job": (result["overhead_ms_per_job"],
                                       "ms")}
    for count, stats in result["scaling"].items():
        metrics[f"elapsed_{count}w"] = (stats["elapsed_s"], "s")
        metrics[f"efficiency_{count}w"] = stats["efficiency"]
    write_bench_json("cluster", metrics)


def bench_cluster_scaling(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("CLUSTER SCALING (1 -> 2 -> 4 TCP workers + overhead budget)",
         _report(result))
    _write_trajectory(result)
    if (os.cpu_count() or 1) >= 2:
        # Parallel speedup needs parallel hardware; a 1-CPU host can
        # still verify the overhead budget below.
        assert result["scaling"][2]["elapsed_s"] \
            < result["scaling"][1]["elapsed_s"]  # 2 workers beat 1
    if MAX_OVERHEAD_MS:
        assert result["overhead_ms_per_job"] < MAX_OVERHEAD_MS


def main() -> int:
    result = measure()
    emit("CLUSTER SCALING (1 -> 2 -> 4 TCP workers + overhead budget)",
         _report(result))
    _write_trajectory(result)
    if not MAX_OVERHEAD_MS:
        return 0
    return 0 if result["overhead_ms_per_job"] < MAX_OVERHEAD_MS else 1


if __name__ == "__main__":
    sys.exit(main())
