"""Ablation: the d4 dimensioning rule (Section III-A).

"if the desired output has to give logic inversion then d4 must be
(n+1/2) lambda, whereas if the desired results has to give the
non-inverted output then d4 must be n lambda."

The bench sweeps the output-arm length over a full wavelength and
records the decoded polarity: the gate must flip from MAJ to NMAJ
exactly at the half-wavelength offsets, with the decision margin
collapsing at the quarter-wavelength boundaries.
"""

import math

import pytest

from bench_common import emit
from repro.core import GateDimensions, TriangleMajorityGate, segment_length
from repro.core.layout import PAPER_WAVELENGTH, PAPER_WIDTH
from repro.core.logic import input_patterns, majority


def _gate_with_d4(d4: float) -> TriangleMajorityGate:
    dims = GateDimensions(
        wavelength=PAPER_WAVELENGTH, width=PAPER_WIDTH,
        d1=segment_length(6, PAPER_WAVELENGTH),
        d2=segment_length(16, PAPER_WAVELENGTH),
        d3=segment_length(4, PAPER_WAVELENGTH),
        d4=d4, stem=segment_length(2, PAPER_WAVELENGTH))
    return TriangleMajorityGate(dimensions=dims)


def _sweep():
    from repro.core import PhaseDetector

    lam = PAPER_WAVELENGTH
    # Fixed phase reference: the all-zeros output of the *design-point*
    # gate (d4 = 1 lambda).  A per-gate self-calibration would absorb
    # the geometric inversion we want to observe.
    baseline = _gate_with_d4(lam)
    reference = baseline.output_envelopes((0, 0, 0))["O1"]
    detector = PhaseDetector(
        reference_phase=float(__import__("numpy").angle(reference)))

    rows = []
    for fraction in (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0):
        d4 = (1.0 + fraction) * lam
        gate = _gate_with_d4(d4)
        envelope = gate.output_envelopes((0, 1, 1))["O1"]
        detection = detector.detect_envelope(envelope)
        rows.append((fraction, d4, detection.logic_value, detection.margin))
    return rows


def bench_ablation_d4_inversion(benchmark):
    rows = benchmark(_sweep)

    lines = ["d4 offset (lambda) | decoded MAJ(0,1,1) | phase margin (rad)"]
    for fraction, d4, decoded, margin in rows:
        lines.append(f"  1 + {fraction:5.3f}          | {decoded}"
                     f"                  | {margin:+.3f}")
    emit("ABLATION -- d4 rule: n*lambda buffers, (n+1/2)*lambda inverts",
         "\n".join(lines))

    by_fraction = {round(f, 3): (decoded, margin)
                   for f, _d4, decoded, margin in rows}
    # n * lambda -> non-inverted (majority of (0,1,1) = 1).
    assert by_fraction[0.0][0] == 1
    assert by_fraction[1.0][0] == 1
    # (n + 1/2) * lambda -> inverted.
    assert by_fraction[0.5][0] == 0
    # Margin is maximal at the design points, minimal at the boundary.
    assert by_fraction[0.0][1] == pytest.approx(math.pi / 2, abs=1e-6)
    assert by_fraction[0.5][1] == pytest.approx(math.pi / 2, abs=1e-6)
    assert by_fraction[0.25][1] == pytest.approx(0.0, abs=1e-6)

    # Sanity: the inverted-design gate decodes NMAJ on every pattern.
    inverted = TriangleMajorityGate(invert_output=True)
    for bits in input_patterns(3):
        result = inverted.evaluate(bits)
        assert result.expected == 1 - majority(*bits)
        assert result.correct
