"""Extension benches: the scaling claims of Section III-A's last paragraph.

* fan-in: "more inputs can be added" -- the MAJ5 gate (2 extra stacked
  cells) vs replication-based alternatives;
* fan-out: "extended beyond 2 by using directional couplers ... and
  repeaters" -- cost of FO4/FO8 trees;
* data parallelism (the companion ref [9] direction): n-bit bitwise
  majority through one gate via frequency multiplexing.
"""

import pytest

from bench_common import emit
from repro.core.extended import FanoutTree, TriangleMajority5Gate
from repro.core.parallel import ParallelMajorityGate
from repro.evaluation import PAPER_ME_CELL
from repro.physics import FECOB, DispersionRelation, FilmStack


def _generate():
    maj5 = TriangleMajority5Gate()
    maj5_ok = maj5.is_functionally_correct()

    tree = FanoutTree()
    plans = {n: tree.plan(n) for n in (2, 4, 8)}
    max_fanout = tree.max_fanout()

    dispersion = DispersionRelation(FilmStack(material=FECOB,
                                              thickness=1e-9))
    parallel = ParallelMajorityGate(dispersion, n_channels=4,
                                    centre_frequency=17e9,
                                    channel_spacing=0.1e9)
    word = parallel.evaluate_word(0b1010, 0b1100, 0b0110)
    return maj5, maj5_ok, plans, max_fanout, parallel, word


def bench_extensions(benchmark):
    maj5, maj5_ok, plans, max_fanout, parallel, word = benchmark(_generate)

    e_cell = PAPER_ME_CELL.excitation_energy
    lines = [
        f"MAJ5 (stacked inputs): {maj5.n_cells} cells, all 32 patterns "
        f"{'correct' if maj5_ok else 'INCORRECT'}, energy "
        f"{maj5.n_excitation_cells * e_cell * 1e18:.1f} aJ "
        f"(vs {2 * 5 * e_cell * 1e18 / 2:.1f} aJ for two replicated "
        "MAJ3 front-ends)",
        "",
        "fan-out trees (couplers + repeaters):",
    ]
    for n, plan in plans.items():
        lines.append(
            f"  FO{n}: {plan.n_couplers} couplers, {plan.n_repeaters} "
            f"repeaters, leaf amplitude {plan.leaf_amplitude_before_repeaters:.2f}, "
            f"energy {plan.energy * 1e18:.1f} aJ, "
            f"+{plan.delay * 1e9:.2f} ns")
    lines.append(f"  max tree fan-out before repeater sensitivity: "
                 f"{max_fanout}")
    lines.append("")
    lines.append("frequency-multiplexed 4-bit bitwise MAJ "
                 "(one physical gate):")
    lines.extend(f"  {row}" for row in parallel.channel_summary())
    lines.append(f"  MAJ(0b1010, 0b1100, 0b0110) = 0b{word[0]:04b} "
                 f"(expected 0b1110), throughput x{parallel.throughput_gain():.0f}")
    emit("EXTENSIONS -- fan-in 5, fan-out > 2, n-bit parallelism",
         "\n".join(lines))

    assert maj5_ok
    assert maj5.n_cells == 7
    assert plans[4].n_repeaters == 4
    assert plans[8].tree_depth == 3
    assert max_fanout >= 8
    assert word[0] == 0b1110
    assert word[1] == word[2]  # FO2 on every channel
