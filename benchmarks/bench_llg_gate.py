"""Ground-truth bench: the triangle XOR gate in full LLG dynamics.

The paper's validation instrument was MuMax3; this bench runs the same
class of experiment on our from-scratch solver -- actual magnetisation
dynamics on the (scaled) triangle geometry with phase-encoded CW
transducers and lock-in readout.  A reference full-4-pattern run gives
a ~35x unanimous/antiphase amplitude contrast with O1 = O2; to bound
the bench runtime we solve the two representative patterns (one
unanimous, one antiphase) in a single round, ~3 minutes.
"""

import pytest

from bench_common import emit
from repro.micromag.gate_experiment import scaled_xor_experiment


def _generate():
    experiment = scaled_xor_experiment()
    unanimous = experiment.run_case((0, 0))
    antiphase = experiment.run_case((0, 1))
    return experiment, unanimous, antiphase


def bench_llg_gate(benchmark):
    experiment, unanimous, antiphase = benchmark.pedantic(
        _generate, rounds=1, iterations=1)

    fab = experiment.fabricated
    lines = [
        f"scaled triangle XOR, f = {experiment.frequency / 1e9:.0f} GHz, "
        f"lambda = {experiment.wavelength * 1e9:.1f} nm, "
        f"canvas {fab.mask.shape[1]} x {fab.mask.shape[0]} cells",
        f"inputs (0,0): O1 = {unanimous.amplitudes['O1']:.3e}, "
        f"O2 = {unanimous.amplitudes['O2']:.3e}",
        f"inputs (0,1): O1 = {antiphase.amplitudes['O1']:.3e}, "
        f"O2 = {antiphase.amplitudes['O2']:.3e}",
    ]
    contrast = (min(unanimous.amplitudes.values())
                / max(max(antiphase.amplitudes.values()), 1e-30))
    lines.append(f"unanimous/antiphase contrast: {contrast:.1f}x "
                 "(threshold 0.5 decodes XOR)")
    emit("LLG GROUND TRUTH -- triangle XOR in full magnetisation dynamics",
         "\n".join(lines))

    # Fan-out of 2: both outputs agree within a few percent.
    for case in (unanimous, antiphase):
        o1, o2 = case.amplitudes["O1"], case.amplitudes["O2"]
        assert o1 == pytest.approx(o2, rel=0.15), case.bits
    # XOR contrast: comfortably above the 2x needed for threshold 0.5.
    assert contrast > 5.0