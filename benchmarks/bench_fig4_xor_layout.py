"""Figure 4: the FO2 XOR triangle geometry.

Section IV-A: d1 = 330 nm and the output offset d2 = 40 nm ("as small
as possible to capture stronger spin wave" -- threshold detection cares
about amplitude, not phase, so d2 is *not* a lambda multiple).
"""

import pytest

from bench_common import emit
from repro.core import (
    fabricate,
    paper_xor_dimensions,
    validate_phase_design,
    xor_layout,
)
from repro.viz import amplitude_gray, write_pgm


def _generate():
    dims = paper_xor_dimensions()
    layout = xor_layout(dims)
    checks = validate_phase_design(layout)
    fab = fabricate(layout)
    return dims, layout, checks, fab


def bench_fig4_xor_layout(benchmark, output_dir):
    dims, layout, checks, fab = benchmark(_generate)

    lam = dims.wavelength
    lines = [
        f"lambda = {lam * 1e9:.0f} nm, width = {dims.width * 1e9:.0f} nm",
        f"d1 = {dims.d1 * 1e9:.0f} nm ({dims.d1 / lam:.0f} lambda)  "
        "[paper: 330 nm]",
        f"d2 = {dims.d2_xor * 1e9:.0f} nm (detector offset, NOT a lambda "
        "multiple)  [paper: 40 nm]",
        "",
        "phase-design checks:",
    ]
    lines += [f"  {name}: {'PASS' if ok else 'FAIL'}"
              for name, ok in checks.items()]
    emit("FIGURE 4 -- FO2 XOR gate geometry (reconstructed)",
         "\n".join(lines))

    assert dims.d1 == pytest.approx(330e-9)
    assert dims.d2_xor == pytest.approx(40e-9)
    assert all(checks.values()), checks
    # Four transducer terminals: 2 inputs + 2 outputs (third input gone).
    assert len(layout.input_names) == 2
    assert len(layout.output_names) == 2
    assert "I3" not in layout.nodes
    # The detector offset is deliberately small: well under a wavelength.
    assert dims.d2_xor < lam

    image = amplitude_gray(fab.mask.astype(float))
    write_pgm(f"{output_dir}/fig4_xor_geometry.pgm", image)
    from repro.viz import save_layout_svg

    save_layout_svg(layout, f"{output_dir}/fig4_xor_geometry.svg",
                    title="Figure 4: FO2 XOR triangle gate (reconstructed)")
