"""Micro-benchmark: cost of the repro.obs instrumentation on the FDTD
hot loop.

The observability contract (repro.obs) is that instrumented code with
tracing *disabled* pays a single flag check per call site -- the budget
is < 5 % wall-time overhead on a 2k-step FDTD run versus an
uninstrumented replica of the same leapfrog loop.  This bench times
three variants on an identical 96 x 96 canvas:

* ``baseline``  -- a local re-implementation of the pre-instrumentation
  leapfrog update, no step counter / heartbeat / observer check;
* ``disabled``  -- ``ScalarWaveSimulator.step`` with the observer
  detached (the production default), the variant under budget;
* ``enabled``   -- the same with spans + metrics active, for scale.

Runnable standalone for CI (``python benchmarks/bench_obs_overhead.py``
exits non-zero above budget) or through pytest-benchmark.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro import obs
    from repro.fdtd import ScalarWaveSimulator
    from repro.obs import flight
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro import obs
    from repro.fdtd import ScalarWaveSimulator
    from repro.obs import flight

N_STEPS = 2000
SHAPE = (96, 96)
BUDGET = 0.05


def _make_sim() -> ScalarWaveSimulator:
    mask = np.ones(SHAPE, dtype=bool)
    return ScalarWaveSimulator(mask=mask, dx=10e-9, wavelength=110e-9,
                               frequency=2.282e9)


def _baseline_seconds() -> float:
    """Time an uninstrumented replica of the simulator's leapfrog loop.

    Mirrors ``ScalarWaveSimulator._advance`` minus the step counter and
    heartbeat hook: same buffers, same Laplacian stencil, same damping
    update and source injection per step.
    """
    sim = _make_sim()
    c2 = sim._laplacian_scale
    dt = sim.dt
    masks = sim._neighbour_masks
    neighbours = (masks[(0, 1)].astype(float) + masks[(0, -1)]
                  + masks[(1, 1)] + masks[(1, -1)])
    t0 = time.perf_counter()
    for _ in range(N_STEPS):
        lap = (
            np.roll(sim.u, 1, axis=0) * masks[(0, 1)]
            + np.roll(sim.u, -1, axis=0) * masks[(0, -1)]
            + np.roll(sim.u, 1, axis=1) * masks[(1, 1)]
            + np.roll(sim.u, -1, axis=1) * masks[(1, -1)]
        )
        lap -= neighbours * sim.u
        damp = sim.gamma * dt
        new = ((2.0 * sim.u - (1.0 - damp) * sim.u_prev + c2 * lap)
               / (1.0 + damp))
        new *= sim.mask
        sim.u_prev = sim.u
        sim.u = new
        sim.t += dt
        sim._apply_sources(sim.t, sim.u)
    return time.perf_counter() - t0


def _instrumented_seconds(enabled: bool) -> float:
    sim = _make_sim()
    if enabled:
        obs.enable()
    try:
        t0 = time.perf_counter()
        sim.step(N_STEPS)
        return time.perf_counter() - t0
    finally:
        if enabled:
            obs.drain_spans()
            obs.disable()


def _flight_record_ns(n_events: int = 20000) -> float:
    """Average cost of one flight-recorder event append.

    The recorder is *always on*, so its steady-state price matters:
    one dict build plus a GIL-atomic deque append, with old events
    falling off the bounded ring for free.
    """
    flight.clear()
    t0 = time.perf_counter_ns()
    for i in range(n_events):
        flight.record("bench", index=i)
    elapsed = time.perf_counter_ns() - t0
    flight.clear()
    return elapsed / n_events


def measure(repeats: int = 5) -> dict:
    """Best-of-``repeats`` timings for all variants.

    ``enabled`` now includes the full deep-profiling path: the
    ``fdtd.step`` span (flight-recorded open/close), the per-phase
    stencil/boundary/source timers and the throughput gauges.

    Rounds are interleaved (baseline, disabled, enabled per round)
    rather than run as sequential blocks, so slow machine drift --
    a noisy CI neighbour spinning up mid-bench -- degrades every
    variant instead of silently skewing one ratio.
    """
    obs.disable()
    base = disabled = enabled = float("inf")
    for _ in range(repeats):
        base = min(base, _baseline_seconds())
        disabled = min(disabled, _instrumented_seconds(False))
        enabled = min(enabled, _instrumented_seconds(True))
    return {
        "baseline_s": base,
        "disabled_s": disabled,
        "enabled_s": enabled,
        "disabled_overhead": disabled / base - 1.0,
        "enabled_overhead": enabled / base - 1.0,
        "flight_record_ns": min(_flight_record_ns()
                                for _ in range(repeats)),
    }


def _report(timing: dict) -> str:
    verdict = "PASS" if timing["disabled_overhead"] < BUDGET else "FAIL"
    return "\n".join([
        f"{N_STEPS}-step FDTD run on {SHAPE[0]} x {SHAPE[1]} cells "
        f"(best of 5, interleaved)",
        f"uninstrumented baseline : {timing['baseline_s'] * 1e3:8.1f} ms",
        f"obs disabled            : {timing['disabled_s'] * 1e3:8.1f} ms "
        f"({timing['disabled_overhead'] * 100:+.2f} %)",
        f"obs enabled (phases)    : {timing['enabled_s'] * 1e3:8.1f} ms "
        f"({timing['enabled_overhead'] * 100:+.2f} %)",
        f"flight recorder append  : {timing['flight_record_ns']:8.0f} ns "
        f"per event (always on)",
        f"budget: disabled overhead < {BUDGET * 100:.0f} % -> {verdict}",
    ])


def _write_trajectory(timing: dict) -> None:
    write_bench_json("obs_overhead", {
        "baseline": (timing["baseline_s"], "s"),
        "disabled": (timing["disabled_s"], "s"),
        "enabled": (timing["enabled_s"], "s"),
        "disabled_overhead": (timing["disabled_overhead"], "ratio"),
        "enabled_overhead": (timing["enabled_overhead"], "ratio"),
        "flight_record_ns": (timing["flight_record_ns"], "ns"),
    })


def bench_obs_overhead(benchmark):
    timing = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("OBS OVERHEAD (tracing disabled must stay under 5 %)",
         _report(timing))
    _write_trajectory(timing)
    assert timing["disabled_overhead"] < BUDGET


def main() -> int:
    timing = measure()
    print(_report(timing))
    _write_trajectory(timing)
    return 0 if timing["disabled_overhead"] < BUDGET else 1


if __name__ == "__main__":
    sys.exit(main())
