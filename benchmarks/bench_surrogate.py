"""Benchmark: the surrogate "instant" tier vs the network tier.

The surrogate's contract (docs/SURROGATE.md) is a warm in-domain query
answering in well under a millisecond and >= 100x faster than a *cold*
network-tier ``run_gate_case`` -- the pool-worker / first-request cost
the characterize-then-lookup flow amortises away.  This bench:

1. characterizes a small grid (network tier) into a temp store, fits
   the multilinear surrogate and round-trips it through save/load;
2. times 2000 warm ``query_case`` calls (p50 gate: < 1 ms);
3. times the cold network baseline in a fresh subprocess (interpreter
   + import + first ``run_gate_case``, exactly what a cold pool worker
   pays) and the warm in-process network call for scale;
4. asserts the cold speedup >= 100x and that an in-domain surrogate
   answer matches the network tier's truth table exactly, while an
   out-of-domain query falls back to the network tier
   (``degraded_from="surrogate"``) with identical outputs.

Runnable standalone for CI (``python benchmarks/bench_surrogate.py``
exits non-zero off-contract) or through pytest.
"""

import os
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro.core.logic import input_patterns
    from repro.micromag.experiments import run_gate_case
    from repro.surrogate import (
        AxisSpec,
        CharacterizationStore,
        characterize,
        clear_registry,
        fit_surrogate,
        load_model,
        query_point,
        register,
    )
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.core.logic import input_patterns
    from repro.micromag.experiments import run_gate_case
    from repro.surrogate import (
        AxisSpec,
        CharacterizationStore,
        characterize,
        clear_registry,
        fit_surrogate,
        load_model,
        query_point,
        register,
    )

GATE = "xor"
N_QUERIES = 2000
N_TRIALS = 16
P50_BUDGET_MS = 1.0
COLD_SPEEDUP_FLOOR = 100.0

#: Small but non-degenerate grid: 2 x 3 x 1 x 2 = 12 corners,
#: seconds to characterize from the network tier.
AXES = (
    AxisSpec("phase_noise", (0.0, 0.2)),
    AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
    AxisSpec("geometry_jitter", (0.0,)),
    AxisSpec("temperature", (0.0, 300.0)),
)

_COLD_SNIPPET = """\
import sys, time
sys.path[:0] = {paths!r}
t0 = time.perf_counter()
from repro.micromag.experiments import run_gate_case
run_gate_case({gate!r}, {bits!r}, tier="network", calibrated=False)
print((time.perf_counter() - t0) * 1e3)
"""


def _cold_network_ms(bits) -> float:
    """Cold network-tier cost: fresh interpreter, import, first case.

    This is what every cold pool worker (and the first request of a
    freshly started service) pays before the network tier can answer
    -- the baseline the surrogate's instant tier replaces.
    """
    src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    snippet = _COLD_SNIPPET.format(paths=[src], gate=GATE,
                                   bits=tuple(bits))
    out = subprocess.run([sys.executable, "-c", snippet],
                         capture_output=True, text=True, timeout=300,
                         check=True)
    return float(out.stdout.strip().splitlines()[-1])


def run() -> dict:
    clear_registry()
    with tempfile.TemporaryDirectory() as root:
        store = CharacterizationStore(root)
        dataset = store.dataset(GATE, tier="network", axes=AXES,
                                n_trials=N_TRIALS)
        t0 = time.perf_counter()
        records = characterize(dataset)
        characterize_s = time.perf_counter() - t0
        model = fit_surrogate(records.values())
        fit_ms = model.meta["fit_ms"]
        model.save(store.model_path(GATE))
        model = load_model(store.model_path(GATE))  # round-trip
        register(model)

        # -- warm query latency --------------------------------------------
        point = query_point(phase_noise=0.05, temperature=120.0)
        bits_cycle = input_patterns(2)
        model.query_case((1, 0), point)  # warm the import/glue path
        samples = []
        for i in range(N_QUERIES):
            bits = bits_cycle[i % len(bits_cycle)]
            t0 = time.perf_counter()
            model.query_case(bits, point)
            samples.append((time.perf_counter() - t0) * 1e3)
        samples.sort()
        p50 = statistics.median(samples)
        p99 = samples[int(len(samples) * 0.99)]

        # -- network baselines ---------------------------------------------
        cold_ms = _cold_network_ms((1, 0))
        t0 = time.perf_counter()
        run_gate_case(GATE, (1, 0), tier="network", calibrated=False)
        warm_network_ms = (time.perf_counter() - t0) * 1e3

        # -- matched accuracy ----------------------------------------------
        mismatches = []
        for bits in bits_cycle:
            via_surrogate = run_gate_case(GATE, bits, tier="surrogate")
            via_network = run_gate_case(GATE, bits, tier="network",
                                        calibrated=False)
            assert via_surrogate["tier"] == "surrogate", via_surrogate
            same_logic = all(
                via_surrogate["outputs"][n]["logic"]
                == via_network["outputs"][n]["logic"]
                for n in via_network["outputs"])
            drift = max(abs(a - b) for a, b in
                        zip(via_surrogate["normalized"],
                            via_network["normalized"]))
            if not same_logic or drift > 1e-9:
                mismatches.append((bits, drift))

        # -- out-of-domain fallback ----------------------------------------
        fallback = run_gate_case(GATE, (1, 0), tier="surrogate",
                                 frequency=12e9)
        direct = run_gate_case(GATE, (1, 0), tier="network",
                               frequency=12e9)
        fallback_ok = (fallback["tier"] == "network"
                       and fallback.get("degraded_from") == "surrogate"
                       and fallback["outputs"] == direct["outputs"])
        clear_registry()

    return {"p50_ms": p50, "p99_ms": p99, "cold_ms": cold_ms,
            "warm_network_ms": warm_network_ms, "fit_ms": fit_ms,
            "characterize_s": characterize_s,
            "n_records": len(records), "mismatches": mismatches,
            "fallback_ok": fallback_ok}


def check(results: dict) -> list:
    failures = []
    if results["p50_ms"] >= P50_BUDGET_MS:
        failures.append(f"warm query p50 {results['p50_ms']:.3f} ms "
                        f">= budget {P50_BUDGET_MS} ms")
    speedup = results["cold_ms"] / results["p50_ms"]
    if speedup < COLD_SPEEDUP_FLOOR:
        failures.append(f"speedup vs cold network {speedup:.0f}x "
                        f"< floor {COLD_SPEEDUP_FLOOR:.0f}x")
    if results["mismatches"]:
        failures.append(f"in-domain truth-table mismatches: "
                        f"{results['mismatches']}")
    if not results["fallback_ok"]:
        failures.append("out-of-domain query did not fall back to an "
                        "identical network-tier answer")
    return failures


def report(results: dict) -> list:
    speedup_cold = results["cold_ms"] / results["p50_ms"]
    speedup_warm = results["warm_network_ms"] / results["p50_ms"]
    failures = check(results)
    body = [
        f"gate                : {GATE} ({results['n_records']} grid "
        f"corners, characterized in {results['characterize_s']:.2f} s, "
        f"fit in {results['fit_ms']:.1f} ms)",
        f"warm query p50      : {results['p50_ms'] * 1e3:.1f} us "
        f"(budget {P50_BUDGET_MS * 1e3:.0f} us), "
        f"p99 {results['p99_ms'] * 1e3:.1f} us",
        f"cold network case   : {results['cold_ms']:.1f} ms "
        "(fresh process: import + first run_gate_case)",
        f"warm network case   : {results['warm_network_ms'] * 1e3:.0f} us "
        "(in-process, for scale)",
        f"speedup vs cold     : {speedup_cold:.0f}x "
        f"(floor {COLD_SPEEDUP_FLOOR:.0f}x)",
        f"speedup vs warm     : {speedup_warm:.1f}x",
        "in-domain accuracy  : exact truth-table match vs network tier",
        "out-of-domain       : falls back to the network tier "
        "(degraded_from=surrogate), identical outputs",
        "verdict             : " + ("PASS" if not failures
                                    else "; ".join(failures)),
    ]
    emit("SURROGATE TIER -- instant queries vs the network tier",
         "\n".join(body))
    write_bench_json("surrogate", {
        "query_p50_ms": (results["p50_ms"], "ms"),
        "query_p99_ms": (results["p99_ms"], "ms"),
        "cold_network_ms": (results["cold_ms"], "ms"),
        "warm_network_ms": (results["warm_network_ms"], "ms"),
        "speedup_cold_x": (speedup_cold, "x"),
        "speedup_warm_x": (speedup_warm, "x"),
        "fit_ms": (results["fit_ms"], "ms"),
    })
    return failures


def test_surrogate_bench():
    results = run()
    failures = report(results)
    assert not failures, failures


if __name__ == "__main__":
    all_failures = report(run())
    sys.exit(1 if all_failures else 0)
