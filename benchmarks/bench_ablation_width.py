"""Ablation: the width <= wavelength design rule (Section III-A).

"To simplify the interference pattern, the width of the waveguide must
be equal or less than wavelength lambda."

The bench checks both directions:

* the layout layer *rejects* widths above lambda outright;
* on the FDTD tier, an XOR gate rasterised at the full multimode width
  (no single-mode narrowing) loses its destructive-interference
  contrast, while the single-mode realisation keeps it -- the physical
  mechanism behind the rule.
"""

import pytest

from bench_common import emit
from repro.core import GateDimensions, TriangleXorGate, paper_xor_dimensions
from repro.core.fabric import build_wave_simulator, fabricate
from repro.core.layout import xor_layout
from repro.fdtd import run_steady_state


def _contrast(single_mode: bool) -> float:
    """Worst destructive amplitude / unanimous amplitude on FDTD."""
    fab = fabricate(xor_layout(), single_mode=single_mode)
    amplitudes = {}
    for bits in ((0, 0), (0, 1)):
        sim = build_wave_simulator(fab, 10e9,
                                   {"I1": bits[0], "I2": bits[1]})
        from repro.core.fabric import settle_periods_for
        envelope = run_steady_state(sim, settle_periods_for(fab))
        amplitudes[bits] = abs(sim.region_envelope(
            fab.terminal_masks["O1"], envelope))
    return amplitudes[(0, 1)] / amplitudes[(0, 0)]


def _generate():
    return _contrast(single_mode=True), _contrast(single_mode=False)


def bench_ablation_width(benchmark):
    narrow, wide = benchmark.pedantic(_generate, rounds=1, iterations=1)

    emit("ABLATION -- width rule (w <= lambda)",
         "\n".join([
             "destructive/unanimous amplitude ratio at O1:",
             f"  single-mode guides (w < lambda/2): {narrow:.3f} "
             "(clean cancellation)",
             f"  multimode guides  (w ~ lambda):    {wide:.3f} "
             "(odd mode destroys the contrast)",
         ]))

    # Narrow guides decode XOR (ratio below the 0.5 threshold)...
    assert narrow < 0.5
    # ...while the multimode realisation loses the contrast entirely.
    assert wide > narrow

    # And the layout layer refuses widths beyond the rule.
    with pytest.raises(ValueError, match="must not exceed"):
        GateDimensions(wavelength=55e-9, width=60e-9, d1=330e-9)
