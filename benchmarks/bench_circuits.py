"""Circuit-level benchmark: the workloads the paper's intro motivates.

Section I: multi-output gates matter because "the same structure can be
used to feed multiple inputs of next stage gates simultaneously" --
without FO2, "the logic gate must be replicated multiple times which
gives significant energy overhead".  The bench quantifies that claim on
the full-adder / ripple-carry-adder circuits: energy per operation with
FO2 triangle gates vs single-output gates that must be duplicated for
each consumer.
"""

import pytest

from bench_common import emit
from repro.circuits import CircuitSimulator, full_adder_netlist, ripple_carry_adder_netlist
from repro.core.logic import full_adder
from repro.evaluation import PAPER_ME_CELL


def _replication_energy(netlist) -> float:
    """Energy if every FO2 gate with two consumers were duplicated.

    A single-output gate library must instantiate one extra copy of a
    gate for each extra consumer of its output; each copy re-excites
    all of the gate's inputs.
    """
    extra = 0.0
    for gate in netlist.gates.values():
        driven = [o for o in gate.outputs if o is not None]
        if gate.gate_type in ("MAJ3", "NMAJ3") and len(driven) == 2:
            extra += 3 * PAPER_ME_CELL.excitation_energy
        elif gate.gate_type in ("XOR", "XNOR") and len(driven) == 2:
            extra += 2 * PAPER_ME_CELL.excitation_energy
    return extra


def _generate():
    adder = ripple_carry_adder_netlist(4)
    sim = CircuitSimulator(adder)
    inputs = {f"a{i}": 1 for i in range(4)}
    inputs.update({f"b{i}": (i % 2) for i in range(4)})
    inputs["cin"] = 0
    report = sim.run(inputs)
    extra = _replication_energy(adder)
    fa = CircuitSimulator(full_adder_netlist())
    fa_report = fa.run({"a": 1, "b": 1, "cin": 0})
    return adder, report, extra, fa_report


def bench_circuit_adders(benchmark):
    adder, report, extra, fa_report = benchmark(_generate)

    total_single_output = report.energy + extra
    lines = [
        f"full adder: {fa_report.energy * 1e18:.1f} aJ, "
        f"{fa_report.stage_count} stages, "
        f"{fa_report.delay * 1e9:.1f} ns",
        f"4-bit ripple-carry adder ({adder.gate_count} gate instances):",
        f"  energy with FO2 gates        : {report.energy * 1e18:.1f} aJ",
        f"  energy if replicated (no FO2): "
        f"{total_single_output * 1e18:.1f} aJ",
        f"  FO2 saving                   : "
        f"{(1 - report.energy / total_single_output) * 100:.0f} %",
        f"  critical path                : {report.stage_count} stages = "
        f"{report.delay * 1e9:.1f} ns",
    ]
    emit("CIRCUITS -- energy dividend of fan-out-of-2", "\n".join(lines))

    # Functional spot check against arithmetic.
    a_val = 0b1111
    b_val = 0b1010
    out = report.outputs
    total = sum(out[f"s{i}"] << i for i in range(4)) + (out["cout"] << 4)
    assert total == a_val + b_val
    # FO2 saves energy whenever a carry feeds two consumers.
    assert extra > 0
    assert report.energy < total_single_output
    # Full adder reference.
    s, c = full_adder(1, 1, 0)
    assert fa_report.outputs == {"sum": s, "carry": c}
