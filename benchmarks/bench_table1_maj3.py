"""Table I: fan-in-3 fan-out-2 Majority gate normalised output magnetisation.

Paper values (MuMax3): unanimous inputs -> 1.0; minority-I1 -> 0.083,
minority-I2 -> 0.16, minority-I3 -> 0.164, identical at O1 and O2.

The bench regenerates the table from the calibrated triangle-gate model
(the configuration documented in EXPERIMENTS.md) and checks the
*shape*: O1 = O2 (fan-out 2 achieved), unanimous cases at 1.0,
all minority cases small, and the phase-decoded logic correct for
every pattern.

The paper produces this table as a grid of independent MuMax3 runs --
one per input combination -- so since the orchestration engine landed
the bench submits the 8 patterns through :mod:`repro.runtime` instead
of a bare loop: one cacheable job per pattern, then a second (warm)
pass asserting the content-addressed cache serves every pattern.
"""

import pytest

from bench_common import emit
from repro.core import PAPER_TABLE_I
from repro.core.logic import input_patterns, majority
from repro.io import format_truth_table
from repro.micromag.experiments import sweep_gate_truth_table
from repro.runtime import Executor, MemoryCache


def _generate_table():
    executor = Executor(cache=MemoryCache())
    cold = sweep_gate_truth_table("maj3", tier="network", executor=executor)
    warm = sweep_gate_truth_table("maj3", tier="network", executor=executor)
    return cold, warm


def bench_table1_maj3(benchmark):
    cold, warm = benchmark(_generate_table)

    # The paper's Table I orders rows by (I3, I2, I1).
    patterns = sorted(input_patterns(3), key=lambda b: (b[2], b[1], b[0]))
    rows = []
    for bits in patterns:
        o1, o2 = cold.normalized_table[bits]
        p1, p2 = PAPER_TABLE_I[bits]
        rows.append([f"{o1:.3f}", f"{o2:.3f}", f"{p1}", f"{p2}"])
    emit("TABLE I -- FO2 MAJ3 normalised output magnetisation "
         "(reproduced vs paper)",
         format_truth_table([tuple(reversed(b)) for b in patterns],
                            ["O1 (ours)", "O2 (ours)",
                             "O1 (paper)", "O2 (paper)"],
                            rows, ["I3", "I2", "I1"])
         + "\n\n" + cold.report.summary()
         + "\nwarm pass: " + warm.report.summary().replace("\n", "; "))

    for bits in patterns:
        o1, o2 = cold.normalized_table[bits]
        # Fan-out of 2: both outputs identical.
        assert o1 == pytest.approx(o2, abs=1e-9)
        # Exact reproduction of the published magnitudes.
        assert o1 == pytest.approx(PAPER_TABLE_I[bits][0], abs=1e-6)
        # Logic correct via phase detection.
        assert cold.cases[bits]["correct"]
        assert cold.cases[bits]["expected"] == majority(*bits)

    # Engine telemetry: 8 independent jobs, all recomputed cold, all
    # served content-addressed on the warm pass.
    assert cold.report.n_jobs == 8 and cold.report.cache_hits == 0
    assert warm.report.n_jobs == 8 and warm.report.hit_rate == 1.0
    assert warm.report.n_failed == 0
