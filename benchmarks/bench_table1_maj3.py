"""Table I: fan-in-3 fan-out-2 Majority gate normalised output magnetisation.

Paper values (MuMax3): unanimous inputs -> 1.0; minority-I1 -> 0.083,
minority-I2 -> 0.16, minority-I3 -> 0.164, identical at O1 and O2.

The bench regenerates the table from the calibrated triangle-gate model
(the configuration documented in EXPERIMENTS.md) and checks the
*shape*: O1 = O2 (fan-out 2 achieved), unanimous cases at 1.0,
all minority cases small, and the phase-decoded logic correct for
every pattern.
"""

import pytest

from bench_common import emit
from repro.core import PAPER_TABLE_I, paper_table_i_gate
from repro.core.logic import input_patterns, majority
from repro.io import format_truth_table


def _generate_table():
    gate = paper_table_i_gate()
    table = gate.normalized_output_table()
    logic = gate.truth_table()
    return gate, table, logic


def bench_table1_maj3(benchmark):
    gate, table, logic = benchmark(_generate_table)

    # The paper's Table I orders rows by (I3, I2, I1).
    patterns = sorted(input_patterns(3), key=lambda b: (b[2], b[1], b[0]))
    rows = []
    for bits in patterns:
        o1, o2 = table[bits]
        p1, p2 = PAPER_TABLE_I[bits]
        rows.append([f"{o1:.3f}", f"{o2:.3f}", f"{p1}", f"{p2}"])
    emit("TABLE I -- FO2 MAJ3 normalised output magnetisation "
         "(reproduced vs paper)",
         format_truth_table([tuple(reversed(b)) for b in patterns],
                            ["O1 (ours)", "O2 (ours)",
                             "O1 (paper)", "O2 (paper)"],
                            rows, ["I3", "I2", "I1"]))

    for bits in patterns:
        o1, o2 = table[bits]
        # Fan-out of 2: both outputs identical.
        assert o1 == pytest.approx(o2, abs=1e-9)
        # Exact reproduction of the published magnitudes.
        assert o1 == pytest.approx(PAPER_TABLE_I[bits][0], abs=1e-6)
        # Logic correct via phase detection.
        assert logic[bits].correct
        assert logic[bits].expected == majority(*bits)
