"""Figure 1: spin-wave parameters (wavelength, wavenumber, phase).

The figure illustrates two waves -- (a) phase 0, k = 1 and (b) phase
pi, k = 3 (in units of the base wavenumber).  The bench regenerates the
two spatial waveforms, verifies the parameter relations (k = 2 pi /
lambda, the phase-pi wave is the inverted wave) and writes the sampled
curves to the output directory.
"""

import math

import numpy as np
import pytest

from bench_common import emit
from repro.physics import Wave, phase_distance


def _generate():
    lam_base = 55e-9
    x = np.linspace(0.0, 3 * lam_base, 600)
    curves = {}
    for label, phase, k_mult in (("a", 0.0, 1), ("b", math.pi, 3)):
        k = k_mult * 2.0 * math.pi / lam_base
        # Spatial snapshot at t = 0: A cos(phi - k x).
        curves[label] = {
            "k": k,
            "wavelength": 2.0 * math.pi / k,
            "phase": phase,
            "x": x,
            "y": np.cos(phase - k * x),
        }
    return curves


def bench_fig1_wave_parameters(benchmark, output_dir):
    curves = benchmark(_generate)

    lines = []
    for label, c in curves.items():
        lines.append(
            f"wave {label}: phase = {c['phase'] / math.pi:.0f} pi, "
            f"k = {c['k'] * 1e-6:.1f} rad/um, "
            f"lambda = {c['wavelength'] * 1e9:.1f} nm")
    emit("FIGURE 1 -- spin wave parameters", "\n".join(lines))

    a, b = curves["a"], curves["b"]
    # k = 2 pi / lambda for both waves.
    for c in (a, b):
        assert c["k"] * c["wavelength"] == pytest.approx(2.0 * math.pi)
    # Wave b has 3x the wavenumber -> 1/3 the wavelength.
    assert b["wavelength"] == pytest.approx(a["wavelength"] / 3.0)
    # Phase pi inverts the waveform at x = 0.
    assert b["y"][0] == pytest.approx(-a["y"][0])
    # Phase difference is pi exactly.
    assert phase_distance(a["phase"], b["phase"]) == pytest.approx(math.pi)

    data = np.column_stack([a["x"], a["y"], b["y"]])
    np.savetxt(f"{output_dir}/fig1_wave_parameters.csv", data,
               delimiter=",", header="x_m,wave_a,wave_b")
