"""Table II: fan-in-2 fan-out-2 XOR gate normalised output magnetisation.

Paper values (MuMax3): {0,0} -> (0.99, 1), {1,1} -> (1, 1), mixed
inputs -> ~0 at both outputs; threshold 0.5 decodes XOR (amplitude
above threshold = logic 0) and flipping the comparison yields XNOR.
"""

import pytest

from bench_common import emit
from repro.core import PAPER_TABLE_II, TriangleXorGate, paper_table_ii_gate
from repro.core.logic import input_patterns, xnor, xor
from repro.io import format_truth_table


def _generate_tables():
    gate = paper_table_ii_gate()
    table = gate.normalized_output_table()
    logic = gate.truth_table()
    xnor_gate = TriangleXorGate(xnor=True)
    xnor_logic = xnor_gate.truth_table()
    return table, logic, xnor_logic


def bench_table2_xor(benchmark):
    table, logic, xnor_logic = benchmark(_generate_tables)

    patterns = sorted(input_patterns(2), key=lambda b: (b[1], b[0]))
    rows = []
    for bits in patterns:
        o1, o2 = table[bits]
        p1, p2 = PAPER_TABLE_II[bits]
        rows.append([f"{o1:.3f}", f"{o2:.3f}", f"{p1}", f"{p2}"])
    emit("TABLE II -- FO2 XOR normalised output magnetisation "
         "(reproduced vs paper)",
         format_truth_table([tuple(reversed(b)) for b in patterns],
                            ["O1 (ours)", "O2 (ours)",
                             "O1 (paper)", "O2 (paper)"],
                            rows, ["I2", "I1"]))

    for bits in patterns:
        o1, o2 = table[bits]
        assert o1 == pytest.approx(o2, abs=1e-9)       # fan-out of 2
        paper = PAPER_TABLE_II[bits][1]
        # Same side of the 0.5 threshold as the paper's value.
        assert (o1 > 0.5) == (paper > 0.5), bits
        # XOR decodes correctly; flipping the condition gives XNOR.
        assert logic[bits].correct
        assert logic[bits].expected == xor(*bits)
        assert xnor_logic[bits].correct
        assert xnor_logic[bits].expected == xnor(*bits)
