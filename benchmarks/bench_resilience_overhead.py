"""Micro-benchmark: cost of the repro.resilience hooks on the FDTD
hot loop.

The resilience contract (repro.resilience) mirrors repro.obs: with no
watchdog attached, no checkpoint manager configured and no fault plan
armed, ``ScalarWaveSimulator.step`` must take the plain ``_advance``
path and pay only the per-call dispatch checks -- the budget is < 5 %
wall-time overhead on a 2k-step FDTD run versus an uninstrumented
replica of the same leapfrog loop.  This bench times four variants on
an identical 96 x 96 canvas:

* ``baseline``  -- a local re-implementation of the pre-instrumentation
  leapfrog update (shared with bench_obs_overhead's methodology);
* ``disabled``  -- ``ScalarWaveSimulator.step`` with no watchdog, no
  checkpointing and no fault plan (the production default), the
  variant under budget;
* ``watchdog``  -- the same with a ``FieldWatchdog(every=500)``
  attached (finiteness + runaway checks every 500 steps), for scale;
* ``armed``     -- a fault plan installed whose site never fires on
  this loop, showing the cost of chaos-armed processes.

Runnable standalone for CI
(``python benchmarks/bench_resilience_overhead.py`` exits non-zero
above budget) or through pytest-benchmark.
"""

import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro.fdtd import ScalarWaveSimulator
    from repro.resilience import FaultPlan, FaultSpec, faults
    from repro.resilience.guardrails import FieldWatchdog
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.fdtd import ScalarWaveSimulator
    from repro.resilience import FaultPlan, FaultSpec, faults
    from repro.resilience.guardrails import FieldWatchdog

N_STEPS = 2000
SHAPE = (96, 96)
BUDGET = 0.05


def _make_sim(watchdog=None) -> ScalarWaveSimulator:
    mask = np.ones(SHAPE, dtype=bool)
    return ScalarWaveSimulator(mask=mask, dx=10e-9, wavelength=110e-9,
                               frequency=2.282e9, watchdog=watchdog)


def _baseline_seconds() -> float:
    """Time an uninstrumented replica of the simulator's leapfrog loop.

    Mirrors ``ScalarWaveSimulator._advance`` minus the step counter,
    heartbeat hook and resilience dispatch: same buffers, same
    Laplacian stencil, same damping update and source injection.
    """
    sim = _make_sim()
    c2 = sim._laplacian_scale
    dt = sim.dt
    masks = sim._neighbour_masks
    neighbours = (masks[(0, 1)].astype(float) + masks[(0, -1)]
                  + masks[(1, 1)] + masks[(1, -1)])
    t0 = time.perf_counter()
    for _ in range(N_STEPS):
        lap = (
            np.roll(sim.u, 1, axis=0) * masks[(0, 1)]
            + np.roll(sim.u, -1, axis=0) * masks[(0, -1)]
            + np.roll(sim.u, 1, axis=1) * masks[(1, 1)]
            + np.roll(sim.u, -1, axis=1) * masks[(1, -1)]
        )
        lap -= neighbours * sim.u
        damp = sim.gamma * dt
        new = ((2.0 * sim.u - (1.0 - damp) * sim.u_prev + c2 * lap)
               / (1.0 + damp))
        new *= sim.mask
        sim.u_prev = sim.u
        sim.u = new
        sim.t += dt
        sim._apply_sources(sim.t, sim.u)
    return time.perf_counter() - t0


def _variant_seconds(watchdog=None, plan=None) -> float:
    sim = _make_sim(watchdog=watchdog)
    if plan is not None:
        faults.install(plan)
    try:
        t0 = time.perf_counter()
        sim.step(N_STEPS)
        return time.perf_counter() - t0
    finally:
        if plan is not None:
            faults.uninstall()


def measure(repeats: int = 3) -> dict:
    """Best-of-``repeats`` timings for all four variants."""
    faults.uninstall()
    # A plan for a site this loop never reaches: the armed variant pays
    # faults.active() + the trip() lookup on "fdtd.step" every step.
    idle_plan = FaultPlan(specs=(
        FaultSpec(site="executor.invoke", kind="error", at=10 ** 9),))
    base = min(_baseline_seconds() for _ in range(repeats))
    disabled = min(_variant_seconds() for _ in range(repeats))
    watchdog = min(_variant_seconds(watchdog=FieldWatchdog(every=500))
                   for _ in range(repeats))
    armed = min(_variant_seconds(plan=idle_plan) for _ in range(repeats))
    return {
        "baseline_s": base,
        "disabled_s": disabled,
        "watchdog_s": watchdog,
        "armed_s": armed,
        "disabled_overhead": disabled / base - 1.0,
        "watchdog_overhead": watchdog / base - 1.0,
        "armed_overhead": armed / base - 1.0,
    }


def _report(timing: dict) -> str:
    verdict = "PASS" if timing["disabled_overhead"] < BUDGET else "FAIL"
    return "\n".join([
        f"{N_STEPS}-step FDTD run on {SHAPE[0]} x {SHAPE[1]} cells "
        f"(best of 3)",
        f"uninstrumented baseline : {timing['baseline_s'] * 1e3:8.1f} ms",
        f"resilience disabled     : {timing['disabled_s'] * 1e3:8.1f} ms "
        f"({timing['disabled_overhead'] * 100:+.2f} %)",
        f"watchdog every 500 steps: {timing['watchdog_s'] * 1e3:8.1f} ms "
        f"({timing['watchdog_overhead'] * 100:+.2f} %)",
        f"fault plan armed (idle) : {timing['armed_s'] * 1e3:8.1f} ms "
        f"({timing['armed_overhead'] * 100:+.2f} %)",
        f"budget: disabled overhead < {BUDGET * 100:.0f} % -> {verdict}",
    ])


def _write_trajectory(timing: dict) -> None:
    write_bench_json("resilience_overhead", {
        "baseline": (timing["baseline_s"], "s"),
        "disabled": (timing["disabled_s"], "s"),
        "watchdog": (timing["watchdog_s"], "s"),
        "armed": (timing["armed_s"], "s"),
        "disabled_overhead": (timing["disabled_overhead"], "ratio"),
        "watchdog_overhead": (timing["watchdog_overhead"], "ratio"),
        "armed_overhead": (timing["armed_overhead"], "ratio"),
    })


def bench_resilience_overhead(benchmark):
    timing = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("RESILIENCE OVERHEAD (no watchdog/plan must stay under 5 %)",
         _report(timing))
    _write_trajectory(timing)
    assert timing["disabled_overhead"] < BUDGET


def main() -> int:
    timing = measure()
    print(_report(timing))
    _write_trajectory(timing)
    return 0 if timing["disabled_overhead"] < BUDGET else 1


if __name__ == "__main__":
    sys.exit(main())
