"""Ablation: fabrication tolerance of the lambda-multiple design rules.

The paper's dimensions must be "chosen accurately" (Section III-A); a
fabrication error delta on a segment de-tunes its phase by
2 pi delta / lambda.  This bench sweeps systematic length errors on
each critical segment class of the MAJ3 gate and reports the decoding
margin, locating the tolerance envelope (how many nanometres of error
the 55 nm design absorbs before any input pattern mis-decodes).
"""

import math

import pytest

from bench_common import emit
from repro.core import GateDimensions, TriangleMajorityGate, segment_length
from repro.core.layout import PAPER_WAVELENGTH, PAPER_WIDTH
from repro.core.logic import input_patterns


def _gate_with_errors(d1_err: float = 0.0, d2_err: float = 0.0,
                      d3_err: float = 0.0) -> TriangleMajorityGate:
    lam = PAPER_WAVELENGTH
    dims = GateDimensions(
        wavelength=lam, width=PAPER_WIDTH,
        d1=segment_length(6, lam) + d1_err,
        d2=segment_length(16, lam) + d2_err,
        d3=segment_length(4, lam) + d3_err,
        d4=segment_length(1, lam),
        stem=segment_length(2, lam))
    return TriangleMajorityGate(dimensions=dims)


def _worst_margin(gate: TriangleMajorityGate) -> float:
    worst = math.inf
    for bits in input_patterns(3):
        result = gate.evaluate(bits)
        if not result.correct:
            return -1.0  # mis-decode
        worst = min(worst, min(r.margin for r in result.outputs.values()))
    return worst


def _sweep():
    rows = []
    errors_nm = (0.0, 2.0, 5.0, 8.0, 11.0, 14.0)
    for segment in ("d1", "d2", "d3"):
        for err_nm in errors_nm:
            kwargs = {f"{segment}_err": err_nm * 1e-9}
            margin = _worst_margin(_gate_with_errors(**kwargs))
            rows.append((segment, err_nm, margin))
    return rows


def bench_ablation_fabrication(benchmark):
    rows = benchmark(_sweep)

    lines = ["segment | error (nm) | error (lambda) | worst margin (rad)"]
    for segment, err_nm, margin in rows:
        frac = err_nm / (PAPER_WAVELENGTH * 1e9)
        status = f"{margin:+.3f}" if margin >= 0 else "MIS-DECODE"
        lines.append(f"{segment:>7} | {err_nm:10.1f} | {frac:14.3f} | "
                     f"{status}")
    emit("ABLATION -- fabrication tolerance of the d1/d2/d3 rules",
         "\n".join(lines))

    by_key = {(segment, err): margin for segment, err, margin in rows}
    for segment in ("d1", "d2", "d3"):
        # Perfect geometry: maximal margin.
        assert by_key[(segment, 0.0)] == pytest.approx(math.pi / 2,
                                                       abs=1e-6)
        # A few nm of error (< lambda/10) still decodes correctly...
        assert by_key[(segment, 2.0)] > 0.0
        assert by_key[(segment, 5.0)] > 0.0
        # ...and the margin shrinks monotonically with the error until
        # a mis-decode appears by a quarter wavelength (13.75 nm).
        margins = [by_key[(segment, e)]
                   for e in (0.0, 2.0, 5.0, 8.0, 11.0, 14.0)]
        assert all(b <= a + 1e-9 for a, b in zip(margins, margins[1:])), \
            segment
    # d1 errors are walked through twice (input arm + split arm), so d1
    # is the most sensitive segment: its margin at 5 nm is the smallest.
    assert by_key[("d1", 5.0)] <= by_key[("d3", 5.0)] + 1e-9