"""Ablation: propagation loss and junction loss vs gate margins.

The paper neglects propagation loss (assumption (iv)) but its Table I
amplitudes show substantial junction losses.  This bench quantifies how
much loss the triangle MAJ3 tolerates before phase decoding fails:

* damping sweep: Gilbert-damping-derived decay lengths from the real
  material band (alpha 0.002...0.05) -- viscous loss along n*lambda
  paths cannot flip the interference sign, so the logic must survive
  the whole range at full phase margin;
* junction-transmission sweep 1.0 ... 0.3 -- here the topology bites:
  I1/I2 cross three junctions (M, C, K) while I3 crosses one, so their
  arrival ratio is t^3 : t and below t = 1/sqrt(2) the I3 wave outvotes
  the I1+I2 pair on the I3-minority patterns.  The paper's measured
  Table I amplitudes show nearly *balanced* arrivals (0.398 / 0.303 /
  0.299 after calibration), i.e. the physical device compensates the
  junction count with diffraction spreading on I3's longer d2 path --
  this sweep quantifies why that balance is necessary.
"""

import math

import pytest

from bench_common import emit
from repro.core import TriangleMajorityGate
from repro.core.logic import input_patterns
from repro.physics import (
    FECOB,
    AttenuationModel,
    DispersionRelation,
    FilmStack,
    from_dispersion,
)


def _sweep():
    rows = []
    for alpha in (0.002, 0.004, 0.01, 0.02, 0.05):
        film = FilmStack(material=FECOB.with_damping(alpha), thickness=1e-9)
        dispersion = DispersionRelation(film)
        # Attenuation at the dispersion-implied frequency of the 55 nm
        # design point.
        k = 2.0 * math.pi / 55e-9
        frequency = float(dispersion.frequency(k))
        attenuation = from_dispersion(dispersion, frequency)
        gate = TriangleMajorityGate(attenuation=attenuation)
        all_ok = all(gate.evaluate(bits).correct
                     for bits in input_patterns(3))
        worst = min(min(r.margin for r in gate.evaluate(bits)
                        .outputs.values())
                    for bits in input_patterns(3))
        rows.append(("alpha", alpha, attenuation.decay_length,
                     all_ok, worst))
    for transmission in (1.0, 0.8, 0.72, 0.62, 0.45, 0.3):
        gate = TriangleMajorityGate(junction_transmission=transmission)
        results = {bits: gate.evaluate(bits)
                   for bits in input_patterns(3)}
        all_ok = all(r.correct for r in results.values())
        failing = sorted(bits for bits, r in results.items()
                         if not r.correct)
        worst = min(min(r.margin for r in result.outputs.values())
                    for result in results.values())
        rows.append(("junction", transmission, math.inf, all_ok, worst,
                     failing))
    return rows


def bench_ablation_losses(benchmark):
    rows = benchmark(_sweep)

    lines = ["sweep      | value  | decay length | logic OK | worst margin"
             " | failing patterns"]
    for row in rows:
        kind, value, decay, ok, margin = row[:5]
        failing = row[5] if len(row) > 5 else []
        decay_text = ("inf" if math.isinf(decay)
                      else f"{decay * 1e6:.2f} um")
        lines.append(f"{kind:<10} | {value:<6.3g} | {decay_text:<12} | "
                     f"{'yes' if ok else 'NO':<8} | {margin:+.3f} rad | "
                     f"{failing if failing else '-'}")
    emit("ABLATION -- loss tolerance of the triangle MAJ3", "\n".join(lines))

    damping_rows = [r for r in rows if r[0] == "alpha"]
    junction_rows = {round(r[1], 3): r for r in rows if r[0] == "junction"}

    # Viscous loss never flips the logic (all paths are n*lambda).
    for _kind, value, _decay, ok, margin, *_ in damping_rows:
        assert ok, value
        assert margin > 0.1, value

    # Junction loss: fine above t = 1/sqrt(2), I3 outvotes below it.
    for t in (1.0, 0.8, 0.72):
        assert junction_rows[t][3], t
    for t in (0.62, 0.45, 0.3):
        assert not junction_rows[t][3], t
        # The failures are exactly the I3-minority patterns.
        assert set(junction_rows[t][5]) == {(0, 0, 1), (1, 1, 0)}, t
