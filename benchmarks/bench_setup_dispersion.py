"""Section IV-A simulation setup: the operating point of the gates.

The paper fixes lambda = 55 nm on a 50 nm x 1 nm Fe60Co20B20 waveguide
(Ms = 1100 kA/m, Aex = 18.5 pJ/m, alpha = 0.004, k_ani = 0.832 MJ/m3)
and quotes k = 2 pi / lambda = 50 rad/um with f = 10 GHz.  Those three
numbers are mutually inconsistent (2 pi / 55 nm = 114 rad/um); the
bench regenerates the full operating point from the Kalinikos-Slavin
dispersion, prints our numbers next to the paper's, and verifies the
parts that are self-consistent.
"""

import math

import pytest

from bench_common import emit
from repro.physics import FECOB, DispersionRelation, FilmStack, paper_operating_point


def _generate():
    op = paper_operating_point()
    film = FilmStack(material=FECOB, thickness=1e-9)
    disp = DispersionRelation(film)
    # Also: what wavelength WOULD give 10 GHz on this film?
    lambda_at_10ghz = disp.wavelength(10e9)
    return op, lambda_at_10ghz


def bench_setup_dispersion(benchmark):
    op, lambda_at_10ghz = benchmark(_generate)

    lines = [
        "material: Fe60Co20B20 (Ms=1100 kA/m, Aex=18.5 pJ/m, alpha=0.004, "
        "Ku=0.832 MJ/m3), 1 nm film",
        f"exchange length          : {FECOB.exchange_length * 1e9:.2f} nm",
        f"net PMA field            : "
        f"{FECOB.effective_pma_field / 1e3:.1f} kA/m (film stays "
        "perpendicular unbiased)",
        f"FVSW band gap            : {op['gap_frequency'] / 1e9:.2f} GHz",
        f"design wavelength        : {op['wavelength'] * 1e9:.0f} nm "
        "[paper: 55 nm]",
        f"wavenumber 2 pi / lambda : {op['wavenumber'] * 1e-6:.0f} rad/um "
        "[paper states 50 rad/um -- inconsistent with lambda = 55 nm]",
        f"dispersion frequency     : {op['frequency'] / 1e9:.2f} GHz "
        "[paper states 10 GHz]",
        f"lambda at 10 GHz         : {lambda_at_10ghz * 1e9:.0f} nm",
        f"group velocity           : {op['group_velocity']:.0f} m/s",
        f"attenuation length       : "
        f"{op['attenuation_length'] * 1e6:.2f} um (>> 2 um gate: "
        "justifies loss assumption (iv))",
    ]
    emit("SECTION IV-A -- simulation setup / operating point",
         "\n".join(lines))

    # Self-consistent parts of the paper's setup:
    assert FECOB.is_perpendicular                       # FVSW possible
    assert op["wavenumber"] == pytest.approx(
        2.0 * math.pi / 55e-9)                          # k = 2 pi / lambda
    assert op["frequency"] > op["gap_frequency"]        # propagating
    # Documented inconsistency: 2 pi / 55 nm is ~114 rad/um, not 50.
    assert op["wavenumber"] * 1e-6 == pytest.approx(114.2, rel=0.01)
    assert op["wavenumber"] * 1e-6 != pytest.approx(50.0, rel=0.2)
    # Loss assumption (iv): attenuation length far beyond the device.
    assert op["attenuation_length"] > 2e-6
