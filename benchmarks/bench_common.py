"""Shared helpers for the reproduction benchmarks (imported by name to
avoid clashing with the tests/ conftest on combined runs)."""

from __future__ import annotations

import datetime
import json
import os
import subprocess
from typing import Mapping, Tuple, Union

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
REPORT_PATH = os.path.join(OUTPUT_DIR, "report.txt")
TRAJECTORY_PATH = os.path.join(OUTPUT_DIR, "BENCH_TRAJECTORY.jsonl")


def emit(title: str, body: str) -> None:
    """Print a delimited reproduction block and append it to the
    persistent report (pytest captures stdout unless run with ``-s``;
    ``benchmarks/output/report.txt`` always has the full reproduction
    record of the last run)."""
    bar = "=" * 72
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    print(block)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(REPORT_PATH, "a") as handle:
        handle.write(block)


def bench_commit() -> str:
    """The commit hash stamped into BENCH_*.json records.

    ``REPRO_COMMIT`` (set by CI) wins; a source checkout falls back to
    ``git rev-parse``; anything else reads ``"unknown"`` -- the record
    is still useful, just not trajectory-addressable.
    """
    commit = os.environ.get("REPRO_COMMIT")
    if commit:
        return commit
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
        if result.returncode == 0 and result.stdout.strip():
            return result.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def write_bench_json(
        bench: str,
        metrics: Mapping[str, Union[Tuple[float, str], float]]) -> str:
    """Persist bench results in the common trajectory schema.

    Writes ``benchmarks/output/BENCH_<bench>.json`` -- a JSON list of
    ``{bench, metric, value, unit, commit, ts}`` records, the
    latest-run snapshot -- and **appends** the same records to
    ``BENCH_TRAJECTORY.jsonl``, the accumulating commit-keyed history
    that ``python -m repro bench report|compare`` reads.  The snapshot
    is clobbered per run by design; the trajectory never is.

    ``metrics`` maps metric name to ``(value, unit)``; a bare number is
    taken as dimensionless (``unit=""``).
    """
    commit = bench_commit()
    stamp = datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds")
    records = []
    for metric, entry in metrics.items():
        if isinstance(entry, tuple):
            value, unit = entry
        else:
            value, unit = entry, ""
        records.append({"bench": bench, "metric": metric,
                        "value": value, "unit": unit, "commit": commit,
                        "ts": stamp})
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    path = os.path.join(OUTPUT_DIR, f"BENCH_{bench}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(records, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(TRAJECTORY_PATH, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path
