"""Shared helpers for the reproduction benchmarks (imported by name to
avoid clashing with the tests/ conftest on combined runs)."""

from __future__ import annotations

import os

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")
REPORT_PATH = os.path.join(OUTPUT_DIR, "report.txt")


def emit(title: str, body: str) -> None:
    """Print a delimited reproduction block and append it to the
    persistent report (pytest captures stdout unless run with ``-s``;
    ``benchmarks/output/report.txt`` always has the full reproduction
    record of the last run)."""
    bar = "=" * 72
    block = f"\n{bar}\n{title}\n{bar}\n{body}\n"
    print(block)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    with open(REPORT_PATH, "a") as handle:
        handle.write(block)
