"""Ablation: thermal noise and edge roughness (Section IV-D outlook).

The paper defers variability and thermal analysis to refs [36][43] and
"the near future", citing evidence that both have limited impact.  This
bench performs that study on our stack:

* thermal: a micromagnetic waveguide run at 0 K and 300 K -- the
  downstream detected phase must encode the same bit;
* edge roughness: the FDTD XOR gate with randomly roughened waveguide
  edges -- threshold decoding must survive.

Both run a single round (they are the most expensive ablations).
"""

import math

import numpy as np
import pytest

from bench_common import emit
from repro.core import TriangleXorGate, xor_layout
from repro.core.fabric import build_wave_simulator, fabricate, settle_periods_for
from repro.core.logic import input_patterns, xor
from repro.fdtd import run_steady_state
from repro.micromag import (
    Envelope,
    ExcitationSource,
    Mesh,
    Probe,
    Simulation,
    rectangle,
    roughen_edges,
)
from repro.physics import FECOB


def _thermal_phase(temperature: float, seed: int = 7) -> float:
    mesh = Mesh(cell_size=(5e-9, 5e-9, 1e-9), shape=(120, 6, 1))
    sim = Simulation(mesh, FECOB, demag="thin_film",
                     temperature=temperature,
                     absorber_width=100e-9, absorber_axes=(0,),
                     rng=np.random.default_rng(seed))
    sim.initialize((0, 0, 1))
    f_drive = 18e9
    sim.add_source(ExcitationSource.for_logic(
        rectangle(120e-9, 0, 140e-9, 30e-9), 1,
        amplitude=8e3, frequency=f_drive,
        envelope=Envelope(start=0.0, rise=0.1e-9)))
    probe = Probe("P", rectangle(300e-9, 0, 320e-9, 30e-9))
    sim.add_probe(probe)
    sim.run(duration=1.2e-9, dt=2.5e-14, sample_every=4)
    _, phase = probe.trace.window(0.6e-9).demodulate(f_drive)
    return phase


def _rough_xor_table(probability: float, seed: int = 11):
    fab = fabricate(xor_layout())
    rng = np.random.default_rng(seed)
    rough = roughen_edges(fab.mask[None, ...], probability, rng)[0]
    # Keep the terminals intact (transducers sit on clean regions).
    for patch in fab.terminal_masks.values():
        rough |= patch
    fab.mask = rough
    table = {}
    for bits in input_patterns(2):
        sim = build_wave_simulator(fab, 10e9,
                                   {"I1": bits[0], "I2": bits[1]})
        envelope = run_steady_state(sim, settle_periods_for(fab))
        table[bits] = abs(sim.region_envelope(
            fab.terminal_masks["O1"], envelope))
    reference = table[(0, 0)]
    return {bits: amp / reference for bits, amp in table.items()}


def _generate():
    phase_cold = _thermal_phase(0.0)
    phase_hot = _thermal_phase(300.0)
    rough_table = _rough_xor_table(0.3)
    return phase_cold, phase_hot, rough_table


def bench_ablation_thermal_variability(benchmark):
    phase_cold, phase_hot, rough_table = benchmark.pedantic(
        _generate, rounds=1, iterations=1)

    drift = abs(math.remainder(phase_hot - phase_cold, 2.0 * math.pi))
    lines = [
        f"thermal: detected phase drift 0 K -> 300 K = {drift:.3f} rad "
        f"(decision boundary at pi/2 = {math.pi / 2:.3f})",
        "edge roughness (30 % edge-cell removal), XOR normalised outputs:",
    ]
    lines += [f"  {bits}: {amp:.3f} -> decoded "
              f"{0 if amp > 0.5 else 1} (expected {xor(*bits)})"
              for bits, amp in sorted(rough_table.items())]
    emit("ABLATION -- thermal noise & edge roughness (paper's outlook)",
         "\n".join(lines))

    # Thermal: the same logic value survives at room temperature.
    assert drift < math.pi / 2
    # Roughness: all four XOR patterns still decode correctly.
    for bits, amp in rough_table.items():
        assert (0 if amp > 0.5 else 1) == xor(*bits), bits
