"""Benchmark: the spin-wave circuit compiler end to end.

Compiles every builtin spec plus a synthesized-from-truth-table
4-input circuit through the full pipeline (synthesize -> place -> DRC)
and characterizes the full adder at the network tier, reporting
per-circuit wall time and fabric figures.  Every compile must come out
DRC-clean and functionally equivalent -- this bench is the compiler's
own smoke barrier.

Emits ``benchmarks/output/BENCH_compile.json`` in the common
trajectory schema so compile latency is tracked PR-over-PR.  Runnable
standalone for CI (``python benchmarks/bench_compile.py`` exits
non-zero on a dirty or slow compile) or through pytest-benchmark.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_common import emit, write_bench_json  # noqa: E402

try:
    from repro.compiler import BUILTIN_SPECS, compile_spec
except ImportError:  # source checkout without an installed package
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))
    from repro.compiler import BUILTIN_SPECS, compile_spec

#: Worst-case budget per compile [s]; generous for throttled CI boxes.
BUDGET_S = 10.0

#: A 4-input function with no special structure: forces the
#: Quine-McCluskey path and a multi-level AND/OR fabric.
RANDOM_TT4 = {
    "name": "random_tt4",
    "inputs": ["a", "b", "c", "d"],
    "outputs": {"y": "0110100110010110"},
}

WORKLOAD = list(BUILTIN_SPECS) + ["random_tt4"]


def _spec_source(name: str):
    if name == "random_tt4":
        return dict(RANDOM_TT4)
    return name


def measure() -> dict:
    results = {}
    for name in WORKLOAD:
        t0 = time.perf_counter()
        compiled = compile_spec(_spec_source(name),
                                characterize_circuit=(name == "full_adder"),
                                tier="network")
        elapsed = time.perf_counter() - t0
        stats = compiled.placement.stats()
        results[name] = {
            "seconds": elapsed,
            "clean": compiled.clean,
            "gates": stats["gates"],
            "area_lambda2": stats["area_lambda2"],
            "verified": (compiled.characterization.verified
                         if compiled.characterization is not None
                         else None),
        }
    return results


def _report(results: dict) -> str:
    lines = ["circuit        gates   area [lambda^2]   compile [ms]  DRC"]
    for name, row in results.items():
        lines.append(
            f"{name:<14s} {row['gates']:5d} {row['area_lambda2']:17.0f} "
            f"{row['seconds'] * 1e3:14.1f}  "
            f"{'clean' if row['clean'] else 'DIRTY'}")
    worst = max(row["seconds"] for row in results.values())
    verdict = ("PASS" if worst < BUDGET_S
               and all(row["clean"] for row in results.values())
               else "FAIL")
    lines.append(f"budget: every compile clean and < {BUDGET_S:.0f} s "
                 f"-> {verdict}")
    return "\n".join(lines)


def _write_trajectory(results: dict) -> None:
    metrics = {}
    for name, row in results.items():
        metrics[f"{name}_compile_ms"] = (row["seconds"] * 1e3, "ms")
        metrics[f"{name}_gates"] = (float(row["gates"]), "gates")
        metrics[f"{name}_area"] = (row["area_lambda2"], "lambda^2")
    write_bench_json("compile", metrics)


def _ok(results: dict) -> bool:
    return (all(row["clean"] for row in results.values())
            and all(row["verified"] in (None, True)
                    for row in results.values())
            and max(row["seconds"] for row in results.values()) < BUDGET_S)


def bench_compile(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit("COMPILE (spec -> placed DRC-clean fabric)", _report(results))
    _write_trajectory(results)
    assert _ok(results), results


def main() -> int:
    results = measure()
    emit("COMPILE (spec -> placed DRC-clean fabric)", _report(results))
    _write_trajectory(results)
    return 0 if _ok(results) else 1


if __name__ == "__main__":
    sys.exit(main())
