"""Direct energy minimisation (the static-state companion to relax()).

``Simulation.relax()`` integrates the over-damped LLG; for finding
metastable states a direct minimiser is often faster and more robust.
This module implements the standard micromagnetic steepest-descent
scheme with Barzilai-Borwein step sizes on the sphere: the update
rotates each moment toward its effective field along the torque
direction ``m x (m x H)`` while preserving |m| = 1 by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .llg import cross
from .mesh import normalize_field
from .sim import Simulation


@dataclass
class MinimizeResult:
    """Outcome of an energy minimisation."""

    converged: bool
    iterations: int
    final_torque: float
    final_energy: float


def _torque(sim: Simulation, m: np.ndarray) -> np.ndarray:
    """Normalised steepest-descent direction ``-m x (m x H)``."""
    h = sim.effective_field(m, sim.t)
    mxh = cross(m, h)
    return cross(m, mxh)  # points along the energy gradient on the sphere


def minimize(sim: Simulation, torque_tolerance: float = 1e-4,
             max_iterations: int = 5000,
             initial_step: float = 1e-12) -> MinimizeResult:
    """Minimise the total energy of ``sim`` in place.

    Parameters
    ----------
    sim:
        The simulation whose magnetisation is optimised (modified in
        place; time and sources are untouched -- time-dependent sources
        are evaluated at the current ``sim.t``).
    torque_tolerance:
        Convergence criterion on ``max |m x H| / Ms`` (dimensionless,
        MuMax3's ``MaxTorque`` analogue normalised by Ms).
    max_iterations:
        Iteration cap.
    initial_step:
        First step size (units: 1 / field, i.e. m/A); adapted by
        Barzilai-Borwein thereafter.

    Returns
    -------
    MinimizeResult
        Convergence flag, iteration count, residual torque and energy.
    """
    if torque_tolerance <= 0:
        raise ValueError("torque tolerance must be positive")
    if max_iterations < 1:
        raise ValueError("need at least one iteration")

    ms = sim.material.ms
    m = sim.m
    step = initial_step
    previous_m: Optional[np.ndarray] = None
    previous_g: Optional[np.ndarray] = None
    iterations = 0
    torque_max = math.inf

    for iterations in range(1, max_iterations + 1):
        h = sim.effective_field(m, sim.t)
        mxh = cross(m, h)
        gradient = cross(m, mxh)
        torque_max = float(np.max(np.abs(mxh))) / ms
        if torque_max < torque_tolerance:
            sim.m = m
            return MinimizeResult(converged=True, iterations=iterations,
                                  final_torque=torque_max,
                                  final_energy=sim.total_energy())
        if previous_m is not None:
            dm = (m - previous_m).ravel()
            dg = (gradient - previous_g).ravel()
            denominator = float(np.dot(dm, dg))
            if abs(denominator) > 1e-300:
                # BB1 step; the absolute value keeps descent direction.
                step = abs(float(np.dot(dm, dm)) / denominator)
            # The upper clip must admit steps of order 1/|H| (fields are
            # ~1e5-1e7 A/m); 1e-6 m/A covers weak-torque landscapes
            # where BB wants long steps.
            step = float(np.clip(step, 1e-18, 1e-6))
        previous_m = m.copy()
        previous_g = gradient.copy()
        m = m - step * gradient
        normalize_field(m, sim.mask)
    sim.m = m
    return MinimizeResult(converged=False, iterations=iterations,
                          final_torque=torque_max,
                          final_energy=sim.total_energy())
