"""First-order uniaxial magnetocrystalline anisotropy.

``H_ani = (2 Ku / (mu0 Ms)) (m . u) u`` -- the perpendicular anisotropy
of the paper's CoFeB/MgO film (Ku = 0.832 MJ/m^3, u = z) is what keeps
the magnetisation out of plane and enables forward-volume spin waves.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ...constants import MU0
from ..mesh import Mesh


class UniaxialAnisotropyField:
    """Uniaxial anisotropy effective-field term.

    Parameters
    ----------
    mesh:
        The finite-difference mesh.
    ku:
        First-order anisotropy constant [J/m^3].  Positive = easy axis.
    ms:
        Saturation magnetisation [A/m].
    axis:
        Easy-axis unit vector (normalised internally).
    mask:
        Geometry mask; the field is zero in vacuum.
    """

    def __init__(self, mesh: Mesh, ku: float, ms: float,
                 axis: Tuple[float, float, float] = (0.0, 0.0, 1.0),
                 mask: np.ndarray = None):
        if ms <= 0:
            raise ValueError("saturation magnetisation must be positive")
        u = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(u)
        if norm == 0:
            raise ValueError("anisotropy axis must be non-zero")
        self.mesh = mesh
        self.ku = ku
        self.ms = ms
        self.axis = u / norm
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        self.mask = mask.astype(bool)
        self._prefactor = 2.0 * ku / (MU0 * ms)

    def field(self, m: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Anisotropy field [A/m]: ``(2Ku/mu0 Ms) (m.u) u`` inside the mask."""
        u = self.axis
        projection = (m[0] * u[0] + m[1] * u[1] + m[2] * u[2])
        projection = projection * self.mask
        if out is None:
            out = np.empty_like(m)
        for c in range(3):
            out[c] = self._prefactor * projection * u[c]
        return out

    def energy_density(self, m: np.ndarray) -> np.ndarray:
        """``Ku (1 - (m.u)^2)`` [J/m^3] (zero when aligned with easy axis)."""
        u = self.axis
        projection = m[0] * u[0] + m[1] * u[1] + m[2] * u[2]
        return self.ku * (1.0 - projection ** 2) * self.mask

    def energy(self, m: np.ndarray) -> float:
        """Total anisotropy energy [J]."""
        return float(np.sum(self.energy_density(m)) * self.mesh.cell_volume)
