"""Stochastic thermal field (finite-temperature micromagnetics).

Brown's thermal fluctuation field: a Gaussian white-noise field with
variance chosen so the fluctuation-dissipation theorem holds on the
discrete mesh,

``sigma_H = sqrt(2 alpha k_B T / (mu0 Ms gamma V dt))``  per component,

where ``V`` is the cell volume and ``dt`` the integrator step (the noise
must be redrawn each step and scaled with ``1/sqrt(dt)``; we follow the
MuMax3 convention).  The paper defers thermal analysis to refs [36][43]
and to future work -- our thermal ablation bench exercises exactly this
term.
"""

from __future__ import annotations

import hashlib
import math
from typing import Optional, Union

import numpy as np

from ...constants import KB, MU0
from ..mesh import Mesh


def seed_from_key(key: Union[str, bytes], stream: int = 0) -> int:
    """Deterministic 64-bit RNG seed derived from a job key.

    Thermal runs draw fresh noise every integrator step, so two
    processes computing "the same" finite-temperature job only agree if
    they seed identically.  Hashing the orchestration engine's
    content-addressed job key (:meth:`repro.runtime.JobSpec.key`) --
    rather than using a global or time-based seed -- makes a cached
    result and its recomputation in any worker process bit-identical,
    while distinct jobs (and distinct ``stream`` values within one job)
    stay statistically independent.

    Parameters
    ----------
    key:
        Any stable identifier -- typically the hex job key, but any
        string describing the run works.
    stream:
        Sub-stream index for jobs needing several independent
        generators (e.g. thermal noise vs edge roughness).
    """
    if isinstance(key, str):
        key = key.encode("utf-8")
    digest = hashlib.sha256(key + b":stream=%d" % stream).digest()
    return int.from_bytes(digest[:8], "little")


def rng_from_key(key: Union[str, bytes],
                 stream: int = 0) -> np.random.Generator:
    """A numpy generator seeded with :func:`seed_from_key`."""
    return np.random.default_rng(seed_from_key(key, stream=stream))


class ThermalField:
    """Brown thermal field, redrawn once per integrator step.

    Parameters
    ----------
    mesh:
        The finite-difference mesh.
    ms:
        Saturation magnetisation [A/m].
    alpha:
        Gilbert damping used in the fluctuation-dissipation relation.
    gamma:
        Gyromagnetic ratio [rad/(T s)].
    temperature:
        Temperature [K]; 0 disables the field.
    rng:
        NumPy generator; pass a seeded generator for reproducible runs.
    mask:
        Geometry mask -- vacuum cells get no noise.
    """

    def __init__(self, mesh: Mesh, ms: float, alpha: float, gamma: float,
                 temperature: float, rng: Optional[np.random.Generator] = None,
                 mask: np.ndarray = None):
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        if alpha <= 0 and temperature > 0:
            raise ValueError("thermal field requires positive damping")
        self.mesh = mesh
        self.ms = ms
        self.alpha = alpha
        self.gamma = gamma
        self.temperature = temperature
        self.rng = rng if rng is not None else np.random.default_rng()
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        self.mask = mask.astype(bool)
        self._current: Optional[np.ndarray] = None
        self._current_step = -1

    def standard_deviation(self, dt: float) -> float:
        """Per-component noise amplitude [A/m] for a step of ``dt`` [s]."""
        if self.temperature == 0.0:
            return 0.0
        if dt <= 0:
            raise ValueError("dt must be positive")
        volume = self.mesh.cell_volume
        variance = (2.0 * self.alpha * KB * self.temperature
                    / (MU0 * self.ms * self.gamma * volume * dt))
        return math.sqrt(variance)

    def refresh(self, dt: float, step: int) -> None:
        """Draw the noise realisation for integrator step ``step``.

        The same realisation must be used for every RHS evaluation within
        one step (Heun / RK schemes evaluate the RHS several times), so
        the driver calls ``refresh`` once per step and ``field`` is then
        deterministic until the next refresh.
        """
        sigma = self.standard_deviation(dt)
        if sigma == 0.0:
            self._current = None
        else:
            noise = self.rng.standard_normal(self.mesh.field_shape) * sigma
            noise *= self.mask[None, ...]
            self._current = noise
        self._current_step = step

    def field(self, m: np.ndarray = None, out: np.ndarray = None) -> np.ndarray:
        """Current thermal field [A/m]; zero when T = 0 or before refresh."""
        if out is None:
            out = np.zeros(self.mesh.field_shape)
        else:
            out[...] = 0.0
        if self._current is not None:
            out += self._current
        return out
