"""Heisenberg exchange field on the finite-difference mesh.

``H_ex = (2 A / (mu0 Ms)) laplace(m)`` with free (Neumann) boundary
conditions: at mask boundaries the missing neighbour is replaced by the
cell itself, which is the standard 6-neighbour MuMax3/OOMMF scheme and
implements d m / d n = 0.
"""

from __future__ import annotations

import numpy as np

from ...constants import MU0
from ..mesh import Mesh


class ExchangeField:
    """Exchange effective-field term.

    Parameters
    ----------
    mesh:
        The finite-difference mesh.
    aex:
        Exchange stiffness [J/m].
    ms:
        Saturation magnetisation [A/m].
    mask:
        Boolean ``(nz, ny, nx)`` geometry mask; vacuum cells have no
        exchange coupling (they are skipped as neighbours).
    """

    def __init__(self, mesh: Mesh, aex: float, ms: float,
                 mask: np.ndarray = None):
        if aex <= 0:
            raise ValueError("exchange stiffness must be positive")
        if ms <= 0:
            raise ValueError("saturation magnetisation must be positive")
        self.mesh = mesh
        self.aex = aex
        self.ms = ms
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        if mask.shape != mesh.scalar_shape:
            raise ValueError(f"mask shape {mask.shape} != {mesh.scalar_shape}")
        self.mask = mask.astype(bool)
        self._prefactor = 2.0 * aex / (MU0 * ms)
        # Pre-compute neighbour validity masks so the hot loop is pure
        # arithmetic.  Axis order in fields is (component, z, y, x).
        self._neighbour_masks = {}
        for axis, label in ((1, "z"), (2, "y"), (3, "x")):
            for direction in (+1, -1):
                shifted = np.roll(self.mask, -direction, axis=axis - 1)
                valid = self.mask & shifted
                # roll wraps around; forbid wrap-around neighbours.
                index = [slice(None)] * 3
                edge = -1 if direction == +1 else 0
                index[axis - 1] = edge
                valid[tuple(index)] = False
                self._neighbour_masks[(axis, direction)] = valid

    def field(self, m: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Exchange field [A/m] for magnetisation ``m`` (unit vectors).

        The Neumann Laplacian is written as a sum over valid neighbours
        of ``(m_neighbour - m_cell) / d^2`` so masked/absent neighbours
        contribute zero, which is exactly the mirror boundary condition.
        """
        if out is None:
            out = np.zeros_like(m)
        else:
            out[...] = 0.0
        inv_d2 = (1.0 / self.mesh.dz ** 2,
                  1.0 / self.mesh.dy ** 2,
                  1.0 / self.mesh.dx ** 2)
        for axis in (1, 2, 3):
            if m.shape[axis] == 1:
                continue  # single-cell axis: no exchange variation
            for direction in (+1, -1):
                valid = self._neighbour_masks[(axis, direction)]
                neighbour = np.roll(m, -direction, axis=axis)
                diff = neighbour - m
                diff *= valid[None, ...]
                out += diff * inv_d2[axis - 1]
        out *= self._prefactor
        return out

    def energy_density(self, m: np.ndarray) -> np.ndarray:
        """Exchange energy density ``-mu0 Ms / 2 * m . H_ex`` [J/m^3]."""
        h = self.field(m)
        return -0.5 * MU0 * self.ms * np.sum(m * h, axis=0)

    def energy(self, m: np.ndarray) -> float:
        """Total exchange energy [J] (relative to the uniform state)."""
        return float(np.sum(self.energy_density(m)[self.mask])
                     * self.mesh.cell_volume)
