"""Effective-field terms entering the LLG equation.

``H_eff = H_exchange + H_demag + H_anisotropy + H_zeeman (+ H_thermal)``
-- exactly the decomposition below eq. (1) of the paper.
"""

from .exchange import ExchangeField
from .anisotropy import UniaxialAnisotropyField
from .zeeman import ZeemanField
from .demag import DemagField, ThinFilmDemagField, demag_tensor, newell_f, newell_g
from .thermal import ThermalField, rng_from_key, seed_from_key

__all__ = [
    "ExchangeField",
    "UniaxialAnisotropyField",
    "ZeemanField",
    "DemagField",
    "ThinFilmDemagField",
    "demag_tensor",
    "newell_f",
    "newell_g",
    "ThermalField",
    "rng_from_key",
    "seed_from_key",
]
