"""Zeeman term: static bias fields and time-dependent excitation fields.

The excitation antennas / ME cells of the gate inject spin waves through
a *local* time-dependent field; this module evaluates the total applied
field ``H_ext(r, t)`` as a static part plus any number of registered
:class:`~repro.micromag.excitation.ExcitationSource` objects.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ...constants import MU0
from ..mesh import Mesh


class ZeemanField:
    """Applied-field term with optional time-dependent local sources.

    Parameters
    ----------
    mesh:
        The finite-difference mesh.
    static_field:
        Uniform bias field ``(Hx, Hy, Hz)`` [A/m].
    mask:
        Geometry mask (energy bookkeeping only; the field itself is
        applied everywhere, matching how MuMax3 treats ``B_ext``).
    """

    def __init__(self, mesh: Mesh,
                 static_field: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                 mask: np.ndarray = None):
        self.mesh = mesh
        self.static_field = np.asarray(static_field, dtype=float)
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        self.mask = mask.astype(bool)
        self.sources: List = []

    def add_source(self, source) -> None:
        """Register an excitation source (duck-typed: ``.field(mesh, t)``)."""
        self.sources.append(source)

    def field(self, m: np.ndarray = None, t: float = 0.0,
              out: np.ndarray = None) -> np.ndarray:
        """Total applied field [A/m] at time ``t`` (magnetisation unused)."""
        if out is None:
            out = np.zeros(self.mesh.field_shape)
        else:
            out[...] = 0.0
        for c in range(3):
            out[c] += self.static_field[c]
        for source in self.sources:
            out += source.field(self.mesh, t)
        return out

    def energy_density(self, m: np.ndarray, t: float = 0.0,
                       ms: float = 1.0) -> np.ndarray:
        """Zeeman energy density ``-mu0 Ms m . H`` [J/m^3]."""
        h = self.field(m, t)
        return -MU0 * ms * np.sum(m * h, axis=0) * self.mask

    def energy(self, m: np.ndarray, t: float = 0.0, ms: float = 1.0) -> float:
        """Total Zeeman energy [J]."""
        return float(np.sum(self.energy_density(m, t, ms))
                     * self.mesh.cell_volume)
