"""Demagnetising (magnetostatic) field.

Two implementations are provided:

* :class:`DemagField` -- the full solution: the cell-averaged
  demagnetisation tensor of Newell, Williams and Dunlop (JGR 98, 9551
  (1993)) convolved with the magnetisation via zero-padded FFTs.  This is
  the same formulation MuMax3 and OOMMF use, so small-mesh results are
  directly comparable to the paper's solver.
* :class:`ThinFilmDemagField` -- the local thin-film limit
  ``H = -Mz z_hat``: exact for an infinite film and a very good
  approximation for the 1 nm films of the paper when speed matters.

Both expose ``field(m)`` returning H in A/m for a unit-vector
magnetisation field scaled by ``ms``.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from ...constants import MU0
from ..mesh import Mesh


# ---------------------------------------------------------------------------
# Newell auxiliary functions
# ---------------------------------------------------------------------------

def _safe_asinh_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """asinh(num/den) with the den -> 0 limit handled (-> 0 when num=0)."""
    out = np.zeros_like(num)
    nonzero = den > 0
    out[nonzero] = np.arcsinh(num[nonzero] / den[nonzero])
    # den == 0 implies the two coordinates under the sqrt are both zero;
    # the prefactors multiplying these terms vanish there as well, so 0
    # is the correct finite contribution.
    return out


def _safe_atan_ratio(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """atan(num/den) -> pi/2 * sign(num) as den -> 0 (0 if num=0 too)."""
    out = np.zeros_like(num)
    nonzero = den != 0
    out[nonzero] = np.arctan(num[nonzero] / den[nonzero])
    zero_den = ~nonzero & (num != 0)
    out[zero_den] = math.pi / 2.0 * np.sign(num[zero_den])
    return out


def newell_f(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Newell's ``f`` function (for the diagonal tensor elements).

    Vectorised over arrays of displacements; all inputs in metres (any
    common scale works, the tensor is dimensionless after the stencil).
    """
    x = np.abs(np.asarray(x, dtype=float))
    y = np.abs(np.asarray(y, dtype=float))
    z = np.abs(np.asarray(z, dtype=float))
    r = np.sqrt(x * x + y * y + z * z)
    result = (
        0.5 * y * (z * z - x * x) * _safe_asinh_ratio(y, np.sqrt(x * x + z * z))
        + 0.5 * z * (y * y - x * x) * _safe_asinh_ratio(z, np.sqrt(x * x + y * y))
        - x * y * z * _safe_atan_ratio(y * z, x * r)
        + (1.0 / 6.0) * (2.0 * x * x - y * y - z * z) * r
    )
    return result


def newell_g(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Newell's ``g`` function (for the off-diagonal tensor elements)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    z = np.abs(np.asarray(z, dtype=float))
    r = np.sqrt(x * x + y * y + z * z)
    result = (
        x * y * z * _safe_asinh_ratio(z, np.sqrt(x * x + y * y))
        + (y / 6.0) * (3.0 * z * z - y * y)
        * _safe_asinh_ratio(x, np.sqrt(y * y + z * z))
        + (x / 6.0) * (3.0 * z * z - x * x)
        * _safe_asinh_ratio(y, np.sqrt(x * x + z * z))
        - (z ** 3 / 6.0) * _safe_atan_ratio(x * y, z * r)
        - (z * y * y / 2.0) * _safe_atan_ratio(x * z, y * r)
        - (z * x * x / 2.0) * _safe_atan_ratio(y * z, x * r)
        - x * y * r / 3.0
    )
    return result


_STENCIL_WEIGHTS = {-1: -1.0, 0: 2.0, 1: -1.0}


def _stencil_sum(func, X: np.ndarray, Y: np.ndarray, Z: np.ndarray,
                 dx: float, dy: float, dz: float) -> np.ndarray:
    """27-point alternating stencil reducing Newell's 64-term sum."""
    total = np.zeros_like(X)
    for u in (-1, 0, 1):
        wu = _STENCIL_WEIGHTS[u]
        for v in (-1, 0, 1):
            wv = _STENCIL_WEIGHTS[v]
            for w in (-1, 0, 1):
                ww = _STENCIL_WEIGHTS[w]
                total += wu * wv * ww * func(X + u * dx, Y + v * dy, Z + w * dz)
    return total


def demag_tensor(mesh: Mesh) -> dict:
    """Cell-to-cell demagnetisation tensor components on the mesh lattice.

    Returns
    -------
    dict
        Arrays ``nxx, nyy, nzz, nxy, nxz, nyz`` of shape
        ``(2nz', 2ny', 2nx')`` (padded, wrap-ordered, ready for FFT), where
        a padded axis is only doubled when the mesh has more than one cell
        along it.  ``N[0,0,0]`` is the self-demag of a single cell, whose
        trace is exactly 1.
    """
    dx, dy, dz = mesh.cell_size
    nx, ny, nz = mesh.nx, mesh.ny, mesh.nz
    px = 2 * nx if nx > 1 else 1
    py = 2 * ny if ny > 1 else 1
    pz = 2 * nz if nz > 1 else 1

    # Lattice displacement values along each axis in wrap order:
    # [0, 1, ..., n-1, (-n) unused, -(n-1), ..., -1] * d
    def displacements(n: int, p: int, d: float) -> np.ndarray:
        idx = np.arange(p)
        idx = np.where(idx < n, idx, idx - p)
        return idx * d

    X = displacements(nx, px, dx).reshape(1, 1, px)
    Y = displacements(ny, py, dy).reshape(1, py, 1)
    Z = displacements(nz, pz, dz).reshape(pz, 1, 1)
    X, Y, Z = np.broadcast_arrays(X, Y, Z)
    X = X.astype(float)
    Y = Y.astype(float)
    Z = Z.astype(float)

    scale = 1.0 / (4.0 * math.pi * dx * dy * dz)

    def f_perm(a, b, c):
        return newell_f(a, b, c)

    nxx = scale * _stencil_sum(lambda a, b, c: f_perm(a, b, c), X, Y, Z, dx, dy, dz)
    nyy = scale * _stencil_sum(lambda a, b, c: f_perm(b, a, c), X, Y, Z, dx, dy, dz)
    nzz = scale * _stencil_sum(lambda a, b, c: f_perm(c, b, a), X, Y, Z, dx, dy, dz)
    nxy = scale * _stencil_sum(lambda a, b, c: newell_g(a, b, c), X, Y, Z, dx, dy, dz)
    nxz = scale * _stencil_sum(lambda a, b, c: newell_g(a, c, b), X, Y, Z, dx, dy, dz)
    nyz = scale * _stencil_sum(lambda a, b, c: newell_g(b, c, a), X, Y, Z, dx, dy, dz)

    return {"nxx": nxx, "nyy": nyy, "nzz": nzz,
            "nxy": nxy, "nxz": nxz, "nyz": nyz,
            "padded_shape": (pz, py, px)}


class DemagField:
    """Full magnetostatic field via FFT convolution with the Newell tensor.

    Parameters
    ----------
    mesh:
        The finite-difference mesh.
    ms:
        Saturation magnetisation [A/m] (uniform; spatial variation comes
        through the mask / the magnetisation magnitude).
    mask:
        Geometry mask; vacuum cells carry M = 0 and receive stray field
        (which is physical) but their own contribution vanishes.
    """

    def __init__(self, mesh: Mesh, ms: float, mask: np.ndarray = None):
        if ms <= 0:
            raise ValueError("saturation magnetisation must be positive")
        self.mesh = mesh
        self.ms = ms
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        self.mask = mask.astype(bool)
        tensor = demag_tensor(mesh)
        self._padded_shape = tensor["padded_shape"]
        # Real-input FFTs of the 6 independent tensor components.
        self._kernel_fft = {
            key: np.fft.rfftn(tensor[key]) for key in
            ("nxx", "nyy", "nzz", "nxy", "nxz", "nyz")
        }

    @property
    def self_demag_tensor(self) -> np.ndarray:
        """The (diagonalised) single-cell self-demag factors (trace = 1)."""
        tensor = demag_tensor(self.mesh)
        return np.array([tensor["nxx"][0, 0, 0],
                         tensor["nyy"][0, 0, 0],
                         tensor["nzz"][0, 0, 0]])

    def field(self, m: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Demag field [A/m]: ``H_i = -sum_j N_ij * (Ms m_j)`` (convolution)."""
        pz, py, px = self._padded_shape
        nz, ny, nx = self.mesh.nz, self.mesh.ny, self.mesh.nx
        if out is None:
            out = np.zeros_like(m)

        axes = (0, 1, 2)
        masked = m * self.mask[None, ...]
        mx_fft = np.fft.rfftn(masked[0] * self.ms, s=(pz, py, px), axes=axes)
        my_fft = np.fft.rfftn(masked[1] * self.ms, s=(pz, py, px), axes=axes)
        mz_fft = np.fft.rfftn(masked[2] * self.ms, s=(pz, py, px), axes=axes)

        k = self._kernel_fft
        hx_fft = k["nxx"] * mx_fft + k["nxy"] * my_fft + k["nxz"] * mz_fft
        hy_fft = k["nxy"] * mx_fft + k["nyy"] * my_fft + k["nyz"] * mz_fft
        hz_fft = k["nxz"] * mx_fft + k["nyz"] * my_fft + k["nzz"] * mz_fft

        out[0] = -np.fft.irfftn(hx_fft, s=(pz, py, px),
                                axes=axes)[:nz, :ny, :nx]
        out[1] = -np.fft.irfftn(hy_fft, s=(pz, py, px),
                                axes=axes)[:nz, :ny, :nx]
        out[2] = -np.fft.irfftn(hz_fft, s=(pz, py, px),
                                axes=axes)[:nz, :ny, :nx]
        return out

    def energy_density(self, m: np.ndarray) -> np.ndarray:
        """``-mu0 Ms / 2 m . H_d`` [J/m^3]."""
        h = self.field(m)
        return -0.5 * MU0 * self.ms * np.sum(m * h, axis=0) * self.mask

    def energy(self, m: np.ndarray) -> float:
        """Total magnetostatic energy [J]."""
        return float(np.sum(self.energy_density(m)) * self.mesh.cell_volume)


class ThinFilmDemagField:
    """Local thin-film demag limit: ``H = -Ms m_z z_hat`` inside the mask.

    For a laterally infinite ultrathin film the demag tensor approaches
    ``diag(0, 0, 1)``; the paper's 1 nm x 50 nm waveguide cross-section
    is close enough that this captures the dominant (out-of-plane)
    contribution at a tiny fraction of the FFT cost.  In-plane edge
    charges are neglected, which slightly softens the effective width
    confinement -- fine for the qualitative gate-scale runs.
    """

    def __init__(self, mesh: Mesh, ms: float, mask: np.ndarray = None):
        if ms <= 0:
            raise ValueError("saturation magnetisation must be positive")
        self.mesh = mesh
        self.ms = ms
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        self.mask = mask.astype(bool)

    def field(self, m: np.ndarray, out: np.ndarray = None) -> np.ndarray:
        """Local demag field [A/m]."""
        if out is None:
            out = np.zeros_like(m)
        else:
            out[...] = 0.0
        out[2] = -self.ms * m[2] * self.mask
        return out

    def energy_density(self, m: np.ndarray) -> np.ndarray:
        """``mu0 Ms^2 / 2 * m_z^2`` [J/m^3]."""
        return 0.5 * MU0 * self.ms ** 2 * m[2] ** 2 * self.mask

    def energy(self, m: np.ndarray) -> float:
        """Total thin-film demag energy [J]."""
        return float(np.sum(self.energy_density(m)) * self.mesh.cell_volume)
