"""Micromagnetic simulation driver -- the MuMax3-substitute front end.

Wires a mesh, a material, a geometry mask, the effective-field terms, an
integrator, excitation sources and probes into a single object with the
two operations every workload needs: ``relax()`` (find the static state)
and ``run(duration)`` (time evolution with recording).

Typical use (see examples/micromagnetic_interference.py)::

    sim = Simulation(mesh, FECOB, mask=mask, demag="thin_film")
    sim.initialize(direction=(0, 0, 1))
    sim.add_source(ExcitationSource.for_logic(region, 1, 5e3, 10e9))
    sim.add_probe(Probe("O1", output_region))
    sim.run(duration=2e-9, dt=2e-13)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckpointError
from ..physics.materials import Material
from ..resilience.checkpoint import CheckpointManager
from ..resilience.guardrails import Watchdog
from .fields.anisotropy import UniaxialAnisotropyField
from .fields.demag import DemagField, ThinFilmDemagField
from .fields.exchange import ExchangeField
from .fields.thermal import ThermalField
from .fields.zeeman import ZeemanField
from .geometry import edge_damping_profile
from .llg import HeunIntegrator, RK4Integrator, RK45Integrator, llg_rhs
from .mesh import Mesh, normalize_field
from .probes import Probe


@dataclass
class RunResult:
    """Summary of a time-evolution run."""

    t_final: float
    n_steps: int
    wall_steps_rejected: int = 0


class Simulation:
    """A micromagnetic problem: geometry + physics + numerics.

    Parameters
    ----------
    mesh:
        Finite-difference mesh.
    material:
        Magnetic parameters (Ms, Aex, alpha, Ku...).
    mask:
        Boolean geometry mask; ``None`` means the full mesh is magnetic.
    demag:
        ``"full"`` (Newell/FFT), ``"thin_film"`` (local -Mz approximation)
        or ``"none"``.
    external_field:
        Uniform bias field [A/m].
    temperature:
        Temperature [K]; > 0 activates the stochastic thermal field and
        the Heun integrator.
    absorber_width:
        Width [m] of absorbing (damping-ramp) regions at the +-x and +-y
        mesh edges; 0 disables them.
    rng:
        Random generator for the thermal field.
    """

    def __init__(self, mesh: Mesh, material: Material,
                 mask: Optional[np.ndarray] = None,
                 demag: str = "full",
                 external_field: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                 temperature: float = 0.0,
                 absorber_width: float = 0.0,
                 absorber_axes: Tuple[int, ...] = (0, 1),
                 rng: Optional[np.random.Generator] = None):
        self.mesh = mesh
        self.material = material
        if mask is None:
            mask = np.ones(mesh.scalar_shape, dtype=bool)
        if mask.shape != mesh.scalar_shape:
            raise ValueError(f"mask shape {mask.shape} != {mesh.scalar_shape}")
        if not mask.any():
            raise ValueError("geometry mask is empty")
        self.mask = mask.astype(bool)

        cell_max = max(mesh.dx, mesh.dy)
        if cell_max > 2.0 * material.exchange_length:
            import warnings
            warnings.warn(
                f"in-plane cell ({cell_max * 1e9:.2f} nm) exceeds twice the "
                f"exchange length ({material.exchange_length * 1e9:.2f} nm); "
                "short-wavelength dynamics will be under-resolved",
                stacklevel=2)

        # Field terms ---------------------------------------------------------
        self.exchange = ExchangeField(mesh, material.aex, material.ms, self.mask)
        self.anisotropy = (
            UniaxialAnisotropyField(mesh, material.ku, material.ms,
                                    material.anisotropy_axis, self.mask)
            if material.ku != 0.0 else None)
        self.zeeman = ZeemanField(mesh, external_field, self.mask)
        if demag == "full":
            self.demag = DemagField(mesh, material.ms, self.mask)
        elif demag == "thin_film":
            self.demag = ThinFilmDemagField(mesh, material.ms, self.mask)
        elif demag == "none":
            self.demag = None
        else:
            raise ValueError("demag must be 'full', 'thin_film' or 'none'")
        self.thermal = (
            ThermalField(mesh, material.ms, material.alpha, material.gamma,
                         temperature, rng, self.mask)
            if temperature > 0.0 else None)

        # Damping profile (possibly spatially varying for absorbers) ----------
        if absorber_width > 0.0:
            self.alpha = edge_damping_profile(
                mesh, self.mask, material.alpha, absorber_width,
                axes=absorber_axes)
        else:
            self.alpha = np.where(self.mask, material.alpha, 0.0)

        self.m = mesh.zeros_vector()
        self.t = 0.0
        self.probes: List[Probe] = []
        self._rhs_evaluations = 0

    # -- setup ------------------------------------------------------------------

    def initialize(self, direction: Tuple[float, float, float] = (0.0, 0.0, 1.0)
                   ) -> None:
        """Set a uniform initial magnetisation inside the mask."""
        field = self.mesh.uniform_vector(direction)
        field *= self.mask[None, ...]
        self.m = field
        self.t = 0.0

    def set_magnetization(self, m: np.ndarray) -> None:
        """Install an externally prepared magnetisation (renormalised)."""
        if m.shape != self.mesh.field_shape:
            raise ValueError(f"magnetisation shape {m.shape} != "
                             f"{self.mesh.field_shape}")
        self.m = m.copy() * self.mask[None, ...]
        normalize_field(self.m, self.mask)

    def add_source(self, source) -> None:
        """Register an excitation source with the Zeeman term."""
        self.zeeman.add_source(source)

    def clear_sources(self) -> None:
        """Remove all excitation sources."""
        self.zeeman.sources.clear()

    def add_probe(self, probe: Probe) -> None:
        """Register and bind a detection probe."""
        probe.bind(self.mesh, self.mask)
        self.probes.append(probe)

    # -- physics ------------------------------------------------------------------

    def effective_field(self, m: np.ndarray, t: float) -> np.ndarray:
        """Total effective field H_eff(m, t) [A/m]."""
        h = self.exchange.field(m)
        if self.anisotropy is not None:
            h += self.anisotropy.field(m)
        if self.demag is not None:
            h += self.demag.field(m)
        h += self.zeeman.field(m, t)
        if self.thermal is not None:
            h += self.thermal.field(m)
        self._rhs_evaluations += 1
        return h

    def _rhs(self, t: float, m: np.ndarray) -> np.ndarray:
        h = self.effective_field(m, t)
        return llg_rhs(m, h, self.material.gamma, self.alpha)

    def total_energy(self) -> float:
        """Sum of all energy terms at the current state [J]."""
        energy = self.exchange.energy(self.m)
        if self.anisotropy is not None:
            energy += self.anisotropy.energy(self.m)
        if self.demag is not None:
            energy += self.demag.energy(self.m)
        energy += self.zeeman.energy(self.m, self.t, self.material.ms)
        return energy

    # -- time evolution -------------------------------------------------------------

    def run(self, duration: float, dt: float,
            sample_every: int = 1,
            snapshot_times: Optional[Sequence[float]] = None,
            watchdog: Optional[Watchdog] = None,
            checkpoint: Optional[CheckpointManager] = None
            ) -> Dict[str, np.ndarray]:
        """Fixed-step time evolution (RK4, or Heun when thermal).

        Parameters
        ----------
        duration:
            Simulated time to advance [s].
        dt:
            Integrator step [s].  For 10 GHz drive, 100 steps/period
            means dt = 1 ps; exchange stability typically wants less --
            a few tens of fs for nm cells.
        sample_every:
            Probe sampling stride in steps.
        snapshot_times:
            Optional times [s] at which full magnetisation snapshots are
            stored (returned under key ``"snapshots"``).
        watchdog:
            Optional
            :class:`~repro.resilience.guardrails.MagnetisationWatchdog`
            handed to the integrator; raises
            :class:`~repro.errors.NumericalDivergenceError` when the
            magnetisation blows up.
        checkpoint:
            Optional :class:`~repro.resilience.CheckpointManager`
            persisting :meth:`state_dict` periodically during the run.

        Returns
        -------
        dict
            ``{"result": RunResult, "snapshots": {t: m_copy, ...}}``
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if dt <= 0:
            raise ValueError("dt must be positive")
        n_steps = int(round(duration / dt))
        if self.thermal is not None:
            integrator = HeunIntegrator(self._rhs, mask=self.mask,
                                        watchdog=watchdog)
        else:
            integrator = RK4Integrator(self._rhs, mask=self.mask,
                                       watchdog=watchdog)

        pending = sorted(snapshot_times) if snapshot_times else []
        snapshots: Dict[float, np.ndarray] = {}
        for probe in self.probes:
            probe.record(self.t, self.m)
        for step in range(n_steps):
            if self.thermal is not None:
                self.thermal.refresh(dt, step)
            self.m = integrator.step(self.t, self.m, dt)
            self.t += dt
            if (step + 1) % sample_every == 0:
                for probe in self.probes:
                    probe.record(self.t, self.m)
            while pending and self.t >= pending[0] - dt / 2.0:
                snapshots[pending.pop(0)] = self.m.copy()
            if checkpoint is not None:
                checkpoint.maybe_save(step + 1, self.state_dict)
        return {"result": RunResult(t_final=self.t, n_steps=n_steps),
                "snapshots": snapshots}

    # -- checkpoint/resume ----------------------------------------------------------

    def state_dict(self) -> Tuple[Dict[str, np.ndarray], Dict[str, float]]:
        """Solver state in :class:`CheckpointManager` format."""
        return ({"m": self.m},
                {"solver": "llg", "t": self.t,
                 "shape": list(self.mesh.field_shape)})

    def load_state(self, arrays: Dict[str, np.ndarray],
                   meta: Dict[str, float]) -> None:
        """Restore a :meth:`state_dict` snapshot (shape-checked)."""
        if tuple(meta.get("shape", ())) != tuple(self.mesh.field_shape):
            raise CheckpointError(
                f"checkpoint field shape {meta.get('shape')} does not "
                f"match mesh field shape {list(self.mesh.field_shape)}")
        self.m = np.array(arrays["m"], dtype=float)
        self.t = float(meta["t"])

    def relax(self, tolerance: float = 1.0, max_time: float = 20e-9,
              dt0: float = 1e-13, high_damping: float = 0.5) -> RunResult:
        """Drive the system toward the metastable static state.

        Uses the adaptive integrator with damping temporarily raised to
        ``high_damping`` (precession-free relaxation, same trick as
        MuMax3's ``relax()``), stopping when the maximum torque
        ``|dm/dt|`` falls below ``tolerance`` [1/ns units are common;
        here 1/s] * 1e9... concretely we stop when
        ``max |dm/dt| * 1 ns < tolerance`` (dimensionless tilt/ns).
        """
        saved_alpha = self.alpha
        self.alpha = np.where(self.mask, high_damping, 0.0)
        saved_sources = list(self.zeeman.sources)
        self.zeeman.sources.clear()
        try:
            integrator = RK45Integrator(self._rhs, tolerance=1e-4,
                                        dt_max=5e-12, mask=self.mask)
            dt = dt0
            t_start = self.t
            steps = 0
            while self.t - t_start < max_time:
                self.m, taken, dt = integrator.step(self.t, self.m, dt)
                self.t += taken
                steps += 1
                if steps % 10 == 0:
                    torque = float(np.max(np.abs(
                        self._rhs(self.t, self.m))))
                    if torque * 1e-9 < tolerance:
                        break
            return RunResult(t_final=self.t, n_steps=steps,
                             wall_steps_rejected=integrator.rejected_steps)
        finally:
            self.alpha = saved_alpha
            self.zeeman.sources = saved_sources
