"""Post-processing: spectra, dispersion extraction, mode profiles.

The key validation of the solver against the paper's physics is the
numerically extracted dispersion relation of a long waveguide compared
with the analytic Kalinikos-Slavin curve (:mod:`repro.physics.dispersion`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .mesh import Mesh


@dataclass
class DispersionMap:
    """Result of a space-time FFT: power on the (k, f) grid."""

    wavenumbers: np.ndarray   # [rad/m], one-sided
    frequencies: np.ndarray   # [Hz], one-sided
    power: np.ndarray         # shape (n_f, n_k)

    def ridge(self, k_min: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
        """Extract f(k) as the peak frequency for each wavenumber column.

        Parameters
        ----------
        k_min:
            Ignore columns below this wavenumber (the k~0 FMR peak can
            dominate and is not a propagating-wave data point).

        Returns
        -------
        tuple
            ``(k_values, f_values)`` of the ridge.
        """
        keep = self.wavenumbers >= k_min
        ks = self.wavenumbers[keep]
        cols = self.power[:, keep]
        f_idx = np.argmax(cols, axis=0)
        return ks, self.frequencies[f_idx]


def space_time_fft(signal: np.ndarray, dx: float, dt: float) -> DispersionMap:
    """2-D FFT of a ``(n_time, n_x)`` signal into (frequency, wavenumber).

    The usual magnonics workflow: record m_x(t, x) along the waveguide
    centre line under broadband excitation, FFT in both axes, and the
    spectral ridge *is* the dispersion relation.

    Parameters
    ----------
    signal:
        Space-time magnetisation samples ``(n_time, n_x)``.
    dx:
        Spatial sample spacing [m].
    dt:
        Temporal sample spacing [s].
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 2:
        raise ValueError("signal must be 2-D (time, space)")
    n_t, n_x = signal.shape
    window_t = np.hanning(n_t)[:, None]
    window_x = np.hanning(n_x)[None, :]
    spec = np.fft.fft2(signal * window_t * window_x)
    spec = np.fft.fftshift(spec)
    power = np.abs(spec) ** 2

    freqs = np.fft.fftshift(np.fft.fftfreq(n_t, d=dt))
    ks = np.fft.fftshift(np.fft.fftfreq(n_x, d=dx)) * 2.0 * math.pi

    # Keep positive frequencies; fold +-k onto |k| by summing.
    pos_f = freqs >= 0
    power_pf = power[pos_f, :]
    freqs = freqs[pos_f]
    pos_k = ks >= 0
    k_pos = ks[pos_k]
    folded = power_pf[:, pos_k].copy()
    neg = power_pf[:, ks < 0]
    n_match = min(neg.shape[1], folded.shape[1] - 1)
    if n_match > 0:
        folded[:, 1:1 + n_match] += neg[:, ::-1][:, :n_match]
    return DispersionMap(wavenumbers=k_pos, frequencies=freqs, power=folded)


def ringdown_spectrum(trace_values: np.ndarray, dt: float
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """FMR-style spectrum of a free ringdown ``(frequencies, amplitude)``."""
    values = np.asarray(trace_values, dtype=float)
    values = values - values.mean()
    n = len(values)
    if n < 8:
        raise ValueError("ringdown trace too short")
    window = np.hanning(n)
    spec = np.abs(np.fft.rfft(values * window))
    freqs = np.fft.rfftfreq(n, d=dt)
    return freqs, spec


def dominant_frequency(trace_values: np.ndarray, dt: float) -> float:
    """Peak frequency of a ringdown trace [Hz] with parabolic refinement."""
    freqs, spec = ringdown_spectrum(trace_values, dt)
    if len(spec) < 3:
        raise ValueError("spectrum too short")
    i = int(np.argmax(spec[1:])) + 1  # skip DC
    if 0 < i < len(spec) - 1:
        # Parabolic interpolation around the peak bin.
        y0, y1, y2 = spec[i - 1], spec[i], spec[i + 1]
        denom = y0 - 2.0 * y1 + y2
        delta = 0.5 * (y0 - y2) / denom if denom != 0 else 0.0
        delta = float(np.clip(delta, -0.5, 0.5))
    else:
        delta = 0.0
    df = freqs[1] - freqs[0]
    return float(freqs[i] + delta * df)


def centerline_signal(snapshots: np.ndarray, mesh: Mesh,
                      component: int = 0, iy: Optional[int] = None,
                      iz: int = 0) -> np.ndarray:
    """Extract m_c(t, x) along the waveguide centre line.

    Parameters
    ----------
    snapshots:
        Array ``(n_time, 3, nz, ny, nx)`` of magnetisation snapshots.
    mesh:
        The mesh (for the default centre row).
    component:
        Magnetisation component.
    iy, iz:
        Row indices; default to the mesh centre line.
    """
    snapshots = np.asarray(snapshots)
    if snapshots.ndim != 5:
        raise ValueError("snapshots must be (n_time, 3, nz, ny, nx)")
    row = mesh.ny // 2 if iy is None else iy
    return snapshots[:, component, iz, row, :]


def precession_amplitude_map(m: np.ndarray, m0: np.ndarray = None) -> np.ndarray:
    """In-plane precession amplitude ``sqrt(mx^2 + my^2)`` per cell.

    For FVSW the static state is m = z, so the in-plane components *are*
    the spin-wave field.  If a reference ``m0`` is supplied it is
    subtracted first (for tilted static states).
    """
    dyn = m - m0 if m0 is not None else m
    return np.sqrt(dyn[0] ** 2 + dyn[1] ** 2)
