"""Turnkey micromagnetic experiments validating the solver.

These wrap complete workflows the magnonics community runs in MuMax3
scripts, exposing them as single function calls used by the validation
benches and the examples:

* :func:`extract_dispersion` -- the classic numerical dispersion
  measurement: broadband (sinc) excitation of a long waveguide,
  space-time FFT of the recorded magnetisation, ridge extraction, and
  comparison against the analytic Kalinikos-Slavin branch.  This is
  the strongest single validation of the LLG solver as a MuMax3
  substitute: it exercises exchange, demag, anisotropy, the integrator
  and the probe pipeline at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..physics.dispersion import DispersionRelation, FilmStack
from ..physics.materials import Material
from .analysis import DispersionMap, space_time_fft
from .excitation import Envelope, ExcitationSource
from .geometry import rectangle
from .mesh import Mesh
from .sim import Simulation


class SincSource(ExcitationSource):
    """Broadband sinc-pulse source: flat spectrum up to a cutoff.

    ``h(t) = A sinc(2 f_max (t - t0))`` excites all frequencies below
    ``f_max`` with equal weight -- the standard drive for dispersion
    extraction runs.
    """

    def __init__(self, region, amplitude: float, f_max: float,
                 t0: float = 0.5e-9,
                 direction: Tuple[float, float, float] = (1.0, 0.0, 0.0)):
        if f_max <= 0:
            raise ValueError("cutoff frequency must be positive")
        super().__init__(region=region, amplitude=amplitude,
                         frequency=f_max, direction=direction)
        self.f_max = f_max
        self.t0 = t0

    def waveform(self, t: float) -> float:
        """sinc envelope (overrides the CW waveform)."""
        x = 2.0 * self.f_max * (t - self.t0)
        if x == 0.0:
            return self.amplitude
        return self.amplitude * math.sin(math.pi * x) / (math.pi * x)


@dataclass
class DispersionExperiment:
    """Result of a numerical dispersion extraction."""

    dispersion_map: DispersionMap
    k_values: np.ndarray        # ridge wavenumbers [rad/m]
    f_measured: np.ndarray      # ridge frequencies [Hz]
    f_analytic: np.ndarray      # Kalinikos-Slavin at the same k
    relative_error: np.ndarray

    @property
    def max_relative_error(self) -> float:
        return float(np.max(np.abs(self.relative_error)))

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean(np.abs(self.relative_error)))


def extract_dispersion(material: Material,
                       thickness: float = 1e-9,
                       length: float = 2e-6,
                       cell: float = 5e-9,
                       f_max: float = 40e9,
                       duration: float = 4e-9,
                       dt: float = 2.5e-14,
                       sample_every: int = 8,
                       amplitude: float = 5e3,
                       k_band: Tuple[float, float] = (3e7, 3e8),
                       demag: str = "thin_film",
                       rng: Optional[np.random.Generator] = None
                       ) -> DispersionExperiment:
    """Measure the FVSW dispersion of a waveguide with the LLG solver.

    A narrow line antenna at the waveguide centre is driven with a
    broadband sinc pulse; m_x(t, x) is recorded along the guide and
    2-D-FFT'd; the spectral ridge is compared with the analytic
    dispersion on the wavenumber band ``k_band``.

    Returns
    -------
    DispersionExperiment
        Including per-k relative frequency errors.
    """
    nx = int(round(length / cell))
    mesh = Mesh(cell_size=(cell, cell, thickness), shape=(nx, 4, 1))
    sim = Simulation(mesh, material, demag=demag,
                     absorber_width=0.15 * length, absorber_axes=(0,),
                     rng=rng)
    sim.initialize((0, 0, 1))
    centre = length / 2.0
    sim.add_source(SincSource(
        region=rectangle(centre - cell, 0.0, centre + cell, 4 * cell),
        amplitude=amplitude, f_max=f_max))

    n_steps = int(round(duration / dt))
    n_samples = n_steps // sample_every
    signal = np.empty((n_samples, nx))
    from .llg import RK4Integrator

    integrator = RK4Integrator(sim._rhs, mask=sim.mask)
    sample = 0
    for step in range(n_steps):
        sim.m = integrator.step(sim.t, sim.m, dt)
        sim.t += dt
        if (step + 1) % sample_every == 0 and sample < n_samples:
            signal[sample] = sim.m[0, 0, 2, :]  # centre row, m_x
            sample += 1

    dmap = space_time_fft(signal[:sample], dx=cell, dt=dt * sample_every)
    ks, fs = dmap.ridge(k_min=k_band[0])
    keep = (ks >= k_band[0]) & (ks <= k_band[1])
    ks, fs = ks[keep], fs[keep]

    film = FilmStack(material=material, thickness=thickness)
    analytic = np.asarray(DispersionRelation(film).frequency(ks))
    # Drop ridge points beyond the excited band: the sinc source puts
    # no energy above f_max, so the ridge is noise there.
    excited = analytic < 0.8 * f_max
    ks, fs, analytic = ks[excited], fs[excited], analytic[excited]
    error = (fs - analytic) / analytic
    return DispersionExperiment(dispersion_map=dmap, k_values=ks,
                                f_measured=fs, f_analytic=analytic,
                                relative_error=error)
