"""Turnkey micromagnetic experiments validating the solver.

These wrap complete workflows the magnonics community runs in MuMax3
scripts, exposing them as single function calls used by the validation
benches and the examples:

* :func:`extract_dispersion` -- the classic numerical dispersion
  measurement: broadband (sinc) excitation of a long waveguide,
  space-time FFT of the recorded magnetisation, ridge extraction, and
  comparison against the analytic Kalinikos-Slavin branch.  This is
  the strongest single validation of the LLG solver as a MuMax3
  substitute: it exercises exchange, demag, anisotropy, the integrator
  and the probe pipeline at once.
* :func:`run_gate_case` / :func:`sweep_gate_truth_table` -- one gate
  input pattern as a portable, cacheable job, and the full 2^n
  truth-table grid fanned out through the orchestration engine
  (:mod:`repro.runtime`).  This is exactly how the paper validates its
  gates: one independent MuMax3 run per input combination (Tables
  I-II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..physics.dispersion import DispersionRelation, FilmStack
from ..physics.materials import Material
from .analysis import DispersionMap, space_time_fft
from .excitation import Envelope, ExcitationSource
from .geometry import rectangle
from .mesh import Mesh
from .sim import Simulation


class SincSource(ExcitationSource):
    """Broadband sinc-pulse source: flat spectrum up to a cutoff.

    ``h(t) = A sinc(2 f_max (t - t0))`` excites all frequencies below
    ``f_max`` with equal weight -- the standard drive for dispersion
    extraction runs.
    """

    def __init__(self, region, amplitude: float, f_max: float,
                 t0: float = 0.5e-9,
                 direction: Tuple[float, float, float] = (1.0, 0.0, 0.0)):
        if f_max <= 0:
            raise ValueError("cutoff frequency must be positive")
        super().__init__(region=region, amplitude=amplitude,
                         frequency=f_max, direction=direction)
        self.f_max = f_max
        self.t0 = t0

    def waveform(self, t: float) -> float:
        """sinc envelope (overrides the CW waveform)."""
        x = 2.0 * self.f_max * (t - self.t0)
        if x == 0.0:
            return self.amplitude
        return self.amplitude * math.sin(math.pi * x) / (math.pi * x)


@dataclass
class DispersionExperiment:
    """Result of a numerical dispersion extraction."""

    dispersion_map: DispersionMap
    k_values: np.ndarray        # ridge wavenumbers [rad/m]
    f_measured: np.ndarray      # ridge frequencies [Hz]
    f_analytic: np.ndarray      # Kalinikos-Slavin at the same k
    relative_error: np.ndarray

    @property
    def max_relative_error(self) -> float:
        return float(np.max(np.abs(self.relative_error)))

    @property
    def mean_relative_error(self) -> float:
        return float(np.mean(np.abs(self.relative_error)))


def extract_dispersion(material: Material,
                       thickness: float = 1e-9,
                       length: float = 2e-6,
                       cell: float = 5e-9,
                       f_max: float = 40e9,
                       duration: float = 4e-9,
                       dt: float = 2.5e-14,
                       sample_every: int = 8,
                       amplitude: float = 5e3,
                       k_band: Tuple[float, float] = (3e7, 3e8),
                       demag: str = "thin_film",
                       rng: Optional[np.random.Generator] = None
                       ) -> DispersionExperiment:
    """Measure the FVSW dispersion of a waveguide with the LLG solver.

    A narrow line antenna at the waveguide centre is driven with a
    broadband sinc pulse; m_x(t, x) is recorded along the guide and
    2-D-FFT'd; the spectral ridge is compared with the analytic
    dispersion on the wavenumber band ``k_band``.

    Returns
    -------
    DispersionExperiment
        Including per-k relative frequency errors.
    """
    nx = int(round(length / cell))
    mesh = Mesh(cell_size=(cell, cell, thickness), shape=(nx, 4, 1))
    sim = Simulation(mesh, material, demag=demag,
                     absorber_width=0.15 * length, absorber_axes=(0,),
                     rng=rng)
    sim.initialize((0, 0, 1))
    centre = length / 2.0
    sim.add_source(SincSource(
        region=rectangle(centre - cell, 0.0, centre + cell, 4 * cell),
        amplitude=amplitude, f_max=f_max))

    n_steps = int(round(duration / dt))
    n_samples = n_steps // sample_every
    signal = np.empty((n_samples, nx))
    from .llg import RK4Integrator

    integrator = RK4Integrator(sim._rhs, mask=sim.mask)
    sample = 0
    for step in range(n_steps):
        sim.m = integrator.step(sim.t, sim.m, dt)
        sim.t += dt
        if (step + 1) % sample_every == 0 and sample < n_samples:
            signal[sample] = sim.m[0, 0, 2, :]  # centre row, m_x
            sample += 1

    dmap = space_time_fft(signal[:sample], dx=cell, dt=dt * sample_every)
    ks, fs = dmap.ridge(k_min=k_band[0])
    keep = (ks >= k_band[0]) & (ks <= k_band[1])
    ks, fs = ks[keep], fs[keep]

    film = FilmStack(material=material, thickness=thickness)
    analytic = np.asarray(DispersionRelation(film).frequency(ks))
    # Drop ridge points beyond the excited band: the sinc source puts
    # no energy above f_max, so the ridge is noise there.
    excited = analytic < 0.8 * f_max
    ks, fs, analytic = ks[excited], fs[excited], analytic[excited]
    error = (fs - analytic) / analytic
    return DispersionExperiment(dispersion_map=dmap, k_values=ks,
                                f_measured=fs, f_analytic=analytic,
                                relative_error=error)


# -- truth-table sweeps through the orchestration engine --------------------

GATE_ARITY = {"maj3": 3, "xor": 2}


#: Degradation ladders per starting tier: each entry is walked left to
#: right until a rung answers.  The surrogate's ladder falls through
#: the network tier (the source its fits were characterized from) and
#: on to FDTD, so even a chaos drill knocking out both instant tiers
#: still produces a physically-grounded answer.
_TIER_LADDERS = {
    "llg": ("llg", "fdtd", "network"),
    "fdtd": ("fdtd", "network"),
    "network": ("network",),
    "surrogate": ("surrogate", "network", "fdtd"),
}


def run_gate_case(gate: str, bits: Sequence[int], tier: str = "network",
                  calibrated: bool = False,
                  frequency: Optional[float] = None,
                  n_d1: int = 2, cells_per_wavelength: int = 10,
                  temperature: float = 0.0,
                  seed: Optional[int] = None,
                  phase_noise: float = 0.0,
                  geometry_jitter: float = 0.0,
                  remediate: bool = True) -> Dict[str, Any]:
    """Evaluate ONE input pattern of a triangle gate -- as a job.

    This is the unit of work the paper's validation grid is made of
    (one MuMax3 run per input combination).  It is module-level, takes
    only JSON-canonicalisable parameters and returns a JSON-shaped
    dict, so :class:`repro.runtime.JobSpec` can ship it to worker
    processes and cache the result content-addressed.

    Parameters
    ----------
    gate:
        ``"maj3"`` or ``"xor"``.
    bits:
        The input pattern (3 bits for MAJ3, 2 for XOR).
    tier:
        ``"surrogate"`` (fitted characterization lookup, microseconds),
        ``"network"`` (analytic, instantaneous), ``"fdtd"`` (rasterised
        wave solver, seconds) or ``"llg"`` (scaled micromagnetics,
        minutes).
    calibrated:
        Network tier only: use the damping-calibrated arrival model
        that reproduces Table I exactly.
    frequency / n_d1 / cells_per_wavelength:
        LLG tier scaling knobs (see :func:`scaled_maj3_experiment`);
        ``frequency`` defaults to 28 GHz there and to the gates' 10 GHz
        paper point elsewhere.
    temperature:
        LLG tier only: finite temperature [K] for the stochastic
        thermal field.
    seed:
        RNG seed for thermal noise.  Defaults to a seed derived
        deterministically from the job's identifying parameters
        (:func:`repro.micromag.fields.thermal.seed_from_key`), so
        cached thermal runs reproduce bit-exact across processes.
    phase_noise / geometry_jitter:
        Surrogate tier only: input phase jitter sigma [rad] and
        relative fabrication length error -- characterization axes the
        fitted model interpolates over.  The physical tiers model
        neither knob, so nonzero values there raise ``ValueError``
        (and a surrogate fallback answers the *nominal* case).
    remediate:
        Degradation policy (default True): an LLG run that trips its
        magnetisation watchdog is retried with a halved dt (bounded by
        :class:`~repro.resilience.RemediationPolicy`), and a tier
        whose retry budget is exhausted degrades down its ladder
        (llg -> fdtd -> network; surrogate -> network -> fdtd),
        recording ``degraded_from`` (the requested tier) and
        ``degradation_path`` (every rung walked) in the result.  The
        surrogate rung additionally degrades on
        :class:`~repro.errors.SurrogateDomainError` -- an accuracy
        guardrail miss is handled exactly like a numerical failure --
        and the two instant rungs degrade on injected faults
        (chaos drills).  ``remediate=False`` lets the error propagate.
        The default is deliberately not part of sweep cache keys.

    Returns
    -------
    dict
        ``{"gate", "tier", "bits", "outputs": {name: {"logic",
        "amplitude", "phase", "margin"}}, "normalized": [...],
        "expected", "correct", "fanout_matched"}``, plus
        ``"degraded_from"`` / ``"dt_halvings"`` when remediation acted.
    """
    from ..core.logic import check_bits, majority, xor as xor_fn

    if gate not in GATE_ARITY:
        raise ValueError(f"unknown gate {gate!r}; choose from "
                         f"{sorted(GATE_ARITY)}")
    bits = check_bits(bits)
    if len(bits) != GATE_ARITY[gate]:
        raise ValueError(f"{gate} takes {GATE_ARITY[gate]} bits, "
                         f"got {len(bits)}")
    expected = majority(*bits) if gate == "maj3" else xor_fn(*bits)
    if tier not in _TIER_LADDERS:
        raise ValueError(f"unknown tier {tier!r}; choose from "
                         "'surrogate', 'network', 'fdtd', 'llg'")
    if tier != "surrogate" and (phase_noise or geometry_jitter):
        raise ValueError("phase_noise/geometry_jitter are characterization "
                         "axes of the surrogate tier; the physical tiers "
                         "do not model them")

    from ..errors import (
        FaultInjected,
        NumericalDivergenceError,
        SurrogateDomainError,
    )
    from ..resilience.guardrails import run_with_dt_remediation

    with obs.span("gate_case", gate=gate, tier=tier,
                  bits="".join(map(str, bits))):
        ladder = _TIER_LADDERS[tier]
        rung = 0
        failed: list = []
        while True:
            attempt_tier = ladder[rung]
            try:
                case = _evaluate_tier(gate, bits, expected, attempt_tier,
                                      calibrated, frequency, n_d1,
                                      cells_per_wavelength, temperature,
                                      seed, phase_noise, geometry_jitter,
                                      remediate, run_with_dt_remediation)
                break
            except (NumericalDivergenceError, SurrogateDomainError,
                    FaultInjected) as exc:
                # The physical rungs (fdtd/llg) only degrade on genuine
                # numerical divergence -- an injected fault there is
                # meant to propagate, as it always has.  The instant
                # rungs (surrogate/network) degrade on anything
                # handled, including chaos-drill faults and surrogate
                # domain misses.
                degradable = (isinstance(exc, NumericalDivergenceError)
                              or attempt_tier in ("surrogate", "network"))
                if (not remediate or not degradable
                        or rung + 1 >= len(ladder)):
                    raise
                obs.get_logger("micromag.experiments").warning(
                    "%s tier failed for %s %s (%s); degrading to %s",
                    attempt_tier, gate, bits, exc, ladder[rung + 1])
                if obs.enabled():
                    obs.counter("resilience.degraded").inc()
                failed.append(attempt_tier)
                rung += 1
        if failed:
            case["degraded_from"] = failed[0]
            case["degradation_path"] = failed + [attempt_tier]
        return case


def _evaluate_tier(gate: str, bits: Tuple[int, ...], expected: int,
                   tier: str, calibrated: bool, frequency: Optional[float],
                   n_d1: int, cells_per_wavelength: int, temperature: float,
                   seed: Optional[int], phase_noise: float,
                   geometry_jitter: float, remediate: bool,
                   run_with_dt_remediation: Any) -> Dict[str, Any]:
    """One tier of the degradation ladder, with LLG dt remediation."""
    if tier == "surrogate":
        from ..surrogate.tier import evaluate_surrogate, query_point

        return evaluate_surrogate(
            gate, bits, query_point(phase_noise=phase_noise,
                                    frequency=frequency,
                                    geometry_jitter=geometry_jitter,
                                    temperature=temperature))
    if tier in ("network", "fdtd"):
        result, normalized = _evaluate_model_tier(gate, bits, tier,
                                                  calibrated, frequency)
        outputs = {
            name: {"logic": det.logic_value, "amplitude": det.amplitude,
                   "phase": det.phase, "margin": det.margin}
            for name, det in result.outputs.items()}
        return {"gate": gate, "tier": tier, "bits": list(bits),
                "outputs": outputs, "normalized": list(normalized),
                "expected": expected, "correct": result.correct,
                "fanout_matched": result.fanout_matched}

    def run(dt: Optional[float]) -> Dict[str, Any]:
        return _evaluate_llg_tier(gate, bits, expected,
                                  frequency or 28e9, n_d1,
                                  cells_per_wavelength, temperature, seed,
                                  dt=dt)

    if not remediate:
        return run(None)
    from .gate_experiment import LlgGateExperiment

    base_dt = LlgGateExperiment.dt  # dataclass field default
    case, dt_used, halvings = run_with_dt_remediation(run, base_dt)
    if halvings:
        case["dt_halvings"] = halvings
        case["dt"] = dt_used
    return case


def _evaluate_model_tier(gate: str, bits: Tuple[int, ...], tier: str,
                         calibrated: bool, frequency: Optional[float]):
    """Network/FDTD evaluation plus the Table I/II normalisation."""
    from ..core.gates import (
        TriangleMajorityGate,
        TriangleXorGate,
        paper_table_i_gate,
    )
    from ..resilience import faults

    faults.trip(f"{tier}.evaluate")
    kwargs = {} if frequency is None else {"frequency": frequency}
    if gate == "maj3":
        instance = paper_table_i_gate() if calibrated and not kwargs \
            else TriangleMajorityGate(**kwargs)
    else:
        instance = TriangleXorGate(**kwargs)
    result = instance.evaluate(bits, backend=tier)
    if (gate == "maj3" and instance.calibration is not None
            and tier == "network"):
        normalized = (instance.calibration.normalized_output(bits),) * 2
    else:
        zeros = instance.output_envelopes((0,) * len(bits), tier)
        env = instance.output_envelopes(bits, tier)
        normalized = tuple(
            abs(env[name]) / abs(zeros[name])
            for name in instance.output_names)
    return result, normalized


def _evaluate_llg_tier(gate: str, bits: Tuple[int, ...], expected: int,
                       frequency: float, n_d1: int,
                       cells_per_wavelength: int, temperature: float,
                       seed: Optional[int],
                       dt: Optional[float] = None) -> Dict[str, Any]:
    """Scaled micromagnetic evaluation of one pattern.

    Runs the pattern *and* the all-zeros reference (the paper's
    "predefined phase" / unanimous normalisation), then decodes with
    the same detectors as the model tiers.  A
    :class:`~repro.resilience.MagnetisationWatchdog` rides along both
    runs; ``dt`` overrides the experiment's integrator step (the
    dt-halving remediation knob).
    """
    from ..core.detection import PhaseDetector, ThresholdDetector
    from ..resilience.guardrails import MagnetisationWatchdog
    from .fields.thermal import seed_from_key
    from .gate_experiment import scaled_maj3_experiment, scaled_xor_experiment

    if seed is None and temperature > 0:
        seed = seed_from_key(
            f"llg:{gate}:{''.join(map(str, bits))}"
            f":f={frequency!r}:T={temperature!r}")

    def build():
        factory = scaled_maj3_experiment if gate == "maj3" \
            else scaled_xor_experiment
        experiment = factory(frequency=frequency, n_d1=n_d1,
                             cells_per_wavelength=cells_per_wavelength)
        experiment.temperature = temperature
        if dt is not None:
            experiment.dt = dt
        if seed is not None:
            experiment.rng = np.random.default_rng(seed)
        return experiment

    reference = build().run_case(
        (0,) * len(bits), watchdog=MagnetisationWatchdog())
    case = build().run_case(bits, watchdog=MagnetisationWatchdog())

    outputs: Dict[str, Dict[str, float]] = {}
    normalized: List[float] = []
    for name in sorted(case.amplitudes):
        env = case.amplitudes[name] * np.exp(1j * case.phases[name])
        if gate == "maj3":
            detector = PhaseDetector(reference_phase=reference.phases[name])
        else:
            detector = ThresholdDetector(
                reference_amplitude=reference.amplitudes[name])
        det = detector.detect_envelope(env, frequency)
        outputs[name] = {"logic": det.logic_value,
                         "amplitude": case.amplitudes[name],
                         "phase": case.phases[name], "margin": det.margin}
        normalized.append(case.amplitudes[name]
                          / max(reference.amplitudes[name], 1e-30))
    logic_values = {o["logic"] for o in outputs.values()}
    return {"gate": gate, "tier": "llg", "bits": list(bits),
            "outputs": outputs, "normalized": normalized,
            "expected": expected,
            "correct": all(o["logic"] == expected
                           for o in outputs.values()),
            "fanout_matched": len(logic_values) == 1}


@dataclass
class GateSweep:
    """All 2^n patterns of one gate, evaluated through the engine."""

    gate: str
    tier: str
    cases: "Dict[Tuple[int, ...], Dict[str, Any]]"
    report: Any  # RunReport

    @property
    def logic_table(self) -> Dict[Tuple[int, ...], Tuple[int, ...]]:
        """pattern -> decoded output bits (O1, O2)."""
        return {bits: tuple(case["outputs"][name]["logic"]
                            for name in sorted(case["outputs"]))
                for bits, case in self.cases.items()}

    @property
    def normalized_table(self) -> Dict[Tuple[int, ...], Tuple[float, ...]]:
        """pattern -> Table I/II normalised output amplitudes."""
        return {bits: tuple(case["normalized"])
                for bits, case in self.cases.items()}

    @property
    def all_correct(self) -> bool:
        return all(case["correct"] for case in self.cases.values())

    def format_table(self) -> str:
        """The paper-style truth table (rows ordered I_n..I_1)."""
        from ..io.tables import format_truth_table

        n = GATE_ARITY[self.gate]
        patterns = sorted(self.cases,
                          key=lambda b: tuple(reversed(b)))
        rows = []
        for bits in patterns:
            case = self.cases[bits]
            rows.append([str(case["outputs"][name]["logic"])
                         for name in sorted(case["outputs"])]
                        + [f"{value:.3f}" for value in case["normalized"]]
                        + ["yes" if case["correct"] else "NO"])
        names = sorted(next(iter(self.cases.values()))["outputs"])
        return format_truth_table(
            [tuple(reversed(b)) for b in patterns],
            [f"{n} (logic)" for n in names]
            + [f"{n} (norm)" for n in names] + ["correct"],
            rows, [f"I{i}" for i in range(n, 0, -1)],
            title=f"{self.gate.upper()} FO2 truth-table sweep "
                  f"({self.tier} tier)")


def sweep_gate_truth_table(gate: str = "maj3", tier: str = "network",
                           calibrated: Optional[bool] = None,
                           executor: Optional[Any] = None,
                           workers: Optional[int] = None,
                           cache: Optional[Any] = None,
                           raise_on_failure: bool = True,
                           **case_kwargs: Any) -> GateSweep:
    """Evaluate every input combination of a gate through the engine.

    Builds one :class:`repro.runtime.JobSpec` per input pattern (8 for
    MAJ3, 4 for XOR) on :func:`run_gate_case` and submits the batch to
    an :class:`repro.runtime.Executor` -- parallel across patterns,
    content-addressed-cached across invocations.

    Parameters
    ----------
    gate / tier:
        As for :func:`run_gate_case`.
    calibrated:
        Defaults to True on the network tier (reproducing the paper's
        Table I numbers) and False elsewhere.
    executor:
        A preconfigured :class:`repro.runtime.Executor`; when omitted
        one is built from ``workers`` and ``cache``.
    raise_on_failure:
        Raise :class:`repro.runtime.JobFailed` if any pattern failed
        after retries (default); otherwise failed patterns are simply
        missing from :attr:`GateSweep.cases`.
    **case_kwargs:
        Extra :func:`run_gate_case` parameters (``frequency``,
        ``temperature``, ``n_d1``...), becoming part of the cache key.
    """
    from ..core.logic import input_patterns
    from ..runtime import Executor, JobSpec

    if gate not in GATE_ARITY:
        raise ValueError(f"unknown gate {gate!r}; choose from "
                         f"{sorted(GATE_ARITY)}")
    if calibrated is None:
        calibrated = tier == "network"
    if executor is None:
        executor = Executor(workers=workers, cache=cache)

    specs = []
    for bits in input_patterns(GATE_ARITY[gate]):
        params = {"gate": gate, "bits": list(bits), "tier": tier,
                  "calibrated": calibrated}
        params.update(case_kwargs)
        specs.append(JobSpec(
            fn="repro.micromag.experiments:run_gate_case", params=params,
            label=f"{gate}:{''.join(map(str, bits))}@{tier}"))
    with obs.span("sweep", gate=gate, tier=tier, n_jobs=len(specs)):
        result = executor.run(specs)
    if raise_on_failure:
        result.raise_on_failure()
    for outcome in result:
        # Surface graceful tier degradation in the RunReport telemetry.
        if (outcome.ok and isinstance(outcome.value, dict)
                and outcome.value.get("degraded_from")):
            note = f"degraded_from={outcome.value['degraded_from']}"
            outcome.record.notes = (f"{outcome.record.notes}; {note}"
                                    if outcome.record.notes else note)
    cases = {tuple(outcome.value["bits"]): outcome.value
             for outcome in result if outcome.ok}
    return GateSweep(gate=gate, tier=tier, cases=cases,
                     report=result.report)
