"""Detection probes: record magnetisation in output regions over time.

The paper's detectors (Figure 2's "O" cell) read either the *phase*
(majority gate) or the *amplitude vs. threshold* (XOR gate) of the
arriving spin wave.  A probe averages the dynamic magnetisation over its
region every sample interval; the phase/amplitude extraction against the
drive reference is done by lock-in demodulation in :meth:`TimeTrace.demodulate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .geometry import Shape, rasterize
from .mesh import Mesh


@dataclass
class TimeTrace:
    """A sampled scalar time series with lock-in analysis helpers."""

    times: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.values = np.asarray(self.values, dtype=float)
        if self.times.shape != self.values.shape:
            raise ValueError("times and values must have identical shapes")

    def window(self, t_start: float, t_end: float = math.inf) -> "TimeTrace":
        """Sub-trace restricted to ``t_start <= t <= t_end``."""
        sel = (self.times >= t_start) & (self.times <= t_end)
        return TimeTrace(self.times[sel], self.values[sel])

    def demodulate(self, frequency: float) -> Tuple[float, float]:
        """Lock-in amplitude and phase of the component at ``frequency``.

        Projects the trace onto cos/sin at the drive frequency:
        ``values(t) ~ A cos(2 pi f t + phi)`` -> returns ``(A, phi)``.
        Best applied to a steady-state window spanning an integer number
        of periods (the projection window is trimmed accordingly).
        """
        if len(self.times) < 4:
            raise ValueError("trace too short to demodulate")
        period = 1.0 / frequency
        span = self.times[-1] - self.times[0]
        n_periods = int(span / period)
        if n_periods < 1:
            raise ValueError("trace shorter than one period of the reference")
        t_end = self.times[0] + n_periods * period
        # Exclude the closing boundary sample: an N-sample window over
        # whole periods runs [t0, t0 + N periods), otherwise the first
        # sample is double-weighted and biases the projection by ~1/N.
        half_step = 0.5 * (self.times[1] - self.times[0])
        sel = self.times < t_end - half_step
        t = self.times[sel]
        v = self.values[sel]
        omega = 2.0 * math.pi * frequency
        i_comp = 2.0 * np.mean(v * np.cos(omega * t))
        q_comp = -2.0 * np.mean(v * np.sin(omega * t))
        amplitude = math.hypot(i_comp, q_comp)
        phase = math.atan2(q_comp, i_comp)
        return amplitude, phase

    def rms(self) -> float:
        """Root-mean-square of the trace."""
        return float(np.sqrt(np.mean(self.values ** 2)))

    def envelope_max(self) -> float:
        """Peak absolute value."""
        return float(np.max(np.abs(self.values))) if len(self.values) else 0.0

    def spectrum(self) -> Tuple[np.ndarray, np.ndarray]:
        """One-sided amplitude spectrum ``(frequencies, amplitudes)``.

        Requires uniform sampling (checked to 1 ppm).
        """
        if len(self.times) < 2:
            raise ValueError("trace too short for a spectrum")
        dt = np.diff(self.times)
        if np.max(np.abs(dt - dt[0])) > 1e-6 * dt[0]:
            raise ValueError("spectrum requires uniform sampling")
        n = len(self.values)
        spectrum = np.fft.rfft(self.values - np.mean(self.values))
        freqs = np.fft.rfftfreq(n, d=float(dt[0]))
        return freqs, 2.0 * np.abs(spectrum) / n


class Probe:
    """Averages one magnetisation component over a detection region.

    Parameters
    ----------
    name:
        Identifier ("O1", "O2", ...).
    region:
        2-D shape of the detection cell.
    component:
        Magnetisation component to record (0 = x, 1 = y, 2 = z).  For
        FVSW with static M along z the precession lives in (x, y); the
        in-plane x component is recorded by default, mirroring how the
        paper reads the dynamic magnetisation.
    """

    def __init__(self, name: str, region: Shape, component: int = 0):
        if component not in (0, 1, 2):
            raise ValueError("component must be 0, 1 or 2")
        self.name = name
        self.region = region
        self.component = component
        self._times: List[float] = []
        self._values: List[float] = []
        self._mask: Optional[np.ndarray] = None
        self._n_cells = 0

    def bind(self, mesh: Mesh, geometry_mask: np.ndarray = None) -> None:
        """Rasterise the probe region onto ``mesh`` (must precede record)."""
        mask = rasterize(mesh, self.region)
        if geometry_mask is not None:
            mask &= geometry_mask.astype(bool)
        if not mask.any():
            raise ValueError(f"probe {self.name!r} covers no cells")
        self._mask = mask
        self._n_cells = int(mask.sum())

    def record(self, t: float, m: np.ndarray) -> None:
        """Sample the region-averaged component of ``m`` at time ``t``."""
        if self._mask is None:
            raise RuntimeError(f"probe {self.name!r} not bound to a mesh")
        value = float(np.sum(m[self.component] * self._mask) / self._n_cells)
        self._times.append(t)
        self._values.append(value)

    def reset(self) -> None:
        """Discard recorded samples (keep the binding)."""
        self._times.clear()
        self._values.clear()

    @property
    def trace(self) -> TimeTrace:
        """All recorded samples as a :class:`TimeTrace`."""
        return TimeTrace(np.array(self._times), np.array(self._values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Probe({self.name!r}, samples={len(self._times)})"
