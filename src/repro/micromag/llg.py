"""Landau-Lifshitz-Gilbert right-hand side and time integrators.

The explicit (Landau-Lifshitz) form of eq. (1) of the paper is

``dm/dt = -gamma mu0 / (1 + alpha^2) [ m x H + alpha m x (m x H) ]``

with ``m = M / Ms`` the unit magnetisation and ``H`` the effective field
in A/m.  Spatially varying damping is supported (needed for absorbing
boundary ramps).  Integrators:

* :class:`RK4Integrator` -- fixed-step classical Runge-Kutta, the
  default for wave propagation runs where the step is set by the
  excitation frequency anyway;
* :class:`RK45Integrator` -- adaptive Dormand-Prince (same tableau as
  MuMax3's default solver) for relaxation / validation runs;
* :class:`HeunIntegrator` -- stochastic-Heun, the consistent choice when
  the thermal field is active (Stratonovich interpretation).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple

import numpy as np

from .mesh import normalize_field
from .. import obs
from ..constants import MU0
from ..resilience import faults
from ..resilience.guardrails import Watchdog

#: RHS signature: (t, m) -> dm/dt
RHSFunction = Callable[[float, np.ndarray], np.ndarray]

#: Heartbeat signature: (t_new, dt_taken) after each accepted step.
ProgressCallback = Callable[[float, float], None]


def _record_step(t0: Optional[float], rejected: int = 0,
                 cells: Optional[int] = None) -> None:
    """Update the ``llg.*`` metrics for one accepted integrator step.

    ``t0`` is the perf-counter stamp taken at step entry *only when the
    observer was attached* (None otherwise, making the disabled path a
    single check at the call sites).  ``cells`` feeds the
    ``llg.cell_updates_per_s`` throughput gauge.
    """
    if t0 is None:
        return
    elapsed = time.perf_counter() - t0
    obs.counter("llg.steps").inc()
    if rejected:
        obs.counter("llg.rk45.rejected").inc(rejected)
    if elapsed > 0:
        obs.gauge("llg.steps_per_s").set(1.0 / elapsed)
        if cells:
            obs.gauge("llg.cell_updates_per_s").set(cells / elapsed)


def _guard_step(watchdog: Optional[Watchdog], t: float, m: np.ndarray,
                mask: Optional[np.ndarray]) -> None:
    """Per-step resilience hook shared by the three integrators.

    Runs *before* renormalisation so the watchdog sees the raw |m|
    drift a blown-up step produces.  Costs two predicate checks per
    step when no fault plan is armed and no watchdog is attached.
    """
    if faults.active():
        spec = faults.trip("llg.step")
        if spec is not None and spec.kind == "nan":
            if mask is not None and np.asarray(mask).any():
                idx = tuple(np.argwhere(mask)[0])
                m[(0,) + idx] = np.nan
            else:
                m.flat[0] = np.nan
    if watchdog is not None:
        watchdog.observe(t, m=m, mask=mask)


def cross(a: np.ndarray, b: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Component-first cross product ``a x b`` for ``(3, ...)`` fields."""
    if out is None:
        out = np.empty_like(a)
    # Temporaries are needed if out aliases a or b.
    c0 = a[1] * b[2] - a[2] * b[1]
    c1 = a[2] * b[0] - a[0] * b[2]
    c2 = a[0] * b[1] - a[1] * b[0]
    out[0], out[1], out[2] = c0, c1, c2
    return out


def llg_rhs(m: np.ndarray, h_eff: np.ndarray, gamma: float,
            alpha: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Evaluate the LLG time derivative.

    Parameters
    ----------
    m:
        Unit magnetisation ``(3, nz, ny, nx)``.
    h_eff:
        Effective field [A/m], same shape.
    gamma:
        Gyromagnetic ratio [rad/(T s)].
    alpha:
        Scalar damping field ``(nz, ny, nx)`` (may be a 0-d array /
        float for uniform damping).
    out:
        Optional output buffer.

    Returns
    -------
    numpy.ndarray
        ``dm/dt`` [1/s].
    """
    alpha = np.asarray(alpha, dtype=float)
    precession = cross(m, h_eff)
    damping = cross(m, precession)
    prefactor = -gamma * MU0 / (1.0 + alpha ** 2)
    if out is None:
        out = np.empty_like(m)
    out[...] = prefactor * (precession + alpha * damping)
    return out


class RK4Integrator:
    """Classical fixed-step 4th-order Runge-Kutta with renormalisation.

    Renormalising ``|m| = 1`` after each step is the standard correction
    for the drift that any generic one-step method accumulates on the
    sphere; it preserves the 4th-order accuracy of the trajectory.
    """

    def __init__(self, rhs: RHSFunction, renormalize: bool = True,
                 mask: np.ndarray = None,
                 progress: Optional[ProgressCallback] = None,
                 watchdog: Optional[Watchdog] = None):
        self.rhs = rhs
        self.renormalize = renormalize
        self.mask = mask
        self.progress = progress
        self.watchdog = watchdog

    def step(self, t: float, m: np.ndarray, dt: float) -> np.ndarray:
        """Advance ``m`` by one step of size ``dt``; returns the new state."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        t0 = time.perf_counter() if obs.enabled() else None
        # RK-stage attribution (``llg.rk4.phase.k1_ms``...) only when
        # the observer is on; the disabled path stays stamp-free.
        timer = obs.PhaseTimer("llg.rk4") if t0 is not None else None
        s = timer.stamp() if timer is not None else 0
        k1 = self.rhs(t, m)
        if timer is not None:
            s = timer.lap("k1", s)
        k2 = self.rhs(t + dt / 2.0, m + (dt / 2.0) * k1)
        if timer is not None:
            s = timer.lap("k2", s)
        k3 = self.rhs(t + dt / 2.0, m + (dt / 2.0) * k2)
        if timer is not None:
            s = timer.lap("k3", s)
        k4 = self.rhs(t + dt, m + dt * k3)
        if timer is not None:
            s = timer.lap("k4", s)
        new = m + (dt / 6.0) * (k1 + 2.0 * k2 + 2.0 * k3 + k4)
        _guard_step(self.watchdog, t + dt, new, self.mask)
        if self.renormalize:
            normalize_field(new, self.mask)
        if timer is not None:
            timer.lap("combine", s)
            timer.flush()
        _record_step(t0, cells=new[0].size)
        if self.progress is not None:
            self.progress(t + dt, dt)
        return new


class HeunIntegrator:
    """Stochastic Heun (predictor-corrector) scheme.

    Converges to the Stratonovich solution of the stochastic LLG, which
    is the physically correct interpretation for Brown's thermal field.
    The driver refreshes the thermal realisation once per step so both
    RHS evaluations see the same noise, as the scheme requires.
    """

    def __init__(self, rhs: RHSFunction, renormalize: bool = True,
                 mask: np.ndarray = None,
                 progress: Optional[ProgressCallback] = None,
                 watchdog: Optional[Watchdog] = None):
        self.rhs = rhs
        self.renormalize = renormalize
        self.mask = mask
        self.progress = progress
        self.watchdog = watchdog

    def step(self, t: float, m: np.ndarray, dt: float) -> np.ndarray:
        """One Heun step of size ``dt``."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        t0 = time.perf_counter() if obs.enabled() else None
        timer = obs.PhaseTimer("llg.heun") if t0 is not None else None
        s = timer.stamp() if timer is not None else 0
        k1 = self.rhs(t, m)
        predictor = m + dt * k1
        if self.renormalize:
            normalize_field(predictor, self.mask)
        if timer is not None:
            s = timer.lap("predictor", s)
        k2 = self.rhs(t + dt, predictor)
        new = m + (dt / 2.0) * (k1 + k2)
        _guard_step(self.watchdog, t + dt, new, self.mask)
        if self.renormalize:
            normalize_field(new, self.mask)
        if timer is not None:
            timer.lap("corrector", s)
            timer.flush()
        _record_step(t0, cells=new[0].size)
        if self.progress is not None:
            self.progress(t + dt, dt)
        return new


# Dormand-Prince 5(4) Butcher tableau.
_DP_A = (
    (),
    (1 / 5,),
    (3 / 40, 9 / 40),
    (44 / 45, -56 / 15, 32 / 9),
    (19372 / 6561, -25360 / 2187, 64448 / 6561, -212 / 729),
    (9017 / 3168, -355 / 33, 46732 / 5247, 49 / 176, -5103 / 18656),
    (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84),
)
_DP_C = (0.0, 1 / 5, 3 / 10, 4 / 5, 8 / 9, 1.0, 1.0)
_DP_B5 = (35 / 384, 0.0, 500 / 1113, 125 / 192, -2187 / 6784, 11 / 84, 0.0)
_DP_B4 = (5179 / 57600, 0.0, 7571 / 16695, 393 / 640,
          -92097 / 339200, 187 / 2100, 1 / 40)


class RK45Integrator:
    """Adaptive Dormand-Prince 5(4) integrator (MuMax3's default family).

    Parameters
    ----------
    rhs:
        Time-derivative function.
    tolerance:
        Target max-norm error per step on the unit magnetisation.
    dt_min, dt_max:
        Hard bounds on the step size [s].
    """

    def __init__(self, rhs: RHSFunction, tolerance: float = 1e-5,
                 dt_min: float = 1e-17, dt_max: float = 1e-11,
                 renormalize: bool = True, mask: np.ndarray = None,
                 progress: Optional[ProgressCallback] = None,
                 watchdog: Optional[Watchdog] = None):
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if dt_min <= 0 or dt_max <= dt_min:
            raise ValueError("need 0 < dt_min < dt_max")
        self.rhs = rhs
        self.tolerance = tolerance
        self.dt_min = dt_min
        self.dt_max = dt_max
        self.renormalize = renormalize
        self.mask = mask
        self.progress = progress
        self.watchdog = watchdog
        self.last_dt: Optional[float] = None
        self.rejected_steps = 0

    def step(self, t: float, m: np.ndarray, dt: float) -> Tuple[np.ndarray, float, float]:
        """Attempt adaptive steps until one is accepted.

        Returns
        -------
        tuple
            ``(new_m, dt_taken, dt_next)``.
        """
        t0 = time.perf_counter() if obs.enabled() else None
        timer = obs.PhaseTimer("llg.rk45") if t0 is not None else None
        rejected_before = self.rejected_steps
        dt = float(np.clip(dt, self.dt_min, self.dt_max))
        while True:
            s = timer.stamp() if timer is not None else 0
            ks = []
            for i in range(7):
                mi = m.copy()
                for j, aij in enumerate(_DP_A[i]):
                    if aij != 0.0:
                        mi += dt * aij * ks[j]
                ks.append(self.rhs(t + _DP_C[i] * dt, mi))
            if timer is not None:
                s = timer.lap("stages", s)
            m5 = m.copy()
            m4 = m.copy()
            for bi, ki in zip(_DP_B5, ks):
                if bi != 0.0:
                    m5 += dt * bi * ki
            for bi, ki in zip(_DP_B4, ks):
                if bi != 0.0:
                    m4 += dt * bi * ki
            error = float(np.max(np.abs(m5 - m4)))
            if timer is not None:
                s = timer.lap("combine", s)
            if error <= self.tolerance or dt <= self.dt_min * 1.0000001:
                _guard_step(self.watchdog, t + dt, m5, self.mask)
                if self.renormalize:
                    normalize_field(m5, self.mask)
                # PI-free step-size update with safety factor 0.9.
                if error > 0:
                    factor = 0.9 * (self.tolerance / error) ** 0.2
                else:
                    factor = 2.0
                dt_next = float(np.clip(dt * min(max(factor, 0.2), 5.0),
                                        self.dt_min, self.dt_max))
                self.last_dt = dt
                if timer is not None:
                    timer.flush()
                _record_step(t0, self.rejected_steps - rejected_before,
                             cells=m5[0].size)
                if self.progress is not None:
                    self.progress(t + dt, dt)
                return m5, dt, dt_next
            self.rejected_steps += 1
            dt = max(dt * max(0.9 * (self.tolerance / error) ** 0.2, 0.2),
                     self.dt_min)
