"""Finite-difference mesh for the micromagnetic solver.

The solver mirrors the MuMax3 discretisation the paper used: a regular
grid of cuboid cells, magnetisation stored as a unit-vector field of
shape ``(3, nz, ny, nx)`` (component-first keeps the LLG kernels simple
vectorised NumPy).  The paper's films are 1 nm thick, so ``nz = 1`` in
every real workload, but the field terms are written for general ``nz``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class Mesh:
    """A regular finite-difference mesh.

    Attributes
    ----------
    cell_size:
        ``(dx, dy, dz)`` cell edge lengths [m].
    shape:
        ``(nx, ny, nz)`` number of cells along each axis.
    origin:
        Position of the *corner* of cell (0, 0, 0) [m].
    """

    cell_size: Tuple[float, float, float]
    shape: Tuple[int, int, int]
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if len(self.cell_size) != 3 or len(self.shape) != 3:
            raise ValueError("cell_size and shape must be 3-tuples")
        if any(c <= 0 for c in self.cell_size):
            raise ValueError(f"cell sizes must be positive, got {self.cell_size}")
        if any(int(n) != n or n < 1 for n in self.shape):
            raise ValueError(f"shape must be positive integers, got {self.shape}")

    # -- basic metrics ----------------------------------------------------------

    @property
    def nx(self) -> int:
        return self.shape[0]

    @property
    def ny(self) -> int:
        return self.shape[1]

    @property
    def nz(self) -> int:
        return self.shape[2]

    @property
    def dx(self) -> float:
        return self.cell_size[0]

    @property
    def dy(self) -> float:
        return self.cell_size[1]

    @property
    def dz(self) -> float:
        return self.cell_size[2]

    @property
    def n_cells(self) -> int:
        """Total number of cells."""
        return self.nx * self.ny * self.nz

    @property
    def cell_volume(self) -> float:
        """Volume of one cell [m^3]."""
        return self.dx * self.dy * self.dz

    @property
    def extent(self) -> Tuple[float, float, float]:
        """Physical size ``(Lx, Ly, Lz)`` of the mesh [m]."""
        return (self.nx * self.dx, self.ny * self.dy, self.nz * self.dz)

    @property
    def field_shape(self) -> Tuple[int, int, int, int]:
        """Shape of a vector field on this mesh: ``(3, nz, ny, nx)``."""
        return (3, self.nz, self.ny, self.nx)

    @property
    def scalar_shape(self) -> Tuple[int, int, int]:
        """Shape of a scalar field on this mesh: ``(nz, ny, nx)``."""
        return (self.nz, self.ny, self.nx)

    # -- coordinates -------------------------------------------------------------

    def axis_coordinates(self, axis: int) -> np.ndarray:
        """Cell-centre coordinates along ``axis`` (0 = x, 1 = y, 2 = z) [m]."""
        if axis not in (0, 1, 2):
            raise ValueError("axis must be 0, 1 or 2")
        n = self.shape[axis]
        d = self.cell_size[axis]
        return self.origin[axis] + (np.arange(n) + 0.5) * d

    def coordinate_grids(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Broadcastable (z, y, x) cell-centre coordinate arrays.

        Returned with shapes ``(nz, 1, 1)``, ``(1, ny, 1)``, ``(1, 1, nx)``
        so elementwise expressions build full grids lazily.
        """
        z = self.axis_coordinates(2).reshape(self.nz, 1, 1)
        y = self.axis_coordinates(1).reshape(1, self.ny, 1)
        x = self.axis_coordinates(0).reshape(1, 1, self.nx)
        return z, y, x

    def index_of(self, point: Tuple[float, float, float]) -> Tuple[int, int, int]:
        """Cell index ``(ix, iy, iz)`` containing the physical ``point`` [m].

        Raises
        ------
        ValueError
            If the point lies outside the mesh.
        """
        idx = []
        for axis in range(3):
            rel = (point[axis] - self.origin[axis]) / self.cell_size[axis]
            i = int(np.floor(rel))
            if not 0 <= i < self.shape[axis]:
                raise ValueError(
                    f"point {point} outside mesh along axis {axis} "
                    f"(index {i}, valid 0..{self.shape[axis] - 1})")
            idx.append(i)
        return idx[0], idx[1], idx[2]

    # -- field constructors --------------------------------------------------------

    def zeros_vector(self) -> np.ndarray:
        """Fresh all-zero vector field ``(3, nz, ny, nx)``."""
        return np.zeros(self.field_shape)

    def uniform_vector(self, direction: Tuple[float, float, float]) -> np.ndarray:
        """Unit-normalised uniform vector field along ``direction``."""
        vec = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(vec)
        if norm == 0:
            raise ValueError("direction must be non-zero")
        vec = vec / norm
        field = self.zeros_vector()
        for c in range(3):
            field[c] = vec[c]
        return field

    def zeros_scalar(self) -> np.ndarray:
        """Fresh all-zero scalar field ``(nz, ny, nx)``."""
        return np.zeros(self.scalar_shape)

    def iter_cells(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over all ``(iz, iy, ix)`` indices (tests / small meshes)."""
        for iz in range(self.nz):
            for iy in range(self.ny):
                for ix in range(self.nx):
                    yield iz, iy, ix


def mesh_for_region(width: float, height: float, thickness: float,
                    cell: float, cell_z: float = None,
                    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)) -> Mesh:
    """Convenience constructor: mesh covering ``width x height x thickness``.

    Cell counts are rounded up so the region is fully covered.

    Parameters
    ----------
    width, height, thickness:
        Physical size in x, y, z [m].
    cell:
        In-plane cell edge [m].
    cell_z:
        Out-of-plane cell edge [m]; defaults to ``thickness`` (single layer).
    """
    dz = thickness if cell_z is None else cell_z
    nx = max(1, int(np.ceil(width / cell)))
    ny = max(1, int(np.ceil(height / cell)))
    nz = max(1, int(np.ceil(thickness / dz)))
    return Mesh(cell_size=(cell, cell, dz), shape=(nx, ny, nz), origin=origin)


def normalize_field(m: np.ndarray, mask: np.ndarray = None,
                    epsilon: float = 1e-30) -> np.ndarray:
    """Renormalise a vector field to unit length in place and return it.

    Cells where the norm is ~0 (or outside ``mask``) are left at zero so
    vacuum regions stay empty.
    """
    norm = np.sqrt(np.sum(m * m, axis=0))
    inside = norm > epsilon
    if mask is not None:
        inside &= mask.astype(bool)
    scale = np.zeros_like(norm)
    scale[inside] = 1.0 / norm[inside]
    m *= scale[None, :, :, :]
    return m
