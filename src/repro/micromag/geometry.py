"""Geometry masks: carve waveguide shapes out of a finite-difference mesh.

MuMax3 expresses device geometry through shape functions; we do the same
with boolean cell masks built from a tiny constructive-solid-geometry
(CSG) layer.  The triangle gates of the paper are unions of rotated
rectangular strips (waveguides) whose endpoints come from
:mod:`repro.core.layout`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from .mesh import Mesh

#: A shape is a predicate over physical (x, y) coordinates -> bool array.
Shape = Callable[[np.ndarray, np.ndarray], np.ndarray]

Point = Tuple[float, float]


# ---------------------------------------------------------------------------
# Primitive shapes (2-D: the films are a single cell thick)
# ---------------------------------------------------------------------------

def rectangle(x0: float, y0: float, x1: float, y1: float) -> Shape:
    """Axis-aligned rectangle with corners ``(x0, y0)`` and ``(x1, y1)``."""
    xa, xb = min(x0, x1), max(x0, x1)
    ya, yb = min(y0, y1), max(y0, y1)

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (x >= xa) & (x <= xb) & (y >= ya) & (y <= yb)

    return predicate


def disk(cx: float, cy: float, radius: float) -> Shape:
    """Filled circle of ``radius`` centred at ``(cx, cy)``."""
    if radius <= 0:
        raise ValueError("radius must be positive")

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return (x - cx) ** 2 + (y - cy) ** 2 <= radius ** 2

    return predicate


def strip(start: Point, end: Point, width: float,
          extend_ends: bool = True) -> Shape:
    """Rectangular waveguide of ``width`` from ``start`` to ``end``.

    This is the workhorse of the gate geometry: an arbitrarily rotated
    strip.  With ``extend_ends`` the strip is lengthened by half a width
    at both ends so that strips meeting at an angle overlap cleanly at
    junctions (no wedge-shaped gaps at the triangle corners).
    """
    if width <= 0:
        raise ValueError("strip width must be positive")
    sx, sy = start
    ex, ey = end
    length = math.hypot(ex - sx, ey - sy)
    if length == 0:
        raise ValueError("strip endpoints coincide")
    ux, uy = (ex - sx) / length, (ey - sy) / length
    margin = width / 2.0 if extend_ends else 0.0

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        rx = x - sx
        ry = y - sy
        along = rx * ux + ry * uy
        across = -rx * uy + ry * ux
        return ((along >= -margin) & (along <= length + margin)
                & (np.abs(across) <= width / 2.0))

    return predicate


def polygon(vertices: Sequence[Point]) -> Shape:
    """Filled simple polygon via the even-odd (crossing number) rule."""
    pts = [(float(px), float(py)) for px, py in vertices]
    if len(pts) < 3:
        raise ValueError("polygon needs at least 3 vertices")

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        inside = np.zeros(np.broadcast(x, y).shape, dtype=bool)
        n = len(pts)
        for i in range(n):
            x0, y0 = pts[i]
            x1, y1 = pts[(i + 1) % n]
            crosses = ((y0 > y) != (y1 > y))
            with np.errstate(divide="ignore", invalid="ignore"):
                x_at = x0 + (y - y0) * (x1 - x0) / (y1 - y0 + 1e-300)
            inside ^= crosses & (x < x_at)
        return inside

    return predicate


# ---------------------------------------------------------------------------
# CSG combinators
# ---------------------------------------------------------------------------

def union(*shapes: Shape) -> Shape:
    """Logical OR of shapes."""
    if not shapes:
        raise ValueError("union of zero shapes")

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = shapes[0](x, y)
        for shape in shapes[1:]:
            result = result | shape(x, y)
        return result

    return predicate


def intersection(*shapes: Shape) -> Shape:
    """Logical AND of shapes."""
    if not shapes:
        raise ValueError("intersection of zero shapes")

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = shapes[0](x, y)
        for shape in shapes[1:]:
            result = result & shape(x, y)
        return result

    return predicate


def difference(base: Shape, *cut: Shape) -> Shape:
    """``base`` minus the union of ``cut`` shapes."""

    def predicate(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        result = base(x, y)
        for shape in cut:
            result = result & ~shape(x, y)
        return result

    return predicate


# ---------------------------------------------------------------------------
# Rasterisation onto a mesh
# ---------------------------------------------------------------------------

def rasterize(mesh: Mesh, shape: Shape) -> np.ndarray:
    """Boolean mask ``(nz, ny, nx)``: cell centres inside the 2-D shape."""
    _, y, x = mesh.coordinate_grids()
    mask2d = shape(x, y)  # broadcasts to (1, ny, nx)
    return np.broadcast_to(mask2d, mesh.scalar_shape).copy()


def roughen_edges(mask: np.ndarray, probability: float,
                  rng: np.random.Generator) -> np.ndarray:
    """Randomly remove boundary cells -- a simple edge-roughness model.

    Used by the variability ablation (Section IV-D discusses edge
    roughness per ref [36]).  Each cell of the mask that touches vacuum
    is deleted with the given probability.

    Parameters
    ----------
    mask:
        Input boolean mask ``(nz, ny, nx)``; not modified.
    probability:
        Removal probability for each edge cell, in [0, 1].
    rng:
        NumPy random generator (determinism is the caller's business).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    result = mask.copy()
    interior = mask.copy()
    # A cell is edge if any 4-neighbour (in plane) is outside.
    for axis, shift in ((1, 1), (1, -1), (2, 1), (2, -1)):
        interior &= np.roll(mask, shift, axis=axis)
    edge = mask & ~interior
    remove = edge & (rng.random(mask.shape) < probability)
    result[remove] = False
    return result


def edge_damping_profile(mesh: Mesh, mask: np.ndarray, base_alpha: float,
                         ramp_width: float, max_alpha: float = 0.5,
                         axes: Tuple[int, ...] = (0,)) -> np.ndarray:
    """Spatially varying Gilbert damping with absorbing boundary ramps.

    Reflections from the ends of finite waveguides would corrupt the
    interference pattern, so -- like MuMax3 scripts do -- we ramp the
    damping up quadratically within ``ramp_width`` of the mesh boundary
    along the chosen axes (0 = x, 1 = y).

    Returns
    -------
    numpy.ndarray
        Scalar damping field ``(nz, ny, nx)``; ``base_alpha`` in the
        bulk, rising to ``max_alpha`` at the boundary, zero outside the
        mask.
    """
    if ramp_width < 0:
        raise ValueError("ramp width must be non-negative")
    if max_alpha < base_alpha:
        raise ValueError("max_alpha must be >= base_alpha")
    alpha = np.full(mesh.scalar_shape, base_alpha)
    if ramp_width > 0:
        z, y, x = mesh.coordinate_grids()
        lx, ly, _ = mesh.extent
        for axis in axes:
            if axis == 0:
                coord, size = x, lx
            elif axis == 1:
                coord, size = y, ly
            else:
                raise ValueError("absorbing ramps supported along x and y only")
            dist = np.minimum(coord - mesh.origin[axis],
                              mesh.origin[axis] + size - coord)
            t = np.clip(1.0 - dist / ramp_width, 0.0, 1.0)
            ramp = base_alpha + (max_alpha - base_alpha) * t ** 2
            alpha = np.maximum(alpha, np.broadcast_to(ramp, mesh.scalar_shape))
    alpha = np.where(mask, alpha, 0.0)
    return alpha
