"""Excitation sources: antennas / magnetoelectric cells injecting spin waves.

A source occupies a small region of the mesh (the "excitation cell" of
the paper's Figure 2) and applies a time-dependent in-plane field that
tips the magnetisation and launches a propagating wave.  Logic values
set the *phase* of the drive: phase 0 encodes logic 0, phase pi encodes
logic 1 (Section III-A step (i)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

import numpy as np

from .geometry import Shape, rasterize
from .mesh import Mesh


@dataclass
class Envelope:
    """Temporal envelope of a drive signal.

    ``start``/``duration`` delimit the pulse (the paper assumes 100 ps
    excitation pulses); ``rise`` applies a smooth cosine ramp at both
    edges to limit spectral leakage.  ``duration = inf`` gives CW drive.
    """

    start: float = 0.0
    duration: float = math.inf
    rise: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("envelope duration must be positive")
        if self.rise < 0:
            raise ValueError("rise time must be non-negative")
        if math.isfinite(self.duration) and 2.0 * self.rise > self.duration:
            raise ValueError("rise time exceeds half the pulse duration")

    def __call__(self, t: float) -> float:
        """Envelope value in [0, 1] at time ``t`` [s]."""
        rel = t - self.start
        if rel < 0.0:
            return 0.0
        if math.isfinite(self.duration) and rel > self.duration:
            return 0.0
        if self.rise > 0.0:
            if rel < self.rise:
                return 0.5 * (1.0 - math.cos(math.pi * rel / self.rise))
            if math.isfinite(self.duration) and rel > self.duration - self.rise:
                tail = self.duration - rel
                return 0.5 * (1.0 - math.cos(math.pi * tail / self.rise))
        return 1.0


class ExcitationSource:
    """A localized sinusoidal field source (microstrip antenna / ME cell).

    Parameters
    ----------
    region:
        2-D shape predicate delimiting the excitation cell.
    amplitude:
        Drive field amplitude [A/m].
    frequency:
        Drive frequency [Hz].
    phase:
        Drive phase [rad]; use :meth:`for_logic` to encode bits.
    direction:
        Unit vector of the drive field.  For FVSW (static M along z) any
        in-plane direction couples; x is the default.
    envelope:
        Temporal envelope; CW by default.
    """

    def __init__(self, region: Shape, amplitude: float, frequency: float,
                 phase: float = 0.0,
                 direction: Tuple[float, float, float] = (1.0, 0.0, 0.0),
                 envelope: Optional[Envelope] = None):
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if frequency <= 0:
            raise ValueError("frequency must be positive")
        d = np.asarray(direction, dtype=float)
        norm = np.linalg.norm(d)
        if norm == 0:
            raise ValueError("drive direction must be non-zero")
        self.region = region
        self.amplitude = amplitude
        self.frequency = frequency
        self.phase = phase
        self.direction = d / norm
        self.envelope = envelope if envelope is not None else Envelope()
        self._mask_cache: Optional[Tuple[int, np.ndarray]] = None

    @classmethod
    def for_logic(cls, region: Shape, value: int, amplitude: float,
                  frequency: float, envelope: Optional[Envelope] = None,
                  direction: Tuple[float, float, float] = (1.0, 0.0, 0.0)
                  ) -> "ExcitationSource":
        """Source encoding a logic value in the drive phase (0 -> 0, 1 -> pi).

        All gate inputs use the *same amplitude and frequency* -- the
        equal-energy-excitation property the triangle design needs
        (Section III-A).
        """
        if value not in (0, 1):
            raise ValueError(f"logic value must be 0 or 1, got {value!r}")
        return cls(region=region, amplitude=amplitude, frequency=frequency,
                   phase=math.pi if value else 0.0, envelope=envelope,
                   direction=direction)

    def _mask(self, mesh: Mesh) -> np.ndarray:
        """Rasterised source region (cached per mesh identity)."""
        key = id(mesh)
        if self._mask_cache is None or self._mask_cache[0] != key:
            self._mask_cache = (key, rasterize(mesh, self.region))
        return self._mask_cache[1]

    def waveform(self, t: float) -> float:
        """Scalar drive value at time ``t`` (before spatial masking)."""
        return (self.amplitude * self.envelope(t)
                * math.cos(2.0 * math.pi * self.frequency * t + self.phase))

    def field(self, mesh: Mesh, t: float) -> np.ndarray:
        """Field contribution ``(3, nz, ny, nx)`` [A/m] at time ``t``."""
        mask = self._mask(mesh)
        value = self.waveform(t)
        out = np.zeros(mesh.field_shape)
        if value != 0.0:
            for c in range(3):
                if self.direction[c] != 0.0:
                    out[c] = value * self.direction[c] * mask
        return out
