"""Full micromagnetic (LLG) simulation of scaled triangle gates.

The paper validates its gates with MuMax3 at lambda = 55 nm and
micrometre arm lengths; those runs need a GPU.  This module runs the
*same experiment* on our CPU solver at a reduced scale: the triangle
geometry is re-dimensioned to a handful of wavelengths (the
interference logic only depends on path lengths in units of lambda, so
the gate function is scale-invariant), rasterised through the shared
fabrication bridge, excited with phase-encoded CW transducers, and the
outputs are lock-in demodulated -- magnetisation dynamics end-to-end.

This is the ground-truth tier for the DESIGN.md substitution argument:
``examples/llg_gate.py`` and ``benchmarks/bench_llg_gate.py`` call it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.fabric import FabricatedGate, fabricate
from ..core.layout import GateDimensions, maj3_layout, segment_length, xor_layout
from ..physics.dispersion import DispersionRelation, FilmStack
from ..physics.materials import FECOB, Material
from .excitation import Envelope, ExcitationSource
from .geometry import disk
from .mesh import Mesh
from .probes import Probe
from .sim import Simulation


@dataclass(frozen=True)
class LlgGateCase:
    """Demodulated outputs of one LLG gate run."""

    bits: Tuple[int, ...]
    amplitudes: Dict[str, float]   # O1/O2 lock-in amplitude
    phases: Dict[str, float]       # O1/O2 lock-in phase [rad]


@dataclass
class LlgGateExperiment:
    """A scaled gate ready for LLG runs.

    Use :func:`scaled_xor_experiment` / :func:`scaled_maj3_experiment`
    to construct; then :meth:`run_case` per input pattern.
    """

    material: Material
    frequency: float
    wavelength: float
    fabricated: FabricatedGate
    drive_amplitude: float = 8e3
    rise_time: float = 0.1e-9
    dt: float = 2e-14
    settle_time: Optional[float] = None
    measure_periods: int = 6
    temperature: float = 0.0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        if self.settle_time is None:
            # Longest possible flight (canvas diagonal) at the group
            # velocity, plus the drive ramp, plus safety.
            film = FilmStack(material=self.material, thickness=1e-9)
            dispersion = DispersionRelation(film)
            k = 2.0 * math.pi / self.wavelength
            v_g = float(dispersion.group_velocity(k))
            lx, ly, _ = self.fabricated.mesh.extent
            flight = math.hypot(lx, ly) / v_g
            self.settle_time = 2.5 * flight + self.rise_time

    @property
    def input_names(self) -> List[str]:
        return self.fabricated.layout.input_names

    @property
    def output_names(self) -> List[str]:
        return self.fabricated.layout.output_names

    def _build_simulation(self, bits: Sequence[int]) -> Tuple[
            Simulation, Dict[str, Probe]]:
        fab = self.fabricated
        ny, nx = fab.mask.shape
        mesh = Mesh(cell_size=(fab.cell_size, fab.cell_size, 1e-9),
                    shape=(nx, ny, 1))
        sim = Simulation(mesh, self.material, mask=fab.mask[None, ...],
                         demag="thin_film",
                         absorber_width=1.2 * self.wavelength,
                         temperature=self.temperature, rng=self.rng)
        sim.initialize((0.0, 0.0, 1.0))
        guide_radius = 0.5 * 0.45 * self.wavelength
        for name, bit in zip(self.input_names, bits):
            x, y = fab.layout.nodes[name]
            sim.add_source(ExcitationSource.for_logic(
                disk(x, y, guide_radius), bit,
                amplitude=self.drive_amplitude,
                frequency=self.frequency,
                envelope=Envelope(start=0.0, rise=self.rise_time)))
        probes = {}
        for name in self.output_names:
            x, y = fab.layout.nodes[name]
            probe = Probe(name, disk(x, y, 1.2 * guide_radius))
            sim.add_probe(probe)
            probes[name] = probe
        return sim, probes

    def run_case(self, bits: Sequence[int],
                 sample_every: int = 4,
                 watchdog=None, checkpoint=None) -> LlgGateCase:
        """Simulate one input pattern to steady state and demodulate.

        ``watchdog`` / ``checkpoint`` are handed straight to
        :meth:`Simulation.run` (see :mod:`repro.resilience`).
        """
        bits = tuple(int(b) for b in bits)
        if len(bits) != len(self.input_names):
            raise ValueError(f"expected {len(self.input_names)} bits")
        sim, probes = self._build_simulation(bits)
        measure_time = self.measure_periods / self.frequency
        sim.run(duration=self.settle_time + measure_time, dt=self.dt,
                sample_every=sample_every, watchdog=watchdog,
                checkpoint=checkpoint)
        amplitudes = {}
        phases = {}
        for name, probe in probes.items():
            trace = probe.trace.window(self.settle_time)
            amplitude, phase = trace.demodulate(self.frequency)
            amplitudes[name] = amplitude
            phases[name] = phase
        return LlgGateCase(bits=bits, amplitudes=amplitudes, phases=phases)

    def run_cases(self, patterns: Sequence[Sequence[int]]
                  ) -> List[LlgGateCase]:
        """Run several patterns (no caching -- each is a fresh solve)."""
        return [self.run_case(bits) for bits in patterns]


def _scaled_wavelength(material: Material,
                       frequency: float) -> float:
    film = FilmStack(material=material, thickness=1e-9)
    return DispersionRelation(film).wavelength(frequency)


def scaled_xor_experiment(material: Material = FECOB,
                          frequency: float = 28e9,
                          n_d1: int = 2,
                          cells_per_wavelength: int = 10
                          ) -> LlgGateExperiment:
    """Triangle XOR scaled to ``n_d1`` wavelength arms at ``frequency``.

    28 GHz on the paper's film gives lambda ~ 40 nm; with 2-wavelength
    arms the canvas is ~70 x 70 cells and one input pattern integrates
    in about a minute on a laptop.
    """
    lam = _scaled_wavelength(material, frequency)
    dims = GateDimensions(
        wavelength=lam, width=0.9 * lam,
        d1=segment_length(n_d1, lam),
        d2_xor=0.5 * lam,
        stem=segment_length(1, lam))
    fab = fabricate(xor_layout(dims),
                    cell_size=lam / cells_per_wavelength,
                    margin=1.5 * lam)
    return LlgGateExperiment(material=material, frequency=frequency,
                             wavelength=lam, fabricated=fab)


def scaled_maj3_experiment(material: Material = FECOB,
                           frequency: float = 28e9,
                           n_d1: int = 2,
                           cells_per_wavelength: int = 10
                           ) -> LlgGateExperiment:
    """Triangle MAJ3 scaled to small-integer wavelength multiples."""
    lam = _scaled_wavelength(material, frequency)
    dims = GateDimensions(
        wavelength=lam, width=0.9 * lam,
        d1=segment_length(n_d1, lam),
        d2=segment_length(2, lam),
        d3=segment_length(1, lam),
        d4=segment_length(1, lam),
        stem=segment_length(1, lam))
    fab = fabricate(maj3_layout(dims),
                    cell_size=lam / cells_per_wavelength,
                    margin=1.5 * lam)
    return LlgGateExperiment(material=material, frequency=frequency,
                             wavelength=lam, fabricated=fab)


def xor_contrast(cases: Sequence[LlgGateCase]) -> float:
    """Min unanimous / max antiphase amplitude ratio (> 2 => threshold
    0.5 decodes XOR)."""
    unanimous = [c for c in cases if len(set(c.bits)) == 1]
    mixed = [c for c in cases if len(set(c.bits)) > 1]
    if not unanimous or not mixed:
        raise ValueError("need both unanimous and mixed cases")
    lo = min(min(c.amplitudes.values()) for c in unanimous)
    hi = max(max(c.amplitudes.values()) for c in mixed)
    return lo / max(hi, 1e-30)
