"""From-scratch finite-difference micromagnetics (the MuMax3 substitute).

Solves the Landau-Lifshitz-Gilbert equation (eq. (1) of the paper) on a
regular mesh with exchange, demagnetisation (Newell tensor / FFT or
thin-film local), uniaxial anisotropy, Zeeman + local excitation fields
and an optional stochastic thermal term.
"""

from .mesh import Mesh, mesh_for_region, normalize_field
from .geometry import (
    difference,
    disk,
    edge_damping_profile,
    intersection,
    polygon,
    rasterize,
    rectangle,
    roughen_edges,
    strip,
    union,
)
from .fields import (
    DemagField,
    ExchangeField,
    ThermalField,
    ThinFilmDemagField,
    UniaxialAnisotropyField,
    ZeemanField,
    demag_tensor,
    rng_from_key,
    seed_from_key,
)
from .llg import HeunIntegrator, RK4Integrator, RK45Integrator, cross, llg_rhs
from .excitation import Envelope, ExcitationSource
from .probes import Probe, TimeTrace
from .sim import RunResult, Simulation
from .analysis import (
    DispersionMap,
    centerline_signal,
    dominant_frequency,
    precession_amplitude_map,
    ringdown_spectrum,
    space_time_fft,
)
from .minimize import MinimizeResult, minimize
from .experiments import (
    DispersionExperiment,
    GateSweep,
    SincSource,
    extract_dispersion,
    run_gate_case,
    sweep_gate_truth_table,
)

__all__ = [
    "Mesh",
    "mesh_for_region",
    "normalize_field",
    "difference",
    "disk",
    "edge_damping_profile",
    "intersection",
    "polygon",
    "rasterize",
    "rectangle",
    "roughen_edges",
    "strip",
    "union",
    "DemagField",
    "ExchangeField",
    "ThermalField",
    "ThinFilmDemagField",
    "UniaxialAnisotropyField",
    "ZeemanField",
    "demag_tensor",
    "HeunIntegrator",
    "RK4Integrator",
    "RK45Integrator",
    "cross",
    "llg_rhs",
    "Envelope",
    "ExcitationSource",
    "Probe",
    "TimeTrace",
    "RunResult",
    "Simulation",
    "DispersionMap",
    "centerline_signal",
    "dominant_frequency",
    "precession_amplitude_map",
    "ringdown_spectrum",
    "space_time_fft",
    "MinimizeResult",
    "minimize",
    "GateSweep",
    "run_gate_case",
    "sweep_gate_truth_table",
    "seed_from_key",
    "rng_from_key",
    "DispersionExperiment",
    "SincSource",
    "extract_dispersion",
]
