"""Prefork multi-worker serving: N processes, one port, ``SO_REUSEPORT``.

One asyncio process saturates one core; heavy traffic wants one per
core.  ``python -m repro serve --prefork N`` forks N children that
each run a full :class:`~repro.serve.app.GateService` bound to the
*same* host:port with ``SO_REUSEPORT``, so the kernel load-balances
accepted connections across the processes -- no proxy, no master
socket handoff, no shared accept lock.

What makes N independent services coherent:

* the :class:`~repro.runtime.DiskCache` is shared through the
  filesystem, and the fcntl store lock (PR 9) makes concurrent
  materialisations of one key safe, so the children behave as one
  cache tier;
* with ``--backend tcp://...`` the children also share one cluster
  coordinator, whose single-flight brokering dedupes identical solver
  jobs *across* the children -- in-process coalescing only ever saw
  one child's requests;
* each child owns its own metrics registry; scrape ``/metrics``
  per-process or aggregate upstream (standard prefork practice).

The parent is the shared
:class:`~repro.resilience.supervisor.ProcessSupervisor` (the same one
behind ``cluster supervise``): it forwards SIGTERM/SIGINT to the
children (each drains gracefully exactly like a single-process serve)
and reaps them; a child that dies *unrequested* is logged and
restarted with backoff, up to ``max_restarts`` per child, so one
crashed worker does not shrink capacity forever.

``SO_REUSEPORT`` and ``os.fork`` are POSIX; on platforms without them
this module raises :class:`~repro.errors.ClusterConfigError` with a
clear message instead of an attribute error.
"""

from __future__ import annotations

import os
import signal
import socket
from dataclasses import replace
from typing import Optional

from .. import obs
from ..errors import ClusterConfigError
from ..resilience.supervisor import ProcessSupervisor
from .app import GateService, ServeConfig

_LOG = obs.get_logger("serve.prefork")


def _check_platform(config: ServeConfig) -> None:
    if not hasattr(os, "fork"):
        raise ClusterConfigError(
            "--prefork needs os.fork (POSIX); run a single process or "
            "start N serve processes behind a proxy instead")
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ClusterConfigError(
            "--prefork needs SO_REUSEPORT, which this platform lacks")
    if config.port == 0:
        raise ClusterConfigError(
            "--prefork needs a fixed --port: with port 0 every child "
            "would bind a different ephemeral port")


def _child(config: ServeConfig) -> "int":
    """Run one serve child; never returns (``os._exit``)."""
    # A fresh default signal disposition: the child's own asyncio
    # loop installs its graceful-drain handlers in serve().
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    code = 1
    try:
        code = GateService(config).run()
    except BaseException as exc:
        _LOG.error("serve child %d crashed: %s", os.getpid(), exc)
    finally:
        os._exit(code)
    return code  # unreachable; keeps type checkers honest


def run_prefork(config: ServeConfig, processes: Optional[int] = None,
                max_restarts: int = 3) -> int:
    """Fork ``processes`` serve children on one SO_REUSEPORT port.

    Blocks until every child has exited (after SIGTERM/SIGINT, which
    is forwarded to the whole brood).  Returns 0 when all children
    exited cleanly.
    """
    n = processes if processes is not None else config.prefork
    n = max(1, int(n or 1))
    _check_platform(config)
    child_config = replace(config, prefork=0, reuse_port=True)
    _LOG.info("prefork: %d children on %s:%d",
              n, config.host, config.port)
    return ProcessSupervisor(
        lambda slot: _child(child_config),
        processes=n, max_restarts=max_restarts,
        name="serve.prefork",
        restart_counter="serve.prefork_restarts").run()
