"""Prefork multi-worker serving: N processes, one port, ``SO_REUSEPORT``.

One asyncio process saturates one core; heavy traffic wants one per
core.  ``python -m repro serve --prefork N`` forks N children that
each run a full :class:`~repro.serve.app.GateService` bound to the
*same* host:port with ``SO_REUSEPORT``, so the kernel load-balances
accepted connections across the processes -- no proxy, no master
socket handoff, no shared accept lock.

What makes N independent services coherent:

* the :class:`~repro.runtime.DiskCache` is shared through the
  filesystem, and the fcntl store lock (PR 9) makes concurrent
  materialisations of one key safe, so the children behave as one
  cache tier;
* with ``--backend tcp://...`` the children also share one cluster
  coordinator, whose single-flight brokering dedupes identical solver
  jobs *across* the children -- in-process coalescing only ever saw
  one child's requests;
* each child owns its own metrics registry; scrape ``/metrics``
  per-process or aggregate upstream (standard prefork practice).

The parent is a tiny supervisor: it forwards SIGTERM/SIGINT to the
children (each drains gracefully exactly like a single-process serve)
and reaps them; a child that dies *unrequested* is logged and
restarted, up to ``max_restarts`` per child, so one crashed worker
does not shrink capacity forever.

``SO_REUSEPORT`` and ``os.fork`` are POSIX; on platforms without them
this module raises :class:`~repro.errors.ClusterConfigError` with a
clear message instead of an attribute error.
"""

from __future__ import annotations

import errno
import os
import signal
import socket
import time
from dataclasses import replace
from typing import Dict, Optional

from .. import obs
from ..errors import ClusterConfigError
from .app import GateService, ServeConfig

_LOG = obs.get_logger("serve.prefork")


def _check_platform(config: ServeConfig) -> None:
    if not hasattr(os, "fork"):
        raise ClusterConfigError(
            "--prefork needs os.fork (POSIX); run a single process or "
            "start N serve processes behind a proxy instead")
    if not hasattr(socket, "SO_REUSEPORT"):
        raise ClusterConfigError(
            "--prefork needs SO_REUSEPORT, which this platform lacks")
    if config.port == 0:
        raise ClusterConfigError(
            "--prefork needs a fixed --port: with port 0 every child "
            "would bind a different ephemeral port")


def _child(config: ServeConfig) -> "int":
    """Run one serve child; never returns (``os._exit``)."""
    # A fresh default signal disposition: the child's own asyncio
    # loop installs its graceful-drain handlers in serve().
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    code = 1
    try:
        code = GateService(config).run()
    except BaseException as exc:
        _LOG.error("serve child %d crashed: %s", os.getpid(), exc)
    finally:
        os._exit(code)
    return code  # unreachable; keeps type checkers honest


def run_prefork(config: ServeConfig, processes: Optional[int] = None,
                max_restarts: int = 3) -> int:
    """Fork ``processes`` serve children on one SO_REUSEPORT port.

    Blocks until every child has exited (after SIGTERM/SIGINT, which
    is forwarded to the whole brood).  Returns 0 when all children
    exited cleanly.
    """
    n = processes if processes is not None else config.prefork
    n = max(1, int(n or 1))
    _check_platform(config)
    child_config = replace(config, prefork=0, reuse_port=True)

    children: Dict[int, int] = {}          # pid -> restarts consumed
    shutting_down = {"flag": False}

    def _spawn(restarts: int) -> None:
        pid = os.fork()
        if pid == 0:
            _child(child_config)
        children[pid] = restarts
        _LOG.info("prefork child %d started (%d/%d)", pid,
                  len(children), n)

    def _forward(signum, _frame) -> None:
        shutting_down["flag"] = True
        for pid in list(children):
            try:
                os.kill(pid, signum)
            except OSError:
                pass

    for _ in range(n):
        _spawn(0)
    previous = {signum: signal.signal(signum, _forward)
                for signum in (signal.SIGTERM, signal.SIGINT)}
    _LOG.info("prefork supervisor %d: %d children on %s:%d",
              os.getpid(), n, config.host, config.port)

    worst = 0
    try:
        while children:
            try:
                pid, status = os.wait()
            except OSError as exc:
                if exc.errno == errno.EINTR:
                    continue  # a forwarded signal interrupted wait()
                if exc.errno == errno.ECHILD:
                    break
                raise
            except KeyboardInterrupt:
                _forward(signal.SIGINT, None)
                continue
            restarts = children.pop(pid, 0)
            code = (os.waitstatus_to_exitcode(status)
                    if hasattr(os, "waitstatus_to_exitcode")
                    else os.WEXITSTATUS(status))
            if shutting_down["flag"]:
                worst = max(worst, abs(int(code)))
                continue
            # Unrequested death: keep capacity up (bounded).
            _LOG.warning("prefork child %d died with %s; restarting",
                         pid, code)
            if obs.enabled():
                obs.counter("serve.prefork_restarts").inc()
            if restarts < max_restarts:
                time.sleep(min(1.0, 0.1 * 2 ** restarts))
                _spawn(restarts + 1)
            else:
                worst = max(worst, 1)
                _LOG.error("prefork child exceeded %d restarts; not "
                           "restarting", max_restarts)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    _LOG.info("prefork supervisor exiting (%d)", worst)
    return worst
