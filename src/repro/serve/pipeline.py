"""The service's request pipeline: coalescing, batching, backpressure.

Every gate evaluation entering the service flows through one
:class:`GatePipeline.submit` call, which applies -- in order:

1. **Single-flight coalescing.**  Requests are keyed by
   :meth:`JobSpec.key`, the same content address the result cache
   uses.  If an identical computation is already in flight, the new
   request simply awaits its future ("coalesced"); under a thundering
   herd of identical requests exactly one underlying job executes.
2. **Cache fast path.**  A key with a stored result returns straight
   from the :class:`ResultCache` ("cached") without touching the
   executor, the admission queue or the rate limiter -- hits are too
   cheap to be worth limiting.
3. **Admission control.**  New work is bounded two ways: a counter of
   jobs queued-or-running (``max_queue``) and an optional token-bucket
   rate limiter.  Either limit raises :class:`Overloaded`, which the
   HTTP layer maps to ``429`` with a ``Retry-After`` hint -- load is
   shed at the door instead of growing an unbounded backlog.
4. **Micro-batching.**  Requests marked batchable (network-tier
   evaluations, which cost microseconds each) are collected for up to
   ``batch_window`` seconds (or until ``batch_max`` of them pile up)
   and submitted as ONE ``Executor.run`` batch -- one thread hop and
   one report for the whole group ("batched").  Heavier tiers skip
   the window and run as single-spec batches ("computed").

The pipeline never blocks the event loop: executor calls go through
:func:`repro.runtime.aio.run_async`, and compute runs as background
tasks so a disconnecting client cannot cancel work that other
coalesced requests are waiting on.

Resilience (see ``docs/RESILIENCE.md``): each job family (the
``breaker_key`` the caller passes, normally the solver tier) gets a
:class:`~repro.resilience.CircuitBreaker`; once a family fails
repeatedly new work for it is rejected with
:class:`~repro.errors.CircuitOpen` (503 semantics) until a probe
succeeds.  The breaker check sits *after* the cache fast path, so an
open circuit still serves cached results -- degraded, not dead.  A
``deadline`` bounds how long one request waits; on expiry the caller
gets :class:`~repro.errors.JobTimeout` (504) while the computation
keeps running for coalesced waiters and the cache.

Metrics (``repro.obs`` registry, served by ``GET /metrics``):
``serve.coalesced``, ``serve.cache_fastpath``, ``serve.rejected_queue``,
``serve.rejected_rate``, ``serve.rejected_circuit``,
``serve.deadline_exceeded``, ``serve.batches``, ``serve.batched``,
histogram ``serve.batch_size`` and gauge ``serve.in_flight``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..errors import ClusterConfigError, CircuitOpen, JobTimeout, ReproError
from ..resilience.circuit import CircuitBreaker
from ..runtime.aio import run_async
from ..runtime.cache import ResultCache
from ..runtime.executor import Executor, JobFailed
from ..runtime.report import STATUS_HIT
from ..runtime.spec import JobSpec

_LOG = obs.get_logger("serve.pipeline")

#: ServedResult.source values.
SOURCE_CACHED = "cached"        # result cache, no computation
SOURCE_COMPUTED = "computed"    # executed as its own job
SOURCE_BATCHED = "batched"      # executed inside a micro-batch (> 1)
SOURCE_COALESCED = "coalesced"  # shared an in-flight identical request


class Overloaded(Exception):
    """The service is shedding load; retry after ``retry_after`` s."""

    def __init__(self, reason: str, retry_after: float = 1.0):
        super().__init__(reason)
        self.reason = reason
        self.retry_after = max(0.0, retry_after)


class TokenBucket:
    """Classic token-bucket rate limiter (``rate`` tokens/s, burst
    capacity ``burst``; monotonic clock)."""

    def __init__(self, rate: float, burst: Optional[float] = None):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.capacity = float(burst) if burst else max(1.0, self.rate)
        self.tokens = self.capacity
        self._last = time.monotonic()

    def _refill(self) -> None:
        now = time.monotonic()
        self.tokens = min(self.capacity,
                          self.tokens + (now - self._last) * self.rate)
        self._last = now

    def take(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; False means rate-limited."""
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will have accumulated."""
        self._refill()
        return max(0.0, (n - self.tokens) / self.rate)


@dataclass
class ServedResult:
    """One pipeline answer: the job value plus how it was served."""

    value: Any
    source: str          # cached | computed | batched | coalesced
    key: str
    batch_size: int = 1


@dataclass
class _Resolved:
    """What an in-flight future resolves to (shared by coalescers)."""

    value: Any
    source: str
    batch_size: int = 1


def _retrieve(future: "asyncio.Future") -> None:
    """Done-callback marking exceptions retrieved (a leader abandoned
    by a disconnecting client must not log 'exception never
    retrieved')."""
    if not future.cancelled():
        future.exception()


class GatePipeline:
    """Single-flight + micro-batching + admission control (see module
    docstring).

    Parameters
    ----------
    executor:
        Default :class:`Executor` for single (non-batched) jobs.
    cache:
        Shared :class:`ResultCache` for the fast path -- normally the
        same instance the executor uses.  None disables the fast path
        (the executor may still hit its own cache).
    max_queue:
        Upper bound on jobs queued-or-running; further new work is
        rejected with 429 semantics.
    rate / burst:
        Token-bucket admission rate in new jobs per second (None
        disables rate limiting) and its burst capacity.
    batch_window:
        Seconds a batchable request may wait for companions.
    batch_max:
        Flush a batch immediately once it reaches this many jobs.
    salt:
        Cache-key salt override (defaults to the package version).
    breaker_threshold / breaker_reset_s:
        Consecutive-failure count that opens a job family's circuit
        breaker, and how long it stays open before admitting a probe.
    """

    def __init__(self, executor: Executor,
                 cache: Optional[ResultCache] = None,
                 max_queue: int = 64,
                 rate: Optional[float] = None,
                 burst: Optional[float] = None,
                 batch_window: float = 0.002,
                 batch_max: int = 16,
                 salt: Optional[str] = None,
                 breaker_threshold: int = 5,
                 breaker_reset_s: float = 30.0):
        self.executor = executor
        self.cache = cache
        self.max_queue = max(1, int(max_queue))
        self.bucket = TokenBucket(rate, burst) if rate else None
        self.batch_window = max(0.0, float(batch_window))
        self.batch_max = max(1, int(batch_max))
        self.salt = salt
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_reset_s = float(breaker_reset_s)
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._inflight: Dict[str, "asyncio.Future"] = {}
        self._pending = 0
        self._batch: List[Tuple[str, JobSpec, "asyncio.Future",
                                Executor]] = []
        self._flush_task: Optional["asyncio.Task"] = None
        self._tasks: set = set()

    # -- public API ---------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Jobs currently queued or running (not counting coalescers)."""
        return self._pending

    def breaker(self, key: str) -> CircuitBreaker:
        """The circuit breaker for job family ``key`` (created lazily)."""
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(key,
                                     fail_threshold=self.breaker_threshold,
                                     reset_timeout=self.breaker_reset_s)
            self._breakers[key] = breaker
        return breaker

    def circuit_states(self) -> Dict[str, Dict[str, Any]]:
        """Snapshot of every breaker: ``{family: {state, failures,
        trips}}`` -- what ``/healthz`` reports."""
        return {name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())}

    async def submit(self, spec: JobSpec, batchable: bool = False,
                     executor: Optional[Executor] = None,
                     deadline: Optional[float] = None,
                     breaker_key: Optional[str] = None) -> ServedResult:
        """Serve one request; see the module docstring for the order of
        coalescing, cache fast path, admission and batching.

        ``deadline`` bounds the wait in seconds (``JobTimeout`` on
        expiry; the computation is shielded and keeps running for
        coalesced waiters).  ``breaker_key`` names the job family whose
        circuit breaker guards -- and is driven by -- this request.
        """
        key = spec.key(self.salt)
        existing = self._inflight.get(key)
        if existing is not None:
            obs.counter("serve.coalesced").inc()
            resolved = await self._await_resolved(existing, deadline)
            return ServedResult(resolved.value, SOURCE_COALESCED, key,
                                resolved.batch_size)

        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        future.add_done_callback(_retrieve)
        # Register BEFORE the first await so concurrent identical
        # requests coalesce deterministically.
        self._inflight[key] = future
        try:
            if self.cache is not None:
                found, value = await loop.run_in_executor(
                    None, self.cache.get, key)
                if found:
                    obs.counter("serve.cache_fastpath").inc()
                    resolved = _Resolved(value, SOURCE_CACHED)
                    self._inflight.pop(key, None)
                    future.set_result(resolved)
                    return ServedResult(value, SOURCE_CACHED, key)
        except asyncio.CancelledError:
            # Client vanished during the cache lookup: nothing is
            # running yet, so wake any coalescers with the cancellation.
            self._inflight.pop(key, None)
            future.cancel()
            raise
        except Exception as exc:  # malformed key and kin: surface it
            self._inflight.pop(key, None)
            future.set_exception(exc)
            raise

        breaker = self.breaker(breaker_key) if breaker_key else None
        if breaker is not None:
            try:
                # After the cache fast path on purpose: an open circuit
                # rejects new COMPUTE work but cached answers still
                # flow -- the service degrades instead of going dark.
                breaker.allow()
            except CircuitOpen as exc:
                obs.counter("serve.rejected_circuit").inc()
                self._inflight.pop(key, None)
                future.set_exception(exc)  # coalescers get the 503 too
                raise

        try:
            self._admit()
        except Overloaded as exc:
            self._inflight.pop(key, None)
            future.set_exception(exc)  # coalescers get the 429 too
            raise

        self._pending += 1
        obs.gauge("serve.in_flight").set(self._pending)
        if batchable:
            self._enqueue(key, spec, future, executor or self.executor)
        else:
            self._track(loop.create_task(self._compute_single(
                key, spec, future, executor or self.executor)))
        try:
            resolved = await self._await_resolved(future, deadline)
        except JobTimeout:
            raise  # job still running: not a verdict on the family
        except asyncio.CancelledError:
            raise
        except ClusterConfigError:
            # "Coordinator unreachable" is not a poisoned job family:
            # under `cluster supervise` it is typically a restart in
            # progress.  Shed the queue behind a single half-open
            # probe instead of going dark for the full reset timeout.
            if breaker is not None:
                breaker.trip_probe()
            raise
        except Exception:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return ServedResult(resolved.value, resolved.source, key,
                            resolved.batch_size)

    @staticmethod
    async def _await_resolved(future: "asyncio.Future",
                              deadline: Optional[float]) -> _Resolved:
        """Await a (shielded) result future, bounded by ``deadline``."""
        if deadline is None:
            return await asyncio.shield(future)
        try:
            return await asyncio.wait_for(asyncio.shield(future), deadline)
        except asyncio.TimeoutError:
            obs.counter("serve.deadline_exceeded").inc()
            raise JobTimeout(
                f"deadline of {deadline * 1e3:.0f} ms exceeded; the "
                "computation continues for coalesced waiters and the "
                "cache") from None

    async def drain(self) -> None:
        """Flush any pending batch and wait for all in-flight work."""
        self._flush_now()
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    # -- admission ----------------------------------------------------------

    def _admit(self) -> None:
        if self._pending >= self.max_queue:
            obs.counter("serve.rejected_queue").inc()
            raise Overloaded(
                f"admission queue full ({self._pending} jobs in flight)",
                retry_after=1.0)
        if self.bucket is not None and not self.bucket.take():
            obs.counter("serve.rejected_rate").inc()
            raise Overloaded("rate limit exceeded",
                             retry_after=self.bucket.retry_after())

    # -- execution ----------------------------------------------------------

    def _track(self, task: "asyncio.Task") -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _release(self, key: str) -> None:
        self._inflight.pop(key, None)
        self._pending -= 1
        obs.gauge("serve.in_flight").set(self._pending)

    @staticmethod
    def _resolve(future: "asyncio.Future", outcome: Any,
                 batch_size: int) -> None:
        """Resolve a request future from one executor outcome."""
        if future.done():
            return
        if outcome.ok:
            if outcome.record.status == STATUS_HIT:
                source = SOURCE_CACHED
            elif batch_size > 1:
                source = SOURCE_BATCHED
            else:
                source = SOURCE_COMPUTED
            future.set_result(_Resolved(outcome.value, source, batch_size))
        else:
            future.set_exception(JobFailed(
                outcome.record.error or "job failed after retries"))

    async def _compute_single(self, key: str, spec: JobSpec,
                              future: "asyncio.Future",
                              executor: Executor) -> None:
        try:
            result = await run_async(executor, [spec])
            self._resolve(future, result.outcomes[0], 1)
        except ReproError as exc:  # typed failure: expected, not logged
            if not future.done():
                future.set_exception(exc)
        except Exception as exc:
            obs.counter("resilience.unexpected_error").inc()
            _LOG.exception("unexpected error computing %s", key)
            if not future.done():
                future.set_exception(exc)
        finally:
            self._release(key)

    # -- micro-batching -----------------------------------------------------

    def _enqueue(self, key: str, spec: JobSpec, future: "asyncio.Future",
                 executor: Executor) -> None:
        self._batch.append((key, spec, future, executor))
        if len(self._batch) >= self.batch_max or self.batch_window == 0.0:
            self._flush_now()
        elif self._flush_task is None:
            self._flush_task = asyncio.get_running_loop().create_task(
                self._flush_after(self.batch_window))
            self._track(self._flush_task)

    def _flush_now(self) -> None:
        """Snapshot the pending batch and run it as one executor call."""
        batch, self._batch = self._batch, []
        timer, self._flush_task = self._flush_task, None
        if timer is not None and timer is not asyncio.current_task():
            timer.cancel()
        if batch:
            self._track(asyncio.get_running_loop().create_task(
                self._run_batch(batch)))

    async def _flush_after(self, delay: float) -> None:
        try:
            await asyncio.sleep(delay)
        except asyncio.CancelledError:
            return  # an immediate flush already took the batch
        self._flush_now()

    async def _run_batch(self, batch: List[Tuple[str, JobSpec,
                                                 "asyncio.Future",
                                                 Executor]]) -> None:
        size = len(batch)
        obs.counter("serve.batches").inc()
        obs.histogram("serve.batch_size").observe(size)
        if size > 1:
            obs.counter("serve.batched").inc(size)
        executor = batch[0][3]  # batchable jobs share the fast executor
        try:
            result = await run_async(executor,
                                     [spec for _key, spec, _f, _e in batch])
            for (_key, _spec, future, _e), outcome in zip(
                    batch, result.outcomes):
                self._resolve(future, outcome, size)
        except ReproError as exc:
            _LOG.warning("batch of %d failed: %s", size, exc)
            for _key, _spec, future, _e in batch:
                if not future.done():
                    future.set_exception(exc)
        except Exception as exc:
            obs.counter("resilience.unexpected_error").inc()
            _LOG.exception("unexpected error in batch of %d", size)
            for _key, _spec, future, _e in batch:
                if not future.done():
                    future.set_exception(exc)
        finally:
            for key, _spec, _future, _e in batch:
                self._release(key)
