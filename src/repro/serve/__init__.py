"""repro.serve: the network-facing gate-evaluation service.

The paper's workload is request-shaped -- every truth-table row,
fan-out variant and ablation point is an independent gate evaluation --
and :mod:`repro.runtime` already provides the executor and the
content-addressed result cache.  This subsystem turns them into a
long-lived asyncio HTTP service with production semantics:

* **single-flight coalescing** -- concurrent identical requests share
  one computation (keyed on :meth:`JobSpec.key`);
* **micro-batching** -- compatible network-tier requests are grouped
  into one vectorized executor batch;
* **backpressure** -- a bounded admission queue and a token-bucket
  rate limiter answer overload with ``429 Retry-After``;
* **observability** -- Prometheus ``/metrics`` from the
  :mod:`repro.obs` registry, JSONL access logs with request/trace ids;
* **graceful drain** -- SIGTERM/SIGINT stops accepting, finishes
  in-flight work and flushes artifacts;
* **resilience** -- per-tier circuit breakers (``503 Retry-After``
  while open, ``/healthz`` reports ``degraded``) and request deadlines
  (``x-deadline-ms`` header or ``--deadline-s``, ``504`` on expiry);
  see ``docs/RESILIENCE.md``.

Endpoints: ``POST /v1/gate``, ``POST /v1/sweep``, ``GET /healthz``,
``GET /metrics``.  Start one with ``python -m repro serve [--port
--workers --max-queue --rate]``, host one in-process with
:class:`ServerThread`, and talk to either with :class:`ServeClient`.
See ``docs/SERVING.md``.
"""

from ..errors import CircuitOpen, JobTimeout
from .app import (
    AccessLog,
    GateService,
    ServeConfig,
    ServerThread,
)
from .client import ServeClient, ServeError
from .prefork import run_prefork
from .pipeline import (
    GatePipeline,
    Overloaded,
    ServedResult,
    TokenBucket,
)

__all__ = [
    "AccessLog",
    "CircuitOpen",
    "GatePipeline",
    "GateService",
    "JobTimeout",
    "Overloaded",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServedResult",
    "ServerThread",
    "TokenBucket",
    "run_prefork",
]
