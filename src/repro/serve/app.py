"""The asyncio HTTP gate-evaluation service.

A stdlib-only (``asyncio`` streams + ``http``-module primitives) JSON
API over the reproduction:

* ``POST /v1/gate``  -- evaluate one input pattern of a gate;
* ``POST /v1/sweep`` -- the full 2^n truth table in one request
  (fanned through the pipeline, so patterns coalesce/batch/cache
  individually);
* ``POST /v1/compile`` -- the spin-wave circuit compiler
  (:mod:`repro.compiler`): spec in, placed + DRC-checked (optionally
  characterized) fabric out; compiles are content-addressed jobs, so
  identical requests coalesce in flight and repeat requests hit the
  result cache;
* ``GET /healthz``   -- liveness + drain state;
* ``GET /metrics``   -- Prometheus text format rendered from the
  :mod:`repro.obs` metrics registry.

Production semantics live in :class:`repro.serve.pipeline.GatePipeline`
(single-flight coalescing, micro-batching, bounded admission queue,
token-bucket rate limiting); this module adds the HTTP mechanics:
keep-alive connection handling with bounded request sizes, JSONL
access logs with request/trace-id propagation, ``429 Retry-After``
overload responses, and graceful drain on SIGTERM/SIGINT (stop
accepting, finish in-flight requests, flush logs and span artifacts).

Two executors back the pipeline: a serial in-process one for the
analytic network tier (microseconds per evaluation -- a process pool
would only add latency) and a pooled one for the fdtd/llg solver
tiers, both sharing one result cache.

Embedding: :class:`ServerThread` runs a service on a daemon thread
with its own event loop -- how the tests, the throughput benchmark and
notebook users host it in-process.
"""

from __future__ import annotations

import asyncio
import json
import math
import os
import signal
import threading
import time
from dataclasses import dataclass
from http import HTTPStatus
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..errors import CircuitOpen, JobTimeout
from ..runtime.cache import DEFAULT_CACHE_ROOT, DiskCache, ResultCache
from ..runtime.executor import Executor, JobFailed
from ..runtime.report import utc_now_iso
from ..runtime.spec import JobSpec
from .pipeline import GatePipeline, Overloaded, ServedResult

_LOG = obs.get_logger("serve.app")

#: run_gate_case parameters accepted over the wire, beyond gate/bits/tier.
_CASE_PARAMS = ("calibrated", "frequency", "n_d1", "cells_per_wavelength",
                "temperature", "seed", "phase_noise", "geometry_jitter")
_TIERS = ("surrogate", "network", "fdtd", "llg")

#: Characterization-axis parameters only the surrogate tier models;
#: dropped when a domain miss rewrites the request for the network
#: fallback (which answers the nominal case).
_SURROGATE_ONLY_PARAMS = ("phase_noise", "geometry_jitter")

MAX_REQUEST_LINE = 8192
MAX_HEADERS = 64
MAX_BODY = 1 << 20          # 1 MiB of JSON is plenty for any request
IDLE_TIMEOUT = 30.0         # keep-alive read timeout [s]
SPAN_FLUSH_INTERVAL = 5.0   # background span-drain period [s]


class BadRequest(Exception):
    """Client error; maps to a 400 response with the message."""


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    host: str = "127.0.0.1"
    port: int = 8077                 # 0 = ephemeral (tests, benches)
    workers: Optional[int] = None    # pool size for fdtd/llg jobs
    cache_dir: Optional[str] = DEFAULT_CACHE_ROOT  # None = no cache
    max_queue: int = 64
    rate: Optional[float] = None     # new jobs/s (None = unlimited)
    burst: Optional[float] = None
    batch_window_ms: float = 2.0
    batch_max: int = 16
    timeout: Optional[float] = None  # per-job bound for solver tiers
    access_log: Optional[str] = None  # JSONL access-log path
    trace: Optional[str] = None      # periodic span flush target (JSONL)
    drain_timeout: float = 30.0
    deadline_s: Optional[float] = None  # default request deadline
    breaker_threshold: int = 5       # failures that open a tier's circuit
    breaker_reset_s: float = 30.0    # open time before a probe is let in
    surrogate_dir: Optional[str] = None  # characterization store root
    # (None = $REPRO_SURROGATE_DIR or .repro_characterization/)
    backend: Optional[str] = None    # solver-tier execution backend:
    # None/"local" = in-process pool, "tcp://host:port" = repro.cluster
    prefork: int = 0                 # worker processes sharing the port
    # via SO_REUSEPORT (0 = single process); see repro.serve.prefork
    reuse_port: bool = False         # bind with SO_REUSEPORT (set
    # automatically for prefork children)


class AccessLog:
    """Structured JSONL access log (one object per request)."""

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":"))
                           + "\n")
        # Flush per record so the log survives a non-graceful death --
        # it is an operational artifact, not a best-effort trace.
        self._handle.flush()

    def flush(self) -> None:
        self._handle.flush()

    def close(self) -> None:
        try:
            self._handle.flush()
        finally:
            self._handle.close()


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Dict[str, Any]:
        if not self.body:
            raise BadRequest("request body required")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"invalid JSON body: {exc}")
        if not isinstance(payload, dict):
            raise BadRequest("JSON body must be an object")
        return payload


class GateService:
    """The service: owns the executors, pipeline, server and lifecycle."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.cache: Optional[ResultCache] = (
            DiskCache(root=self.config.cache_dir)
            if self.config.cache_dir else None)
        # Network-tier jobs are microsecond-scale: keep them serial and
        # in-process.  Solver tiers get the pool -- or, with
        # ``--backend tcp://...``, the cluster -- and the job timeout.
        from ..runtime.backend import create_backend

        self.fast_executor = Executor(workers=1, cache=self.cache)
        self.heavy_executor = Executor(workers=self.config.workers,
                                       cache=self.cache,
                                       timeout=self.config.timeout,
                                       backend=create_backend(
                                           self.config.backend))
        self.pipeline = GatePipeline(
            self.fast_executor, cache=self.cache,
            max_queue=self.config.max_queue, rate=self.config.rate,
            burst=self.config.burst,
            batch_window=self.config.batch_window_ms / 1e3,
            batch_max=self.config.batch_max,
            breaker_threshold=self.config.breaker_threshold,
            breaker_reset_s=self.config.breaker_reset_s)
        self.access_log: Optional[AccessLog] = None
        self.port: Optional[int] = None  # actual port once bound
        self._started = time.time()
        self._draining = False
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._stop: Optional["asyncio.Event"] = None
        self._own_observer = False
        self._routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/v1/gate"): self._handle_gate,
            ("POST", "/v1/sweep"): self._handle_sweep,
            ("POST", "/v1/compile"): self._handle_compile,
        }

    # -- lifecycle ----------------------------------------------------------

    def run(self) -> int:
        """Blocking entry point (the CLI): serve until SIGTERM/SIGINT,
        then drain; returns 0 on a clean shutdown."""
        try:
            asyncio.run(self.serve())
        except KeyboardInterrupt:  # loops without signal handlers
            pass
        return 0

    def request_shutdown(self) -> None:
        """Begin graceful drain; safe to call from any thread."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    async def serve(self,
                    ready: Optional[threading.Event] = None) -> None:
        """Bind, serve until shutdown is requested, then drain."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._started = time.time()
        # Own the observer unless the caller (e.g. ``--trace``) already
        # attached one; owning it means metrics like cache.hit are live
        # on /metrics and spans are flushed periodically so a
        # long-lived server's collector cannot grow without bound.
        self._own_observer = not obs.enabled()
        if self._own_observer:
            obs.enable()
        if self.config.access_log:
            self.access_log = AccessLog(self.config.access_log)
        self._install_signal_handlers()

        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port,
            reuse_port=self.config.reuse_port or None)
        self.port = server.sockets[0].getsockname()[1]
        _LOG.info("serving on http://%s:%d (pid=%d, workers=%s, "
                  "max_queue=%d, rate=%s, backend=%s)",
                  self.config.host, self.port, os.getpid(),
                  self.config.workers, self.config.max_queue,
                  self.config.rate, self.config.backend or "local")
        flusher = self._loop.create_task(self._span_flusher())
        if ready is not None:
            ready.set()
        try:
            await self._stop.wait()
        finally:
            self._draining = True
            server.close()
            await server.wait_closed()
            try:
                await asyncio.wait_for(self.pipeline.drain(),
                                       self.config.drain_timeout)
            except asyncio.TimeoutError:
                _LOG.warning("drain timed out after %.1f s with %d jobs "
                             "in flight", self.config.drain_timeout,
                             self.pipeline.in_flight)
            flusher.cancel()
            try:
                await flusher
            except asyncio.CancelledError:
                pass
            self._flush_spans(final=True)
            if self.access_log is not None:
                self.access_log.close()
            if self._own_observer:
                obs.disable()
            _LOG.info("drained; goodbye")

    def _install_signal_handlers(self) -> None:
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(signum, self._stop.set)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without loop signals

    async def _span_flusher(self) -> None:
        while True:
            await asyncio.sleep(SPAN_FLUSH_INTERVAL)
            self._flush_spans()

    def _flush_spans(self, final: bool = False) -> None:
        """Bound the span collector: persist to the trace file if one
        is configured, else discard.  Without this an always-on
        observer would accumulate spans forever."""
        if not self._own_observer:
            return  # the enabling caller owns span collection
        spans = obs.drain_spans()
        if not spans or not self.config.trace:
            return
        try:
            with open(self.config.trace, "a", encoding="utf-8") as handle:
                for record in spans:
                    handle.write(json.dumps(record, default=str) + "\n")
        except OSError as exc:
            if final:
                _LOG.warning("could not flush %d spans: %s",
                             len(spans), exc)

    # -- connection handling ------------------------------------------------

    async def _handle_connection(self, reader: "asyncio.StreamReader",
                                 writer: "asyncio.StreamWriter") -> None:
        peer = writer.get_extra_info("peername")
        client = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) else "?"
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._dispatch(request, writer, client)
                if not keep_alive or self._draining:
                    break
        except (asyncio.IncompleteReadError, ConnectionError,
                asyncio.TimeoutError):
            pass  # client went away or idled out: routine
        except BadRequest as exc:
            try:
                self._write_response(
                    writer, HTTPStatus.BAD_REQUEST,
                    self._json_body({"error": str(exc)}), keep_alive=False)
                await writer.drain()
            except ConnectionError:
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
            self, reader: "asyncio.StreamReader") -> Optional[_Request]:
        try:
            line = await asyncio.wait_for(reader.readline(), IDLE_TIMEOUT)
        except asyncio.TimeoutError:
            return None  # idle keep-alive connection: close it
        if not line:
            return None
        if len(line) > MAX_REQUEST_LINE:
            raise BadRequest("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise BadRequest("malformed request line")
        method, target, version = parts
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= MAX_HEADERS:
                raise BadRequest("too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise BadRequest("malformed header")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequest(f"bad Content-Length {length_text!r}")
        if length > MAX_BODY:
            raise BadRequest(f"body too large ({length} bytes)")
        body = await reader.readexactly(length) if length else b""
        headers["_http_version"] = version
        return _Request(method=method, path=target.split("?", 1)[0],
                        headers=headers, body=body)

    # -- dispatch -----------------------------------------------------------

    async def _dispatch(self, request: _Request,
                        writer: "asyncio.StreamWriter",
                        client: str) -> bool:
        t0 = time.perf_counter()
        request_id = request.headers.get("x-request-id",
                                         os.urandom(8).hex())
        obs.counter("serve.requests").inc()
        status = HTTPStatus.INTERNAL_SERVER_ERROR
        body = b""
        content_type = "application/json"
        extra: List[Tuple[str, str]] = []
        served: Optional[Dict[str, Any]] = None
        with obs.span("serve.request", method=request.method,
                      path=request.path, request_id=request_id):
            try:
                handler = self._routes.get((request.method, request.path))
                if handler is None:
                    if any(path == request.path
                           for _m, path in self._routes):
                        status = HTTPStatus.METHOD_NOT_ALLOWED
                        body = self._json_body(
                            {"error": f"method {request.method} not "
                                      f"allowed on {request.path}"})
                    else:
                        status = HTTPStatus.NOT_FOUND
                        body = self._json_body(
                            {"error": f"no route {request.path}"})
                else:
                    status, payload, served = await handler(
                        request, request_id)
                    if request.path == "/metrics":
                        content_type = "text/plain; version=0.0.4"
                        body = payload.encode("utf-8")
                    else:
                        body = self._json_body(payload)
            except BadRequest as exc:
                status = HTTPStatus.BAD_REQUEST
                body = self._json_body({"error": str(exc)})
            except Overloaded as exc:
                status = HTTPStatus.TOO_MANY_REQUESTS
                retry_after = max(1, int(math.ceil(exc.retry_after)))
                extra.append(("Retry-After", str(retry_after)))
                body = self._json_body(
                    {"error": exc.reason,
                     "retry_after_s": round(exc.retry_after, 3)})
            except CircuitOpen as exc:
                status = HTTPStatus.SERVICE_UNAVAILABLE
                retry_after = max(1, int(math.ceil(exc.retry_after)))
                extra.append(("Retry-After", str(retry_after)))
                body = self._json_body(
                    {"error": str(exc),
                     "retry_after_s": round(exc.retry_after, 3)})
            except JobTimeout as exc:
                status = HTTPStatus.GATEWAY_TIMEOUT
                body = self._json_body({"error": str(exc)})
            except JobFailed as exc:
                status = HTTPStatus.INTERNAL_SERVER_ERROR
                body = self._json_body({"error": f"evaluation failed: {exc}"})
            except Exception as exc:  # never crash the connection loop
                _LOG.exception("unhandled error serving %s %s",
                               request.method, request.path)
                status = HTTPStatus.INTERNAL_SERVER_ERROR
                body = self._json_body(
                    {"error": f"{type(exc).__name__}: {exc}"})

        duration_ms = (time.perf_counter() - t0) * 1e3
        # The request id doubles as the latency exemplar: a slow bucket
        # in the Prometheus export names a concrete request to chase.
        obs.histogram("serve.latency_ms").observe(duration_ms,
                                                  exemplar=request_id)
        obs.counter(f"serve.http_{status.value // 100}xx").inc()
        obs.flight.record("http", method=request.method, path=request.path,
                          status=status.value,
                          duration_ms=round(duration_ms, 3),
                          request_id=request_id)
        keep_alive = (request.headers.get("connection", "").lower()
                      != "close"
                      and request.headers.get("_http_version") != "HTTP/1.0"
                      and not self._draining)
        self._write_response(writer, status, body, content_type=content_type,
                             extra=extra, keep_alive=keep_alive,
                             request_id=request_id)
        await writer.drain()
        if self.access_log is not None:
            record = {"ts": utc_now_iso(), "client": client,
                      "method": request.method, "path": request.path,
                      "status": status.value,
                      "duration_ms": round(duration_ms, 3),
                      "bytes_out": len(body), "request_id": request_id,
                      "trace_id": obs.current_trace_id()}
            if served is not None:
                record.update(served)
            self.access_log.write(record)
        return keep_alive

    @staticmethod
    def _json_body(payload: Any) -> bytes:
        return (json.dumps(payload, separators=(",", ":"))
                + "\n").encode("utf-8")

    @staticmethod
    def _write_response(writer: "asyncio.StreamWriter", status: HTTPStatus,
                        body: bytes, content_type: str = "application/json",
                        extra: Optional[List[Tuple[str, str]]] = None,
                        keep_alive: bool = True,
                        request_id: Optional[str] = None) -> None:
        lines = [f"HTTP/1.1 {status.value} {status.phrase}",
                 f"Content-Type: {content_type}",
                 f"Content-Length: {len(body)}",
                 f"Connection: {'keep-alive' if keep_alive else 'close'}"]
        if request_id:
            lines.append(f"X-Request-Id: {request_id}")
        for name, value in extra or []:
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    # -- request validation -------------------------------------------------

    def _build_spec(self, payload: Dict[str, Any],
                    pattern: Optional[List[int]] = None
                    ) -> Tuple[JobSpec, str]:
        """Validate a gate request and build its JobSpec; returns the
        spec and its tier."""
        from ..micromag.experiments import GATE_ARITY

        unknown = set(payload) - {"gate", "bits", "tier"} - set(_CASE_PARAMS)
        if unknown:
            raise BadRequest(f"unknown parameter(s): {sorted(unknown)}")
        gate = payload.get("gate")
        if gate not in GATE_ARITY:
            raise BadRequest(f"unknown gate {gate!r}; choose from "
                             f"{sorted(GATE_ARITY)}")
        tier = payload.get("tier", "network")
        if tier not in _TIERS:
            raise BadRequest(f"unknown tier {tier!r}; choose from "
                             f"{list(_TIERS)}")
        bits = pattern if pattern is not None else payload.get("bits")
        if (not isinstance(bits, (list, tuple))
                or len(bits) != GATE_ARITY[gate]
                or any(b not in (0, 1) for b in bits)):
            raise BadRequest(f"bits must be {GATE_ARITY[gate]} values "
                             f"of 0/1 for {gate}, got {bits!r}")
        if tier != "surrogate":
            bad = [name for name in _SURROGATE_ONLY_PARAMS
                   if payload.get(name)]
            if bad:
                raise BadRequest(f"{sorted(bad)} are characterization "
                                 "axes of the surrogate tier; the "
                                 "physical tiers do not model them")
        params: Dict[str, Any] = {
            "gate": gate, "bits": [int(b) for b in bits], "tier": tier,
            "calibrated": bool(payload.get("calibrated",
                                           tier == "network"))}
        for name in _CASE_PARAMS[1:]:
            if payload.get(name) is not None:
                params[name] = payload[name]
        label = f"{gate}:{''.join(map(str, params['bits']))}@{tier}"
        return JobSpec(fn="repro.micromag.experiments:run_gate_case",
                       params=params, label=label), tier

    def _build_compile_spec(self, payload: Dict[str, Any]
                            ) -> Tuple[JobSpec, str]:
        """Validate a compile request and build its JobSpec.

        The circuit spec and rule deck are fully validated *here* (the
        compiler front door runs in-process) so malformed requests are
        400s, and only well-formed compiles spend executor time.
        """
        from ..compiler import CircuitSpec, DesignRules, load_spec

        unknown = set(payload) - {"spec", "rules", "characterize", "tier"}
        if unknown:
            raise BadRequest(f"unknown parameter(s): {sorted(unknown)}")
        raw_spec = payload.get("spec")
        try:
            if isinstance(raw_spec, dict):
                spec = CircuitSpec.from_dict(raw_spec)
            elif isinstance(raw_spec, str):
                spec = load_spec(raw_spec)
            else:
                raise BadRequest(
                    "spec must be an object {name, inputs, outputs} or "
                    "a string (builtin name, inline JSON, equations)")
            rules = payload.get("rules")
            if rules is not None:
                if not isinstance(rules, dict):
                    raise BadRequest("rules must be an object of "
                                     "DesignRules fields")
                DesignRules.from_dict(rules)
        except BadRequest:
            raise
        except (TypeError, ValueError) as exc:
            raise BadRequest(str(exc))
        tier = payload.get("tier", "network")
        if tier not in _TIERS:
            raise BadRequest(f"unknown tier {tier!r}; choose from "
                             f"{list(_TIERS)}")
        characterize = bool(payload.get("characterize", False))
        params: Dict[str, Any] = {"spec": spec.to_dict(),
                                  "characterize": characterize,
                                  "tier": tier}
        if rules:
            params["rules"] = rules
        label = (f"compile:{spec.name}@{tier}"
                 + (":char" if characterize else ""))
        return JobSpec(fn="repro.compiler.api:compile_job",
                       params=params, label=label), tier

    def _deadline_for(self, request: _Request) -> Optional[float]:
        """Per-request deadline [s]: ``x-deadline-ms`` header, falling
        back to the configured default (None = unbounded)."""
        raw = request.headers.get("x-deadline-ms")
        if raw is None:
            return self.config.deadline_s
        try:
            value = float(raw)
        except ValueError:
            raise BadRequest(f"bad x-deadline-ms {raw!r}")
        if value <= 0 or not math.isfinite(value):
            raise BadRequest("x-deadline-ms must be a positive number")
        return value / 1e3

    async def _serve_spec(self, spec: JobSpec, tier: str,
                          deadline: Optional[float] = None) -> ServedResult:
        if tier == "surrogate":
            # Surrogate requests are answered in-process, ahead of the
            # pipeline's single-flight/DiskCache fast path: a fitted
            # model query is microseconds, cheaper than the cache's own
            # disk read.  Guardrail misses rewrite the request for the
            # network tier (dropping the axes only the surrogate
            # models) and annotate the answer with the degradation.
            case = self._surrogate_case(spec)
            if case is not None:
                return ServedResult(value=case, source="surrogate",
                                    key=spec.key())
            fallback, fallback_tier = self._surrogate_fallback_spec(spec)
            served = await self._serve_spec(fallback, fallback_tier,
                                            deadline)
            value = served.value
            if isinstance(value, dict):
                value = dict(value)
                value["degraded_from"] = "surrogate"
                value.setdefault("degradation_path",
                                 ["surrogate", fallback_tier])
            return ServedResult(value=value, source=served.source,
                                key=served.key,
                                batch_size=served.batch_size)
        breaker_key = f"tier:{tier}"
        if tier == "network":
            return await self.pipeline.submit(spec, batchable=True,
                                              deadline=deadline,
                                              breaker_key=breaker_key)
        return await self.pipeline.submit(spec,
                                          executor=self.heavy_executor,
                                          deadline=deadline,
                                          breaker_key=breaker_key)

    def _surrogate_case(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Answer a surrogate-tier spec from the fitted model, or None
        when the accuracy guardrails (or a chaos fault) say fall back."""
        from ..errors import FaultInjected, SurrogateDomainError
        from ..surrogate.tier import evaluate_surrogate, query_point

        params = spec.params
        point = query_point(
            phase_noise=params.get("phase_noise", 0.0),
            frequency=params.get("frequency"),
            geometry_jitter=params.get("geometry_jitter", 0.0),
            temperature=params.get("temperature", 0.0))
        try:
            return evaluate_surrogate(params["gate"], params["bits"],
                                      point,
                                      root=self.config.surrogate_dir)
        except (SurrogateDomainError, FaultInjected) as exc:
            _LOG.info("surrogate miss for %s (%s); falling back to the "
                      "network tier", spec.label, exc)
            return None

    @staticmethod
    def _surrogate_fallback_spec(spec: JobSpec) -> Tuple[JobSpec, str]:
        """The network-tier rewrite of a surrogate request."""
        params = {name: value for name, value in spec.params.items()
                  if name not in _SURROGATE_ONLY_PARAMS}
        params["tier"] = "network"
        label = (spec.label or "").replace("@surrogate", "@network") \
            or None
        return JobSpec(fn=spec.fn, params=params, label=label), "network"

    # -- handlers -----------------------------------------------------------

    async def _handle_healthz(self, request: _Request, request_id: str):
        from .. import __version__

        circuits = self.pipeline.circuit_states()
        degraded = any(snap["state"] != "closed"
                       for snap in circuits.values())
        if self._draining:
            status, health = HTTPStatus.SERVICE_UNAVAILABLE, "draining"
        elif degraded:
            # Still 200: the service is alive and serving cached work;
            # orchestrators must not restart it for an open breaker.
            status, health = HTTPStatus.OK, "degraded"
        else:
            status, health = HTTPStatus.OK, "ok"
        payload = {"status": health,
                   "version": __version__,
                   "uptime_s": round(time.time() - self._started, 3),
                   "in_flight": self.pipeline.in_flight}
        if circuits:
            payload["circuits"] = circuits
        return status, payload, None

    async def _handle_metrics(self, request: _Request, request_id: str):
        obs.gauge("serve.uptime_s").set(
            round(time.time() - self._started, 3))
        # Materialise the latency quantiles as gauges at scrape time so
        # dashboards get p50/p95/p99 without server-side PromQL.
        latency = obs.histogram("serve.latency_ms")
        for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            value = latency.quantile(q)
            if value is not None:
                obs.gauge(f"serve.latency_{label}_ms").set(round(value, 3))
        return HTTPStatus.OK, obs.render_prometheus(), None

    async def _handle_gate(self, request: _Request, request_id: str):
        payload = request.json()
        spec, tier = self._build_spec(payload)
        deadline = self._deadline_for(request)
        t0 = time.perf_counter()
        served = await self._serve_spec(spec, tier, deadline)
        duration_ms = (time.perf_counter() - t0) * 1e3
        meta = {"source": served.source, "key": served.key,
                "batch_size": served.batch_size,
                "duration_ms": round(duration_ms, 3),
                "request_id": request_id}
        return (HTTPStatus.OK,
                {"result": served.value, "served": meta},
                {"source": served.source, "key": served.key})

    async def _handle_compile(self, request: _Request, request_id: str):
        payload = request.json()
        spec, tier = self._build_compile_spec(payload)
        deadline = self._deadline_for(request)
        # Compiles are not micro-batchable (they are not gate cases),
        # but they coalesce and cache exactly like any job: the spec's
        # content-addressed key is the single-flight and cache key.
        executor = (self.heavy_executor if tier != "network" else None)
        t0 = time.perf_counter()
        served = await self.pipeline.submit(
            spec, executor=executor, deadline=deadline,
            breaker_key=f"compile:{tier}")
        duration_ms = (time.perf_counter() - t0) * 1e3
        meta = {"source": served.source, "key": served.key,
                "duration_ms": round(duration_ms, 3),
                "request_id": request_id}
        return (HTTPStatus.OK,
                {"result": served.value, "served": meta},
                {"source": served.source, "key": served.key})

    async def _handle_sweep(self, request: _Request, request_id: str):
        from ..core.logic import input_patterns
        from ..micromag.experiments import GATE_ARITY

        payload = request.json()
        gate = payload.get("gate")
        if gate not in GATE_ARITY:
            raise BadRequest(f"unknown gate {gate!r}; choose from "
                             f"{sorted(GATE_ARITY)}")
        patterns = input_patterns(GATE_ARITY[gate])
        specs = [self._build_spec(dict(payload), pattern=list(bits))
                 for bits in patterns]
        deadline = self._deadline_for(request)
        t0 = time.perf_counter()
        results = await asyncio.gather(
            *[self._serve_spec(spec, tier, deadline)
              for spec, tier in specs])
        duration_ms = (time.perf_counter() - t0) * 1e3
        sources: Dict[str, int] = {}
        for served in results:
            sources[served.source] = sources.get(served.source, 0) + 1
        cases = [served.value for served in results]
        meta = {"sources": sources, "duration_ms": round(duration_ms, 3),
                "request_id": request_id}
        return (HTTPStatus.OK,
                {"gate": gate, "tier": specs[0][1],
                 "cases": cases,
                 "all_correct": all(case["correct"] for case in cases),
                 "served": meta},
                {"source": "+".join(sorted(sources)), "key": None})


class ServerThread:
    """Host a :class:`GateService` on a daemon thread (its own loop).

    >>> with ServerThread(ServeConfig(port=0)) as server:   # doctest: +SKIP
    ...     client = ServeClient(server.base_url)
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.service = GateService(config)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve", daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self.service.serve(ready=self._ready))
        except BaseException as exc:  # surfaced by start()/stop()
            self._error = exc
        finally:
            self._ready.set()

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service did not start within 30 s")
        if self._error is not None:
            raise RuntimeError(
                f"service failed to start: {self._error}") from self._error
        return self

    @property
    def port(self) -> int:
        if self.service.port is None:
            raise RuntimeError("service not started")
        return self.service.port

    @property
    def base_url(self) -> str:
        return f"http://{self.service.config.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        self.service.request_shutdown()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service did not drain in time")
        if self._error is not None:
            raise RuntimeError(
                f"service crashed: {self._error}") from self._error

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
