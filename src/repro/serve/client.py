"""Stdlib HTTP client for the gate-evaluation service.

``urllib``-based -- no new dependencies -- with retry semantics that
mirror the engine: transient failures (connection refused/reset, 429,
502/503/504) are retried up to ``retries`` times with the executor's
exponential backoff policy (:func:`repro.runtime.executor.backoff_delay`),
honouring the server's ``Retry-After`` hint when one is sent.  Anything
else raises :class:`ServeError` with the HTTP status and decoded body.

>>> client = ServeClient("http://127.0.0.1:8077")      # doctest: +SKIP
>>> client.gate("maj3", [0, 1, 1])["result"]["correct"]  # doctest: +SKIP
True
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence, Union

from ..runtime.executor import backoff_delay

__all__ = ["ServeClient", "ServeError"]

#: HTTP statuses worth retrying: overload shedding and transient
#: upstream failures.
RETRYABLE_STATUSES = (429, 502, 503, 504)
#: Never sleep longer than this between retries, whatever Retry-After
#: says -- a client loop must stay responsive.
MAX_RETRY_SLEEP = 10.0


class ServeError(Exception):
    """A request failed for good (non-retryable, or retries exhausted)."""

    def __init__(self, message: str, status: Optional[int] = None,
                 body: Optional[Any] = None):
        super().__init__(message)
        self.status = status
        self.body = body


class ServeClient:
    """Minimal blocking client for :mod:`repro.serve`.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8077"`` (trailing slash tolerated).
    timeout:
        Per-request socket timeout [s].
    retries:
        Extra attempts after the first failure (same meaning as the
        executor's ``retries``).
    backoff:
        Base of the exponential retry backoff [s].
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 3, backoff: float = 0.1):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff

    # -- endpoints ----------------------------------------------------------

    def gate(self, gate: str, bits: Sequence[int], tier: str = "network",
             **params: Any) -> Dict[str, Any]:
        """``POST /v1/gate``: evaluate one input pattern."""
        payload = {"gate": gate, "bits": list(bits), "tier": tier}
        payload.update(params)
        return self._request("POST", "/v1/gate", payload)

    def sweep(self, gate: str, tier: str = "network",
              **params: Any) -> Dict[str, Any]:
        """``POST /v1/sweep``: the gate's full truth table."""
        payload = {"gate": gate, "tier": tier}
        payload.update(params)
        return self._request("POST", "/v1/sweep", payload)

    def health(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """``GET /metrics`` -- raw Prometheus text."""
        return self._request("GET", "/metrics", decode_json=False)

    # -- transport ----------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None,
                 decode_json: bool = True) -> Union[Dict[str, Any], str]:
        url = self.base_url + path
        data = (json.dumps(payload).encode("utf-8")
                if payload is not None else None)
        last_error: Optional[ServeError] = None
        for attempt in range(1, self.retries + 2):
            if attempt > 1:
                time.sleep(self._sleep_for(attempt - 1, last_error))
            request = urllib.request.Request(
                url, data=data, method=method,
                headers={"Content-Type": "application/json",
                         "Accept": "application/json"})
            try:
                with urllib.request.urlopen(request,
                                            timeout=self.timeout) as resp:
                    text = resp.read().decode("utf-8")
                return json.loads(text) if decode_json else text
            except urllib.error.HTTPError as exc:
                body = self._read_body(exc)
                message = (body.get("error") if isinstance(body, dict)
                           else None) or f"HTTP {exc.code}"
                last_error = ServeError(message, status=exc.code, body=body)
                last_error.retry_after = self._retry_after(exc)
                if exc.code not in RETRYABLE_STATUSES:
                    raise last_error from None
            except urllib.error.URLError as exc:
                last_error = ServeError(f"connection failed: {exc.reason}")
                last_error.retry_after = None
            except (ValueError, json.JSONDecodeError) as exc:
                raise ServeError(f"invalid response: {exc}") from exc
        raise last_error

    def _sleep_for(self, retry_index: int,
                   last_error: Optional[ServeError]) -> float:
        delay = backoff_delay(self.backoff, retry_index)
        hinted = getattr(last_error, "retry_after", None)
        if hinted is not None:
            delay = max(delay, hinted)
        return min(delay, MAX_RETRY_SLEEP)

    @staticmethod
    def _retry_after(exc: "urllib.error.HTTPError") -> Optional[float]:
        value = exc.headers.get("Retry-After") if exc.headers else None
        try:
            return float(value) if value is not None else None
        except ValueError:
            return None

    @staticmethod
    def _read_body(exc: "urllib.error.HTTPError") -> Any:
        try:
            text = exc.read().decode("utf-8")
            return json.loads(text)
        except Exception:
            return None
