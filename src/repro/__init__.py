"""repro: reproduction of "Fan-out of 2 Triangle Shape Spin Wave Logic
Gates" (Mahmoud et al., DATE 2021).

Subpackages
-----------
``repro.core``
    The paper's contribution: triangle FO2 Majority and X(N)OR gates,
    derived (N)AND/(N)OR gates, the ladder-shape baseline, layout
    dimensioning, phase/threshold detection, the analytic wave-network
    evaluation tier and the gate-to-solver fabrication bridge.
``repro.physics``
    Materials, the Kalinikos-Slavin dispersion, plane-wave algebra and
    attenuation models.
``repro.micromag``
    From-scratch finite-difference LLG solver (the MuMax3 substitute):
    exchange, Newell-tensor FFT demagnetisation, uniaxial anisotropy,
    Zeeman + local excitation, stochastic thermal field; RK4/RK45/Heun.
``repro.fdtd``
    Fast 2-D damped scalar-wave tier for gate-scale field maps.
``repro.circuits``
    Netlists, couplers/repeaters, majority-logic synthesis and a
    gate-level simulator (full adder, adders, voting trees).
``repro.evaluation``
    ME transducer and CMOS reference models; the Table III generator.
``repro.compiler``
    Spin-wave circuit compiler: boolean spec (truth table or
    expression) -> majority/XOR netlist -> placed triangle-gate fabric
    on the lambda grid -> design-rule check (d1-d4 phase rules,
    spacings, crossings, FO2 budget) -> auto-characterization through
    the evaluation stack.  ``python -m repro compile`` and
    ``POST /v1/compile`` drive it.
``repro.runtime``
    Parallel experiment orchestration: declarative job specs with
    content-addressed keys, in-memory/on-disk result caches, a
    process-pool executor with timeouts/retries/serial fallback, and
    run telemetry.  ``python -m repro sweep`` and the truth-table /
    ablation benches submit through it.
``repro.obs``
    Observability: opt-in span tracer (with cross-process context
    propagation), metrics registry, JSONL/Chrome-trace/ASCII/
    Prometheus exporters, and the ``repro`` logger hierarchy.
    ``python -m repro --trace FILE``, ``--log-level`` and the
    ``profile`` subcommand sit on top of it.
``repro.serve``
    The runtime engine behind an asyncio HTTP service (stdlib only):
    single-flight request coalescing, micro-batching, bounded-queue +
    token-bucket backpressure (429), Prometheus ``/metrics``, JSONL
    access logs and graceful drain.  ``python -m repro serve`` runs
    one; ``repro.serve.ServeClient`` talks to it.  Imported lazily --
    ``import repro`` stays service-free.
``repro.io`` / ``repro.viz``
    OVF interchange, ASCII tables, field-map rendering.

Quickstart
----------
>>> from repro import TriangleMajorityGate
>>> gate = TriangleMajorityGate()
>>> result = gate.evaluate((0, 1, 1))
>>> result.outputs["O1"].logic_value, result.outputs["O2"].logic_value
(1, 1)
"""

import logging as _logging

# Library logging convention: silent unless the application opts in
# (via logging config or ``repro.obs.setup_logging``).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

from .core import (  # noqa: E402
    DerivedTriangleGate,
    GateResult,
    LadderMajorityGate,
    LadderXorGate,
    PhaseDetector,
    ThresholdDetector,
    TriangleMajorityGate,
    TriangleXorGate,
    paper_maj3_dimensions,
    paper_table_i_gate,
    paper_table_ii_gate,
    paper_xor_dimensions,
)
from .physics import FECOB, DispersionRelation, FilmStack, Material, Wave

__version__ = "1.0.0"

from . import errors  # noqa: E402
from . import obs  # noqa: E402
from .runtime import (  # noqa: E402 -- needs __version__ for the key salt
    DiskCache,
    Executor,
    JobSpec,
    MemoryCache,
    ResultCache,
    RunReport,
)

__all__ = [
    "DerivedTriangleGate",
    "GateResult",
    "LadderMajorityGate",
    "LadderXorGate",
    "PhaseDetector",
    "ThresholdDetector",
    "TriangleMajorityGate",
    "TriangleXorGate",
    "paper_maj3_dimensions",
    "paper_table_i_gate",
    "paper_table_ii_gate",
    "paper_xor_dimensions",
    "FECOB",
    "DispersionRelation",
    "FilmStack",
    "Material",
    "Wave",
    "DiskCache",
    "Executor",
    "JobSpec",
    "MemoryCache",
    "ResultCache",
    "RunReport",
    "errors",
    "obs",
    "__version__",
]
