"""Always-on flight recorder: a bounded ring buffer of recent events.

Black-box recorder for the whole package.  Low-rate control-plane
events -- span opens/closes, fault injections, watchdog trips,
circuit-breaker transitions, HTTP request summaries -- are appended to
a fixed-size :class:`collections.deque`, whose ``append`` is a single
atomic bytecode under the GIL: no lock, no allocation beyond the event
dict, and old events fall off the far end for free.  Steady-state cost
is therefore a dict build per *event* (not per solver step; hot loops
never record), and reading the buffer back is only done on the failure
path.

When something goes wrong the recent history is dumped as JSONL so the
post-mortem starts with context instead of a bare traceback:

* :func:`auto_dump` fires on unhandled exceptions (via
  :func:`install_excepthook`), on ``NumericalDivergenceError`` (wired
  into :class:`repro.resilience.guardrails.Watchdog`), and on
  ``SIGUSR2`` (via :func:`install_signal_handler` -- poke a live
  process for its last-N events without killing it);
* dumps land in ``.repro_flight/flight-<pid>-<stamp>.jsonl`` (override
  the directory with ``REPRO_FLIGHT_DIR``); ``python -m repro debug
  dump`` prints the most recent one;
* repeat dumps are rate-limited (one per :data:`_DUMP_COOLDOWN_S`) so
  an exception storm cannot fill the disk.

Buffer capacity defaults to 512 events, override with
``REPRO_FLIGHT_EVENTS``.
"""

from __future__ import annotations

import collections
import json
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional

__all__ = ["record", "events", "clear", "dump", "auto_dump",
           "install_excepthook", "install_signal_handler",
           "latest_dump", "default_dir"]


def _capacity() -> int:
    try:
        return max(16, int(os.environ.get("REPRO_FLIGHT_EVENTS", "512")))
    except ValueError:
        return 512


_RING: Deque[Dict[str, Any]] = collections.deque(maxlen=_capacity())

#: Minimum spacing between automatic dumps, seconds.
_DUMP_COOLDOWN_S = 5.0
_last_auto_dump = 0.0
_prev_excepthook = None


def record(kind: str, **data: Any) -> None:
    """Append one event to the ring.  ``kind`` names the event class
    ("span", "fault", "watchdog", "breaker", "http", ...); keyword
    payload must be JSON-serialisable scalars."""
    data["kind"] = kind
    data["ts"] = time.time()
    _RING.append(data)


def events() -> List[Dict[str, Any]]:
    """Snapshot of the buffered events, oldest first."""
    return list(_RING)


def clear() -> None:
    _RING.clear()


def default_dir() -> Path:
    return Path(os.environ.get("REPRO_FLIGHT_DIR", ".repro_flight"))


def dump(path: Optional[os.PathLike] = None,
         reason: str = "manual") -> Optional[Path]:
    """Write the buffered events as JSONL; returns the path, or None
    when the buffer is empty (nothing worth a file).

    The first line is a header record (kind ``"flight.dump"``) carrying
    the reason, pid and event count, so a dump is self-describing.
    """
    snapshot = events()
    if not snapshot:
        return None
    if path is None:
        directory = default_dir()
        directory.mkdir(parents=True, exist_ok=True)
        stamp = time.strftime("%Y%m%dT%H%M%S")
        path = directory / f"flight-{os.getpid()}-{stamp}.jsonl"
    path = Path(path)
    header = {"kind": "flight.dump", "reason": reason, "pid": os.getpid(),
              "events": len(snapshot), "ts": time.time()}
    with open(path, "w", encoding="utf-8") as fh:
        for event in [header] + snapshot:
            fh.write(json.dumps(event, default=str) + "\n")
    return path


def auto_dump(reason: str) -> Optional[Path]:
    """Rate-limited :func:`dump` for error paths; never raises."""
    global _last_auto_dump
    now = time.monotonic()
    if now - _last_auto_dump < _DUMP_COOLDOWN_S:
        return None
    _last_auto_dump = now
    try:
        return dump(reason=reason)
    except OSError:
        return None


def latest_dump(directory: Optional[os.PathLike] = None) -> Optional[Path]:
    """Most recently written dump file, or None."""
    directory = Path(directory) if directory else default_dir()
    if not directory.is_dir():
        return None
    dumps = sorted(directory.glob("flight-*.jsonl"),
                   key=lambda p: p.stat().st_mtime)
    return dumps[-1] if dumps else None


def install_excepthook() -> None:
    """Chain a flight-recorder dump onto ``sys.excepthook`` so any
    crash leaves the last-N-events context on disk.  Idempotent."""
    global _prev_excepthook
    if _prev_excepthook is not None:
        return
    _prev_excepthook = sys.excepthook

    def _hook(exc_type, exc, tb):
        record("crash", error=exc_type.__name__, message=str(exc))
        auto_dump(reason=f"excepthook:{exc_type.__name__}")
        _prev_excepthook(exc_type, exc, tb)

    sys.excepthook = _hook


def install_signal_handler() -> bool:
    """Dump the ring on ``SIGUSR2`` (unix only; returns False where the
    signal does not exist or we are not in the main thread)."""
    if not hasattr(signal, "SIGUSR2"):
        return False

    def _handler(signum, frame):
        record("signal", signal="SIGUSR2")
        dump(reason="SIGUSR2")

    try:
        signal.signal(signal.SIGUSR2, _handler)
    except ValueError:  # not the main thread
        return False
    return True
