"""Low-overhead span tracer with cross-process context propagation.

A **span** is a named, timed section of work::

    with obs.span("fdtd.step", steps=400, cells=12000):
        ...

Spans nest per thread: a span opened while another is active records
that span as its parent, which is what lets the exporters reconstruct
the call tree (``profile`` > ``gate_case`` > ``fdtd.run_until`` >
``fdtd.step``).  Durations come from the monotonic
:func:`time.perf_counter_ns` clock; the wall-clock start
(:func:`time.time_ns`) is kept alongside so spans collected in
different processes line up on one timeline.

When tracing is disabled (the default), :func:`span` returns a shared
no-op singleton after a single flag check -- no allocation, no clock
reads -- so instrumented hot paths cost nothing in production runs.

Cross-process propagation
-------------------------
:func:`current_context` snapshots the active trace as a serializable
:class:`TraceContext` (trace id + parent span id).  The runtime
executor ships it to ``ProcessPoolExecutor`` workers next to the job
reference; the worker calls :func:`activate`, runs the job (collecting
spans locally), then :func:`deactivate` returns the finished span
dicts, which travel back with the result and are merged into the
parent's collector via :func:`ingest`.  Span ids embed the pid, so ids
never collide across processes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from . import _state, flight as _flight

_lock = threading.Lock()
_finished: List[Dict[str, Any]] = []
_tls = threading.local()
_ids = itertools.count(1)

#: Trace identity of the current collection (None when disabled).
_trace_id: Optional[str] = None
#: Parent span id inherited from a remote context (worker side).
_root_parent: Optional[str] = None


@dataclass(frozen=True)
class TraceContext:
    """Serializable snapshot of "where we are" in a trace.

    Plain strings only, so it pickles to worker processes and
    round-trips through JSON.
    """

    trace_id: str
    span_id: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceContext":
        return cls(trace_id=data["trace_id"], span_id=data.get("span_id"))


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


def _stack() -> List["Span"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _new_span_id() -> str:
    return f"{os.getpid():x}.{next(_ids):x}"


class Span:
    """An open span; use as a context manager (see :func:`span`)."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "_t0", "_ts_ns")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = _new_span_id()
        self.parent_id: Optional[str] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to an already-open span."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _stack()
        self.parent_id = stack[-1].span_id if stack else _root_parent
        stack.append(self)
        _flight.record("span.open", name=self.name, span_id=self.span_id)
        self._ts_ns = time.time_ns()
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        dur_ns = time.perf_counter_ns() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # unbalanced exits (generators): best effort
            stack.remove(self)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        record = {
            "name": self.name,
            "trace_id": _trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "ts_ns": self._ts_ns,
            "dur_ns": dur_ns,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": self.attrs,
        }
        with _lock:
            _finished.append(record)
        _flight.record("span.close", name=self.name, span_id=self.span_id,
                       dur_ms=dur_ns / 1e6,
                       error=exc_type.__name__ if exc_type else None)
        return False


def span(name: str, **attrs: Any):
    """Open a span named ``name`` with optional attributes.

    Returns the shared :data:`NULL_SPAN` singleton when tracing is
    disabled -- the disabled cost is exactly this one flag check.
    """
    if not _state.enabled_flag:
        return NULL_SPAN
    return Span(name, attrs)


def enable(trace_id: Optional[str] = None,
           parent_id: Optional[str] = None) -> str:
    """Start collecting spans; returns the (possibly new) trace id."""
    global _trace_id, _root_parent
    with _lock:
        _finished.clear()
    _tls.stack = []
    _trace_id = trace_id or os.urandom(8).hex()
    _root_parent = parent_id
    _state.set_enabled(True)
    return _trace_id


def disable() -> None:
    """Stop collecting.  Already-collected spans stay until drained."""
    global _trace_id, _root_parent
    _state.set_enabled(False)
    _trace_id = None
    _root_parent = None


def current_trace_id() -> Optional[str]:
    """The active trace id, or None when tracing is disabled."""
    return _trace_id


def current_context() -> Optional[TraceContext]:
    """Serializable context for shipping to another process."""
    if not _state.enabled_flag or _trace_id is None:
        return None
    stack = _stack()
    parent = stack[-1].span_id if stack else _root_parent
    return TraceContext(trace_id=_trace_id, span_id=parent)


def activate(context: TraceContext) -> None:
    """Worker-side: adopt a remote context and start collecting."""
    enable(trace_id=context.trace_id, parent_id=context.span_id)


def deactivate() -> List[Dict[str, Any]]:
    """Worker-side: stop collecting and return the finished spans."""
    collected = drain()
    disable()
    return collected


def ingest(span_dicts: List[Dict[str, Any]]) -> None:
    """Merge spans collected elsewhere (another process) into ours."""
    if not span_dicts:
        return
    with _lock:
        _finished.extend(span_dicts)


def spans() -> List[Dict[str, Any]]:
    """Snapshot of the finished spans collected so far."""
    with _lock:
        return list(_finished)


def drain() -> List[Dict[str, Any]]:
    """Return the finished spans and clear the collector."""
    with _lock:
        collected = list(_finished)
        _finished.clear()
    return collected
