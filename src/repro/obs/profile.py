"""Solver-phase profiling and per-job resource accounting.

Two building blocks sit behind the deep-profiling instrumentation:

:class:`PhaseTimer`
    Accumulates wall time per named *phase* of a hot loop (FDTD
    stencil / boundary / source injection, LLG RK stages) using raw
    ``perf_counter_ns`` stamps -- the per-lap cost is one clock read
    and one dict add, cheap enough to sit inside a solver step when
    the observer is attached.  ``flush()`` ships the totals into
    ``<prefix>.phase.<name>_ms`` histograms so repeated calls build a
    distribution, answering "where inside the step does the time go"
    -- the question the batched-kernel optimisation PR has to answer
    before claiming its 5x.

:class:`ResourceProbe`
    Brackets one job with OS-level accounting: CPU seconds
    (user+system) and max-RSS deltas from ``resource.getrusage``
    (unix-only; a no-op elsewhere), plus an opt-in ``tracemalloc``
    peak when ``REPRO_TRACEMALLOC`` is set in the environment
    (tracemalloc costs ~2-4x on allocation-heavy code, so it must
    never be on by default).  The executor runs one probe around each
    pool/serial job and ships the result back into
    :class:`repro.runtime.report.JobRecord`.

Neither class touches the :func:`repro.obs.enabled` switch itself --
callers gate construction on it, keeping the disabled path at a single
flag check.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

from . import metrics as _metrics

try:  # unix only; Windows has no resource module
    import resource as _resource
except ImportError:  # pragma: no cover - exercised only off-unix
    _resource = None

__all__ = ["PhaseTimer", "ResourceProbe", "tracemalloc_requested"]


class PhaseTimer:
    """Accumulate wall time per named phase, flush to histograms.

    Usage inside a loop::

        timer = PhaseTimer("fdtd")
        for _ in range(n):
            t = timer.stamp()
            ...stencil...
            t = timer.lap("stencil", t)
            ...boundary...
            t = timer.lap("boundary", t)
        timer.flush()
    """

    __slots__ = ("prefix", "_acc_ns")

    def __init__(self, prefix: str):
        self.prefix = prefix
        self._acc_ns: Dict[str, int] = {}

    @staticmethod
    def stamp() -> int:
        return time.perf_counter_ns()

    def lap(self, name: str, t0: int) -> int:
        """Charge ``now - t0`` to phase ``name``; returns the new
        stamp so laps chain without a second clock read."""
        now = time.perf_counter_ns()
        self._acc_ns[name] = self._acc_ns.get(name, 0) + (now - t0)
        return now

    def add_ns(self, name: str, dur_ns: int) -> None:
        self._acc_ns[name] = self._acc_ns.get(name, 0) + dur_ns

    def totals_ms(self) -> Dict[str, float]:
        return {name: ns / 1e6 for name, ns in self._acc_ns.items()}

    def flush(self) -> Dict[str, float]:
        """Observe one histogram sample per phase
        (``<prefix>.phase.<name>_ms``), clear, and return the totals."""
        totals = self.totals_ms()
        for name, ms in totals.items():
            _metrics.histogram(f"{self.prefix}.phase.{name}_ms").observe(ms)
        self._acc_ns.clear()
        return totals


def tracemalloc_requested() -> bool:
    """True when the user opted into Python-heap peak tracking."""
    return bool(os.environ.get("REPRO_TRACEMALLOC"))


class ResourceProbe:
    """CPU / max-RSS / optional Python-heap accounting for one job.

    Construct at job start, call :meth:`finish` at job end; returns a
    JSON-ready dict (or None when the platform offers nothing)::

        {"cpu_s": 1.92, "max_rss_kb": 151244, "py_peak_kb": 8031}

    ``max_rss_kb`` is the process high-water mark as reported by
    ``getrusage`` (kilobytes on Linux), which only ever grows -- for a
    pool worker that reuses a process the value reflects the largest
    job so far, still the right answer for "will this fit in the
    container".  ``py_peak_kb`` appears only under
    ``REPRO_TRACEMALLOC`` and measures allocations made *during* the
    job.
    """

    __slots__ = ("_t0", "_cpu0", "_tracing", "_started_trace")

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._cpu0: Optional[float] = None
        if _resource is not None:
            ru = _resource.getrusage(_resource.RUSAGE_SELF)
            self._cpu0 = ru.ru_utime + ru.ru_stime
        self._started_trace = False
        self._tracing = tracemalloc_requested()
        if self._tracing:
            import tracemalloc
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_trace = True
            else:
                tracemalloc.reset_peak()

    def finish(self) -> Optional[Dict[str, Any]]:
        usage: Dict[str, Any] = {}
        if _resource is not None and self._cpu0 is not None:
            ru = _resource.getrusage(_resource.RUSAGE_SELF)
            usage["cpu_s"] = round(ru.ru_utime + ru.ru_stime - self._cpu0, 6)
            usage["max_rss_kb"] = int(ru.ru_maxrss)
        if self._tracing:
            import tracemalloc
            if tracemalloc.is_tracing():
                _, peak = tracemalloc.get_traced_memory()
                usage["py_peak_kb"] = peak // 1024
                if self._started_trace:
                    tracemalloc.stop()
        return usage or None
