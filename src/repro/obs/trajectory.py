"""Bench trajectory store and regression gate.

Every benchmark run appends its records to one commit-keyed JSONL file
(``benchmarks/output/BENCH_TRAJECTORY.jsonl`` by default, written
through ``bench_common.write_bench_json``), so the performance history
finally *accumulates* PR over PR instead of being clobbered per run.
This module reads that trajectory back and answers two questions:

* ``python -m repro bench report`` -- what does each metric's history
  look like?  One sparkline row per ``(bench, metric)`` series.
* ``python -m repro bench compare`` -- did the latest commit regress?
  The latest commit's records (median across repeat runs) are compared
  against a rolling baseline: the median of the last
  ``baseline_window`` records from *other* commits.  No other-commit
  history means no verdict -- which is exactly why running the bench
  twice on the same commit reports zero regressions.

Regression direction is unit-aware: throughput-like metrics (unit
``req/s``, names ending ``_per_s`` / ``throughput``) regress when they
*drop*; everything else (seconds, ratios, bytes) regresses when it
*grows*.  The threshold is relative (0.15 = flag a >15 % move in the
bad direction).
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..io.tables import format_table, sparkline

__all__ = ["load_trajectory", "append_records", "compare",
           "format_report", "Comparison", "DEFAULT_TRAJECTORY"]

#: Repo-relative default written by ``bench_common.write_bench_json``.
DEFAULT_TRAJECTORY = "benchmarks/output/BENCH_TRAJECTORY.jsonl"


def append_records(path, records: Sequence[Dict[str, Any]]) -> Path:
    """Append bench records (one JSON object per line) to ``path``,
    creating parents as needed.  Append-mode is the point: the file is
    the accumulated trajectory, never a per-run snapshot."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_trajectory(path) -> List[Dict[str, Any]]:
    """Read a trajectory JSONL file, in file order.

    Torn or non-JSON lines (a benchmark killed mid-write, a merge
    artifact) are skipped rather than poisoning the whole history, as
    are records missing the core fields.
    """
    path = Path(path)
    if not path.is_file():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(record, dict):
                continue
            if not {"bench", "metric", "value"} <= record.keys():
                continue
            try:
                record["value"] = float(record["value"])
            except (TypeError, ValueError):
                continue
            records.append(record)
    return records


def higher_is_better(metric: str, unit: str = "") -> bool:
    """Regression direction for a metric: True when bigger numbers are
    good (throughput), False when they are bad (latency, memory)."""
    metric = metric.lower()
    unit = (unit or "").lower()
    if unit in ("req/s", "ops/s", "steps/s", "cells/s"):
        return True
    return metric.endswith(("_per_s", "_rate", "throughput"))


@dataclass
class Comparison:
    """Verdict for one ``(bench, metric)`` series."""

    bench: str
    metric: str
    unit: str
    latest: float
    baseline: Optional[float]
    change: Optional[float]  #: relative move, sign-normalised: >0 is worse
    regressed: bool
    commit: str
    history: List[float] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {"bench": self.bench, "metric": self.metric,
                "unit": self.unit, "latest": self.latest,
                "baseline": self.baseline, "change": self.change,
                "regressed": self.regressed, "commit": self.commit}


def _series(records: Sequence[Dict[str, Any]]
            ) -> Dict[Tuple[str, str], List[Dict[str, Any]]]:
    series: Dict[Tuple[str, str], List[Dict[str, Any]]] = {}
    for record in records:
        series.setdefault((record["bench"], record["metric"]),
                          []).append(record)
    return series


def compare(records: Sequence[Dict[str, Any]], threshold: float = 0.15,
            baseline_window: int = 5,
            bench: Optional[str] = None) -> List[Comparison]:
    """Compare the newest commit's records against a rolling baseline.

    For each ``(bench, metric)`` series: *latest* is the median of the
    records whose commit matches the trajectory's last-seen commit;
    *baseline* is the median of the trailing ``baseline_window``
    records from earlier commits.  An empty baseline (first commit in
    the file, or re-runs of one commit) yields ``regressed=False`` with
    ``change=None`` -- a gate needs history before it can gate.
    """
    if bench is not None:
        records = [r for r in records if r["bench"] == bench]
    comparisons: List[Comparison] = []
    for (bench_name, metric), rows in sorted(_series(records).items()):
        current_commit = rows[-1].get("commit", "unknown")
        latest_rows = [r for r in rows
                       if r.get("commit", "unknown") == current_commit]
        earlier = [r for r in rows
                   if r.get("commit", "unknown") != current_commit]
        latest = statistics.median(r["value"] for r in latest_rows)
        unit = latest_rows[-1].get("unit", "")
        baseline = change = None
        regressed = False
        if earlier:
            window = earlier[-baseline_window:]
            baseline = statistics.median(r["value"] for r in window)
            if baseline != 0:
                raw = (latest - baseline) / abs(baseline)
                # Normalise sign so positive change always means worse.
                change = -raw if higher_is_better(metric, unit) else raw
                regressed = change > threshold
            elif latest != 0:
                change = float("inf")
                regressed = not higher_is_better(metric, unit)
        comparisons.append(Comparison(
            bench=bench_name, metric=metric, unit=unit, latest=latest,
            baseline=baseline, change=change, regressed=regressed,
            commit=current_commit,
            history=[r["value"] for r in rows]))
    return comparisons


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == 0:
        return "0"
    magnitude = abs(value)
    if magnitude >= 1000 or magnitude < 0.001:
        return f"{value:.3g}"
    return f"{value:.4g}"


def format_report(comparisons: Sequence[Comparison],
                  spark_width: int = 16,
                  title: str = "bench trajectory") -> str:
    """Render comparisons as an aligned table with sparkline history."""
    if not comparisons:
        return f"{title}: no records"
    rows = []
    for c in comparisons:
        if c.change is None:
            delta, verdict = "-", "no baseline"
        else:
            delta = f"{c.change * 100:+.1f}%"
            verdict = "REGRESSED" if c.regressed else "ok"
        rows.append([c.bench, c.metric, _fmt(c.latest), c.unit,
                     _fmt(c.baseline), delta,
                     sparkline(c.history, width=spark_width), verdict])
    return format_table(
        ["bench", "metric", "latest", "unit", "baseline", "delta",
         "history", "verdict"],
        rows, title=title)
