"""The observability master switch.

Both the tracer and the metrics registry guard every hot-path update
with this single module-level flag, so an uninstrumented run (no
exporter or subscriber attached) pays one boolean check and nothing
else.  The flag lives in its own tiny module so :mod:`repro.obs.trace`
and :mod:`repro.obs.metrics` can share it without importing each other.
"""

from __future__ import annotations

#: Read directly (``_state.enabled_flag``) on hot paths; everyone else
#: should go through :func:`enabled`.
enabled_flag = False


def enabled() -> bool:
    """True when an observer is attached (spans/metrics are recorded)."""
    return enabled_flag


def set_enabled(value: bool) -> None:
    global enabled_flag
    enabled_flag = bool(value)
