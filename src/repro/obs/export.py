"""Span exporters: JSONL log, Chrome trace-event JSON, ASCII summary.

Three consumers of the span dicts produced by :mod:`repro.obs.trace`:

* :func:`write_spans_jsonl` -- one span per line, the greppable /
  CI-artifact format;
* :func:`write_chrome_trace` -- the Chrome trace-event format
  (``{"traceEvents": [...]}``, complete-event ``"ph": "X"`` records),
  loadable directly in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``;
* :func:`format_span_summary` -- top-N spans by cumulative time as an
  ASCII table (the ``python -m repro profile`` output), rendered with
  the same :func:`repro.io.tables.format_table` as the paper tables.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence


def to_chrome_trace(spans: Sequence[Dict[str, Any]],
                    metadata: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Convert span dicts to a Chrome trace-event document.

    Timestamps are the wall-clock span starts in microseconds
    (Perfetto's native unit), so spans collected in worker processes
    line up with the parent's on one timeline; each process renders as
    its own track (``pid``).
    """
    events: List[Dict[str, Any]] = []
    for record in spans:
        args = dict(record.get("attrs") or {})
        args["trace_id"] = record.get("trace_id")
        args["span_id"] = record.get("span_id")
        if record.get("parent_id"):
            args["parent_id"] = record["parent_id"]
        events.append({
            "name": record["name"],
            "cat": "repro",
            "ph": "X",
            "ts": record["ts_ns"] / 1000.0,
            "dur": record["dur_ns"] / 1000.0,
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
            "args": args,
        })
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata:
        document["otherData"] = metadata
    return document


def write_chrome_trace(path: str, spans: Sequence[Dict[str, Any]],
                       metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write spans as a Chrome trace-event JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(spans, metadata), handle)
        handle.write("\n")


def write_spans_jsonl(path: str, spans: Sequence[Dict[str, Any]]) -> None:
    """Write spans as JSON Lines (one span object per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in spans:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")


def write_trace_file(path: str, spans: Sequence[Dict[str, Any]],
                     metadata: Optional[Dict[str, Any]] = None) -> str:
    """Write spans in the format implied by the file extension.

    ``*.jsonl`` gets the line-oriented span log; anything else gets the
    Chrome trace-event document.  Returns the format written
    (``"jsonl"`` or ``"chrome"``).
    """
    if path.endswith(".jsonl"):
        write_spans_jsonl(path, spans)
        return "jsonl"
    write_chrome_trace(path, spans, metadata)
    return "chrome"


def summarize_spans(spans: Sequence[Dict[str, Any]]
                    ) -> List[Dict[str, Any]]:
    """Aggregate spans by name: count and cumulative/mean/max duration.

    Sorted by cumulative time, descending.  Durations are reported in
    milliseconds.
    """
    aggregate: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        entry = aggregate.setdefault(
            record["name"],
            {"name": record["name"], "count": 0, "cum_ms": 0.0,
             "max_ms": 0.0})
        dur_ms = record["dur_ns"] / 1e6
        entry["count"] += 1
        entry["cum_ms"] += dur_ms
        if dur_ms > entry["max_ms"]:
            entry["max_ms"] = dur_ms
    rows = sorted(aggregate.values(),
                  key=lambda e: e["cum_ms"], reverse=True)
    for entry in rows:
        entry["mean_ms"] = entry["cum_ms"] / entry["count"]
    return rows

def format_span_summary(spans: Sequence[Dict[str, Any]],
                        top: int = 12) -> str:
    """Top-N spans by cumulative time as an ASCII table."""
    from ..io.tables import format_table

    rows = summarize_spans(spans)
    shown = rows[:max(1, top)]
    body = [[e["name"], str(e["count"]), f"{e['cum_ms']:.2f}",
             f"{e['mean_ms']:.3f}", f"{e['max_ms']:.2f}"]
            for e in shown]
    title = (f"top {len(shown)} of {len(rows)} span names "
             f"({len(spans)} spans) by cumulative time")
    return format_table(["span", "count", "cum (ms)", "mean (ms)",
                         "max (ms)"], body, title=title)
