"""Prometheus text-format rendering of the metrics registry.

Turns an :func:`repro.obs.metrics.snapshot` into the Prometheus
exposition text format (version 0.0.4), which is what a ``GET
/metrics`` scrape endpoint must return.  Mapping:

* counters  -> ``repro_<name>_total`` (``counter``);
* gauges    -> ``repro_<name>`` (``gauge``; unset gauges are omitted);
* histograms -> a conformant ``_bucket{le="<bound>"}`` / ``_sum`` /
  ``_count`` series built from the registry's fixed bucket boundaries,
  cumulative and monotone up to the mandatory ``le="+Inf"`` bucket.
  Buckets that carry an exemplar (a trace id captured at
  ``Histogram.observe``) render it OpenMetrics-style after the sample:
  ``... # {trace_id="a1b2"} 3.8`` -- the breadcrumb from a latency
  spike back to one traced request.

Metric names are sanitised (dots and other invalid characters become
underscores): ``cache.hit`` -> ``repro_cache_hit_total``.  Optional
``# HELP`` lines (registered via :func:`set_help`) precede the
``# TYPE`` line of their metric, and label/help text is escaped per
the exposition-format rules (backslash, double quote, newline).
Non-finite sample values render as ``NaN`` / ``+Inf`` / ``-Inf``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, List, Optional

from . import metrics as _metrics

__all__ = ["render_prometheus", "set_help", "escape_label_value"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: HELP text keyed by *raw* (pre-sanitisation) metric name.
_HELP: Dict[str, str] = {
    "serve.latency_ms": "End-to-end request handling latency.",
    "serve.requests": "HTTP requests accepted by the gate service.",
    "executor.jobs": "Jobs submitted to the runtime executor.",
    "fdtd.steps": "Leapfrog time steps advanced by the scalar solver.",
    "llg.steps": "LLG integrator steps taken.",
}


def set_help(name: str, text: str) -> None:
    """Register a ``# HELP`` line for metric ``name`` (raw name, before
    prefixing/sanitisation)."""
    _HELP[name] = text


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitised fully-qualified Prometheus metric name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _INVALID.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote and line feed."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _format_bound(bound: float) -> str:
    """``le`` label text for a bucket bound: integral bounds render
    bare (``"1"``), fractional ones keep their decimals (``"0.25"``)."""
    return _format_value(float(bound))


def _header(lines: List[str], raw_name: str, full: str, kind: str) -> None:
    help_text = _HELP.get(raw_name)
    if help_text:
        lines.append(f"# HELP {full} {_escape_help(help_text)}")
    lines.append(f"# TYPE {full} {kind}")


def _render_histogram(lines: List[str], raw_name: str, full: str,
                      data: Dict[str, Any]) -> None:
    _header(lines, raw_name, full, "histogram")
    bounds = data.get("bounds") or []
    bucket_counts = data.get("bucket_counts") or []
    exemplars = data.get("exemplars") or {}
    cumulative = 0
    for index, bound in enumerate(bounds):
        if index < len(bucket_counts):
            cumulative += bucket_counts[index]
        le = _format_bound(bound)
        line = f'{full}_bucket{{le="{le}"}} {cumulative}'
        exemplar = exemplars.get(repr(float(bound)))
        if exemplar:
            trace = escape_label_value(exemplar["label"])
            line += (f' # {{trace_id="{trace}"}} '
                     f'{_format_value(float(exemplar["value"]))}')
        lines.append(line)
    count = data.get("count", 0)
    inf_line = f'{full}_bucket{{le="+Inf"}} {count}'
    inf_exemplar = exemplars.get("+Inf")
    if inf_exemplar:
        trace = escape_label_value(inf_exemplar["label"])
        inf_line += (f' # {{trace_id="{trace}"}} '
                     f'{_format_value(float(inf_exemplar["value"]))}')
    lines.append(inf_line)
    lines.append(f"{full}_sum {_format_value(data.get('sum', 0.0))}")
    lines.append(f"{full}_count {count}")


def render_prometheus(snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
                      prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``snapshot`` defaults to the live registry.  The output ends with a
    newline, as the exposition format requires; an empty registry
    renders as a single newline.
    """
    if snapshot is None:
        snapshot = _metrics.snapshot()
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        full = metric_name(name, prefix) + "_total"
        _header(lines, name, full, "counter")
        lines.append(f"{full} {_format_value(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        full = metric_name(name, prefix)
        _header(lines, name, full, "gauge")
        lines.append(f"{full} {_format_value(value)}")

    for name, data in snapshot.get("histograms", {}).items():
        _render_histogram(lines, name, metric_name(name, prefix), data)

    return "\n".join(lines) + "\n"
