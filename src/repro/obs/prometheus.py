"""Prometheus text-format rendering of the metrics registry.

Turns an :func:`repro.obs.metrics.snapshot` into the Prometheus
exposition text format (version 0.0.4), which is what a ``GET
/metrics`` scrape endpoint must return.  Mapping:

* counters  -> ``repro_<name>_total`` (``counter``);
* gauges    -> ``repro_<name>`` (``gauge``; unset gauges are omitted);
* histograms -> ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.
  The registry keeps coarse power-of-two buckets (bucket *i* counts
  observations in ``[2**(i-1), 2**i)``), so the exported ``le`` bounds
  are the powers of two -- coarse but cumulative and monotone, exactly
  what quantile estimation over scrapes needs.

Metric names are sanitised (dots and other invalid characters become
underscores): ``cache.hit`` -> ``repro_cache_hit_total``.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from . import metrics as _metrics

__all__ = ["render_prometheus"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitised fully-qualified Prometheus metric name."""
    full = f"{prefix}_{name}" if prefix else name
    full = _INVALID.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
                      prefix: str = "repro") -> str:
    """Render a metrics snapshot as Prometheus exposition text.

    ``snapshot`` defaults to the live registry.  The output ends with a
    newline, as the exposition format requires.
    """
    if snapshot is None:
        snapshot = _metrics.snapshot()
    lines: List[str] = []

    for name, value in snapshot.get("counters", {}).items():
        full = metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {full} counter")
        lines.append(f"{full} {_format_value(value)}")

    for name, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        full = metric_name(name, prefix)
        lines.append(f"# TYPE {full} gauge")
        lines.append(f"{full} {_format_value(value)}")

    for name, data in snapshot.get("histograms", {}).items():
        full = metric_name(name, prefix)
        lines.append(f"# TYPE {full} histogram")
        cumulative = 0
        # Registry buckets are keyed by the integer exponent i; the
        # upper bound of bucket i is 2**i (bucket 0 holds <= 1).
        buckets = {int(k): v for k, v in (data.get("buckets") or {}).items()}
        for exponent in sorted(buckets):
            cumulative += buckets[exponent]
            bound = 1 if exponent <= 0 else 2 ** exponent
            lines.append(f'{full}_bucket{{le="{bound}"}} {cumulative}')
        lines.append(f'{full}_bucket{{le="+Inf"}} {data.get("count", 0)}')
        lines.append(f"{full}_sum {_format_value(data.get('sum', 0.0))}")
        lines.append(f"{full}_count {data.get('count', 0)}")

    return "\n".join(lines) + "\n"
