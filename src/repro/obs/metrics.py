"""Process-local metrics registry: counters, gauges, histograms.

Instrument sites update named metrics through the module-level helpers
(``counter("cache.hit").inc()``); the registry creates instruments on
first use and :func:`snapshot` renders everything as plain dicts for
JSON export or the CLI summary.

The registry itself always works (tests poke it directly), but the
package convention is that hot paths guard updates with
``obs.enabled()`` -- the same master switch as the tracer -- so a run
with no observer attached pays a single boolean check per site.
Counter/gauge updates are plain attribute writes; under the GIL that
is safe enough for telemetry (worst case a lost increment under heavy
thread contention, never corruption).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional


class Counter:
    """Monotonically increasing count (events, cells, bytes...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-written value of an instantaneous quantity (rates, sizes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """Streaming summary of an observed distribution.

    Tracks count / sum / min / max plus coarse power-of-two buckets
    (bucket ``i`` counts observations in ``[2**(i-1), 2**i)``), which
    is plenty to spot bimodal wall times without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bucket = 0 if value <= 0 else int(math.floor(math.log2(value))) + 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {"count": self.count, "sum": self.total, "mean": self.mean,
                "min": self.min, "max": self.max,
                "buckets": {str(k): v for k, v in sorted(self.buckets.items())}}


class MetricsRegistry:
    """Create-on-first-use store of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name))
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain nested dicts (JSON-ready)."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.as_dict()
                               for n, h in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry used by all package instrumentation.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return REGISTRY.histogram(name)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
