"""Process-local metrics registry: counters, gauges, histograms.

Instrument sites update named metrics through the module-level helpers
(``counter("cache.hit").inc()``); the registry creates instruments on
first use and :func:`snapshot` renders everything as plain dicts for
JSON export or the CLI summary.

The registry itself always works (tests poke it directly), but the
package convention is that hot paths guard updates with
``obs.enabled()`` -- the same master switch as the tracer -- so a run
with no observer attached pays a single boolean check per site.

Updates are **thread-safe**: every instrument carries its own lock, so
the asyncio serve loop, pool-worker span ingest and background flusher
threads can hammer the same counter without losing increments.  The
lock is uncontended in the common case (one writer), which keeps an
``inc()`` in the tens of nanoseconds.

Histograms track fixed bucket boundaries (Prometheus-style ``le``
upper bounds) so :meth:`Histogram.quantile` can answer real p50/p95/
p99 questions and :func:`repro.obs.prometheus.render_prometheus` can
export a conformant ``_bucket``/``_sum``/``_count`` series.  Each
bucket also remembers the most recent *exemplar* (a trace id observed
with a value in that bucket) -- the breadcrumb that links a latency
spike on a dashboard back to one traced request.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple


class Counter:
    """Monotonically increasing count (events, cells, bytes...)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self.value += n

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """Last-written value of an instantaneous quantity (rates, sizes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def as_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


#: Default histogram bucket upper bounds.  Geometric 1-2.5-5 ladder
#: spanning sub-millisecond solver phases through multi-minute sweep
#: jobs; values are unit-agnostic (the serve tier observes
#: milliseconds, the profilers seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0,
)


class Histogram:
    """Fixed-boundary bucket histogram of an observed distribution.

    Tracks count / sum / min / max plus one cumulative-ready counter
    per bucket; ``bounds[i]`` is the *inclusive* upper bound of bucket
    ``i`` (Prometheus ``le`` semantics) and a final overflow bucket
    catches everything above the last bound.  :meth:`quantile`
    estimates order statistics by linear interpolation inside the
    bucket that crosses the requested rank -- exact enough for p50/
    p95/p99 dashboards without storing samples.
    """

    __slots__ = ("name", "count", "total", "min", "max", "bounds",
                 "bucket_counts", "exemplars", "_lock")

    def __init__(self, name: str,
                 buckets: Optional[Sequence[float]] = None):
        bounds = tuple(sorted(float(b) for b in (buckets
                                                 or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError("bucket bounds must be finite "
                             "(+Inf is implicit)")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index len(bounds) is the
        #: +Inf overflow bucket.
        self.bucket_counts = [0] * (len(bounds) + 1)
        #: Most recent exemplar per bucket index: (label, value).
        self.exemplars: Dict[int, Tuple[str, float]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float,
                exemplar: Optional[str] = None) -> None:
        """Record one observation; ``exemplar`` is an optional trace
        id remembered for the bucket the value lands in."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self.bucket_counts[index] += 1
            if exemplar:
                self.exemplars[index] = (str(exemplar), value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``0 <= q <= 1``) of the observed
        distribution; None before any observation.

        Linear interpolation inside the bucket whose cumulative count
        crosses rank ``q * count``, clamped to the observed min/max so
        sparse histograms cannot report values outside the data.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return None
            rank = q * self.count
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count < rank:
                    cumulative += bucket_count
                    continue
                lower = (0.0 if index == 0
                         else self.bounds[index - 1])
                upper = (self.bounds[index]
                         if index < len(self.bounds) else self.max)
                fraction = ((rank - cumulative) / bucket_count
                            if bucket_count else 0.0)
                estimate = lower + (upper - lower) * max(0.0,
                                                         min(1.0, fraction))
                return min(max(estimate, self.min), self.max)
            return self.max

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            buckets: Dict[str, int] = {}
            cumulative = 0
            for index, bucket_count in enumerate(self.bucket_counts):
                cumulative += bucket_count
                if bucket_count:
                    label = ("+Inf" if index == len(self.bounds)
                             else repr(self.bounds[index]))
                    buckets[label] = cumulative
            exemplars = {
                ("+Inf" if index == len(self.bounds)
                 else repr(self.bounds[index])): {"label": label,
                                                  "value": value}
                for index, (label, value) in sorted(self.exemplars.items())}
        stats = {"count": self.count, "sum": self.total, "mean": self.mean,
                 "min": self.min, "max": self.max,
                 "bounds": list(self.bounds),
                 "bucket_counts": list(self.bucket_counts),
                 "buckets": buckets}
        if exemplars:
            stats["exemplars"] = exemplars
        for name, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
            stats[name] = self.quantile(q)
        return stats


class MetricsRegistry:
    """Create-on-first-use store of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        """Get-or-create a histogram.  ``buckets`` only takes effect on
        first creation; later callers share the existing instrument."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(
                    name, Histogram(name, buckets=buckets))
        return instrument

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All instruments as plain nested dicts (JSON-ready)."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {n: h.as_dict()
                               for n, h in sorted(self._histograms.items())},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry used by all package instrumentation.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str,
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    return REGISTRY.histogram(name, buckets=buckets)


def snapshot() -> Dict[str, Dict[str, Any]]:
    return REGISTRY.snapshot()


def reset() -> None:
    REGISTRY.reset()
