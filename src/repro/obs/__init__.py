"""repro.obs: tracing, metrics and logging for the reproduction.

The paper's tables come from long solver runs (FDTD field maps,
micromagnetic LLG integrations) fanned out through the
:mod:`repro.runtime` engine; this subsystem makes the wall time inside
those runs visible:

* **spans** (:func:`span`) -- nested, monotonic-clock timed sections
  with attributes, propagated across ``ProcessPoolExecutor`` workers
  via a serializable :class:`TraceContext`;
* **metrics** (:func:`counter` / :func:`gauge` / :func:`histogram`) --
  named instruments such as ``cache.hit``, ``executor.retry``,
  ``llg.steps``, ``fdtd.cell_updates``;
* **exporters** -- JSONL span logs, Chrome trace-event JSON (loadable
  in Perfetto), ASCII summary tables and the Prometheus text format
  (:func:`render_prometheus`, behind ``GET /metrics`` in
  :mod:`repro.serve`);
* **logging** -- the ``repro`` logger hierarchy
  (:func:`get_logger` / :func:`setup_logging`).

Everything is **opt-in**: until :func:`enable` is called, every
instrument site in the package reduces to one check of a module-level
flag (:func:`enabled`), and :func:`span` returns a shared no-op
singleton.  The micro-benchmark ``benchmarks/bench_obs_overhead.py``
holds the disabled path to < 5 % overhead on a 2k-step FDTD run.

Quickstart
----------
>>> from repro import obs
>>> obs.enable()                              # doctest: +SKIP
>>> with obs.span("my.stage", items=3):
...     obs.counter("my.items").inc(3)
>>> obs.write_chrome_trace("trace.json", obs.drain_spans())  # doctest: +SKIP
>>> obs.disable()                             # doctest: +SKIP

CLI equivalents: ``python -m repro --trace trace.json profile xor
--tier fdtd`` and the global ``--log-level`` flag.  See
``docs/OBSERVABILITY.md``.
"""

from typing import Optional

from . import _state, flight, metrics as _metrics, trace as _trace
from ._state import enabled
from .export import (
    format_span_summary,
    summarize_spans,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace_file,
)
from .logconfig import get_logger, parse_level, setup_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
)
from .profile import PhaseTimer, ResourceProbe
from .prometheus import render_prometheus, set_help
from .trace import (
    NULL_SPAN,
    Span,
    TraceContext,
    activate,
    current_context,
    current_trace_id,
    deactivate,
    drain as drain_spans,
    ingest,
    span,
    spans,
)


def enable(trace_id: Optional[str] = None,
           parent_id: Optional[str] = None) -> str:
    """Attach the observer: start a fresh trace and metrics epoch.

    Returns the trace id (newly generated unless supplied).
    """
    _metrics.reset()
    return _trace.enable(trace_id=trace_id, parent_id=parent_id)


def disable() -> None:
    """Detach the observer; collected spans stay until drained."""
    _trace.disable()


def metrics_snapshot():
    """All metric instruments as plain nested dicts."""
    return _metrics.snapshot()


def reset_metrics() -> None:
    _metrics.reset()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "PhaseTimer",
    "ResourceProbe",
    "Span",
    "TraceContext",
    "activate",
    "counter",
    "current_context",
    "current_trace_id",
    "deactivate",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "flight",
    "format_span_summary",
    "gauge",
    "get_logger",
    "histogram",
    "ingest",
    "metrics_snapshot",
    "parse_level",
    "render_prometheus",
    "reset_metrics",
    "set_help",
    "setup_logging",
    "span",
    "spans",
    "summarize_spans",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "write_trace_file",
]
