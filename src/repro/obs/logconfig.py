"""The ``repro`` logger hierarchy.

Library rule: the package never configures the root logger and stays
silent unless the application asks otherwise -- ``repro/__init__``
attaches a :class:`logging.NullHandler` to the ``"repro"`` logger, and
every module logs through a child (``repro.runtime.executor``,
``repro.runtime.cache``...), obtained via :func:`get_logger`.

Applications (and ``python -m repro --log-level LEVEL``) opt in with
:func:`setup_logging`, which is idempotent: re-invoking it adjusts the
level of the one stream handler it manages instead of stacking
duplicates.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional, Union

ROOT_LOGGER_NAME = "repro"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

#: Marker attribute identifying the handler installed by setup_logging.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    ``get_logger()`` returns the package root; ``get_logger("x.y")``
    returns ``repro.x.y`` (a fully-qualified ``repro.…`` name is used
    as-is).
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def parse_level(level: Union[int, str]) -> int:
    """``"debug"``/``"INFO"``/numeric string/int -> logging level."""
    if isinstance(level, int):
        return level
    text = str(level).strip().upper()
    if text.isdigit():
        return int(text)
    resolved = logging.getLevelName(text)
    if not isinstance(resolved, int):
        raise ValueError(
            f"unknown log level {level!r}; use debug, info, warning, "
            "error, critical or a number")
    return resolved


def setup_logging(level: Union[int, str] = "INFO",
                  stream=None) -> logging.Logger:
    """Attach (or retune) a stream handler on the ``repro`` logger.

    Returns the package root logger.  Raises :class:`ValueError` for an
    unknown level name.
    """
    resolved = parse_level(level)
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    handler = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_FLAG, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    elif stream is not None:
        try:
            handler.setStream(stream)
        except ValueError:
            # setStream flushes the old stream first; if that stream
            # has since been closed (captured stderr from a finished
            # test, a redirected pipe), swap it without flushing.
            handler.stream = stream
    handler.setLevel(resolved)
    logger.setLevel(resolved)
    return logger
