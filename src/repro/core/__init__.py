"""The paper's contribution: triangle-shape FO2 spin-wave logic gates."""

from .logic import (
    and_,
    full_adder,
    input_patterns,
    majority,
    majority_derived,
    nand,
    nor,
    not_,
    or_,
    truth_table,
    xnor,
    xor,
)
from .detection import DetectionResult, PhaseDetector, ThresholdDetector
from .layout import (
    PAPER_FREQUENCY,
    PAPER_WAVELENGTH,
    PAPER_WIDTH,
    GateDimensions,
    GateLayout,
    Segment,
    is_phase_inverting,
    is_phase_preserving,
    maj3_layout,
    paper_maj3_dimensions,
    paper_xor_dimensions,
    segment_length,
    validate_phase_design,
    xor_layout,
)
from .network import Edge, WaveNetwork, network_from_layout
from .calibration import (
    PAPER_ARRIVAL_MODEL,
    PAPER_TABLE_I,
    PAPER_TABLE_II,
    ArrivalModel,
    fit_arrival_model,
)
from .fabric import FabricatedGate, build_wave_simulator, fabricate, settle_periods_for
from .gates import (
    DerivedTriangleGate,
    GateResult,
    TriangleMajorityGate,
    TriangleXorGate,
    paper_table_i_gate,
    paper_table_ii_gate,
)
from .ladder import LadderDimensions, LadderMajorityGate, LadderXorGate
from .device import (
    DetectionMethod,
    SpinWaveDevice,
    Transducer,
    TransducerKind,
    ladder_maj3_device,
    ladder_xor_device,
    triangle_maj3_device,
    triangle_xor_device,
)
from .normalization import (
    AmplitudeNormalizer,
    NormalizerSpec,
    needs_normalizer,
    normalization_cost,
    plan_normalizers,
)

__all__ = [
    "and_", "full_adder", "input_patterns", "majority", "majority_derived",
    "nand", "nor", "not_", "or_", "truth_table", "xnor", "xor",
    "DetectionResult", "PhaseDetector", "ThresholdDetector",
    "PAPER_FREQUENCY", "PAPER_WAVELENGTH", "PAPER_WIDTH",
    "GateDimensions", "GateLayout", "Segment",
    "is_phase_inverting", "is_phase_preserving",
    "maj3_layout", "paper_maj3_dimensions", "paper_xor_dimensions",
    "segment_length", "validate_phase_design", "xor_layout",
    "Edge", "WaveNetwork", "network_from_layout",
    "PAPER_ARRIVAL_MODEL", "PAPER_TABLE_I", "PAPER_TABLE_II",
    "ArrivalModel", "fit_arrival_model",
    "FabricatedGate", "build_wave_simulator", "fabricate",
    "settle_periods_for",
    "DerivedTriangleGate", "GateResult",
    "TriangleMajorityGate", "TriangleXorGate",
    "paper_table_i_gate", "paper_table_ii_gate",
    "LadderDimensions", "LadderMajorityGate", "LadderXorGate",
    "DetectionMethod", "SpinWaveDevice", "Transducer", "TransducerKind",
    "ladder_maj3_device", "ladder_xor_device",
    "triangle_maj3_device", "triangle_xor_device",
    "AmplitudeNormalizer", "NormalizerSpec", "needs_normalizer",
    "normalization_cost", "plan_normalizers",
]
