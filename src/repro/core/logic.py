"""Boolean reference functions and truth-table utilities.

Every gate in the library is checked against these plain-Python
references; they are the ground truth for all functional tests.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

Bit = int
InputPattern = Tuple[Bit, ...]


def check_bits(bits: Sequence[int]) -> Tuple[int, ...]:
    """Validate and normalise a bit sequence.

    Raises
    ------
    ValueError
        If any element is not 0 or 1.
    """
    out = []
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"logic values must be 0 or 1, got {b!r}")
        out.append(int(b))
    return tuple(out)


def majority(*bits: int) -> int:
    """n-input majority (n odd).  MAJ3 is the paper's workhorse.

    >>> majority(0, 1, 1)
    1
    """
    bits = check_bits(bits)
    if len(bits) % 2 == 0:
        raise ValueError("majority needs an odd number of inputs")
    return int(sum(bits) > len(bits) // 2)


def xor(*bits: int) -> int:
    """n-input parity."""
    bits = check_bits(bits)
    return int(sum(bits) % 2)


def xnor(*bits: int) -> int:
    """Complement of parity."""
    return 1 - xor(*bits)


def and_(*bits: int) -> int:
    """n-input AND."""
    bits = check_bits(bits)
    return int(all(bits))


def or_(*bits: int) -> int:
    """n-input OR."""
    bits = check_bits(bits)
    return int(any(bits))


def nand(*bits: int) -> int:
    """n-input NAND."""
    return 1 - and_(*bits)


def nor(*bits: int) -> int:
    """n-input NOR."""
    return 1 - or_(*bits)


def not_(bit: int) -> int:
    """Inverter."""
    (bit,) = check_bits([bit])
    return 1 - bit


#: The derived 2-input functions obtainable from MAJ3 with a control input
#: (Section III-A: I3 = 0 gives AND, I3 = 1 gives OR; inverted variants
#: come from reading the output at d4 = (n+1/2) lambda).
MAJORITY_DERIVED_FUNCTIONS: Dict[str, Tuple[int, bool]] = {
    # name: (control value for I3, invert output?)
    "AND": (0, False),
    "NAND": (0, True),
    "OR": (1, False),
    "NOR": (1, True),
}


def majority_derived(name: str, a: int, b: int) -> int:
    """Evaluate a 2-input function via its MAJ3 embedding.

    >>> majority_derived("AND", 1, 1)
    1
    """
    key = name.upper()
    if key not in MAJORITY_DERIVED_FUNCTIONS:
        raise KeyError(f"unknown derived function {name!r}; "
                       f"options: {sorted(MAJORITY_DERIVED_FUNCTIONS)}")
    control, inverted = MAJORITY_DERIVED_FUNCTIONS[key]
    value = majority(a, b, control)
    return 1 - value if inverted else value


def truth_table(function: Callable[..., int], n_inputs: int
                ) -> Dict[InputPattern, int]:
    """Full truth table of a boolean function.

    >>> truth_table(xor, 2)[(0, 1)]
    1
    """
    if n_inputs < 1:
        raise ValueError("need at least one input")
    return {bits: function(*bits) for bits in product((0, 1), repeat=n_inputs)}


def input_patterns(n_inputs: int) -> List[InputPattern]:
    """All 2^n input patterns in canonical (counting) order."""
    return list(product((0, 1), repeat=n_inputs))


def full_adder(a: int, b: int, carry_in: int) -> Tuple[int, int]:
    """Reference full adder: ``(sum, carry_out)``.

    The paper motivates MAJ3 with exactly this: carry-out *is* a 3-input
    majority and sum is a 3-input parity (Section II-B).
    """
    a, b, carry_in = check_bits((a, b, carry_in))
    return xor(a, b, carry_in), majority(a, b, carry_in)
