"""Analytic wave-propagation network: the fast gate-evaluation tier.

A gate layout is a feed-forward graph of waveguide segments.  Spin-wave
logic at the design point is a *linear, monochromatic* phenomenon, so
the steady state at every node is fully described by a complex envelope
-- waves entering a junction superpose (Section II-B), each segment
multiplies the envelope by ``exp(-i k L)`` and an attenuation factor,
and splitting into several onward arms applies the junction's
transmission coefficient per arm.

This is the model used by the Table I / Table II benchmarks in its
*calibrated* configuration and by the functional test-suite in its
*ideal* configuration (lossless, transmission 1).  Its predictions are
cross-validated against the FDTD and LLG tiers in the integration
tests.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..physics.attenuation import LOSSLESS, AttenuationModel
from ..physics.waves import Wave, superpose
from .layout import GateLayout


@dataclass(frozen=True)
class Edge:
    """A directed waveguide segment of the propagation graph.

    Attributes
    ----------
    source, target:
        Node names.
    length:
        Physical length [m].
    transmission:
        Extra amplitude factor for this edge (junction insertion loss,
        splitter ratio); 1.0 is ideal.
    """

    source: str
    target: str
    length: float
    transmission: float = 1.0

    def __post_init__(self) -> None:
        if self.length < 0:
            raise ValueError("edge length must be non-negative")
        if not 0.0 <= self.transmission <= 1.0:
            raise ValueError("edge transmission must be in [0, 1]")


class WaveNetwork:
    """Feed-forward complex-envelope propagation over a gate graph.

    Parameters
    ----------
    frequency:
        Operating frequency [Hz].
    wavelength:
        Operating wavelength [m]; fixes ``k = 2 pi / lambda``.
    attenuation:
        Viscous-loss model applied along edge lengths.
    """

    def __init__(self, frequency: float, wavelength: float,
                 attenuation: AttenuationModel = LOSSLESS):
        if frequency <= 0 or wavelength <= 0:
            raise ValueError("frequency and wavelength must be positive")
        self.frequency = frequency
        self.wavelength = wavelength
        self.wavenumber = 2.0 * math.pi / wavelength
        self.attenuation = attenuation
        self._edges: List[Edge] = []
        self._nodes: Dict[str, None] = {}

    # -- construction -------------------------------------------------------------

    def add_node(self, name: str) -> None:
        """Declare a node (sources/sinks are added implicitly by edges)."""
        self._nodes[name] = None

    def add_edge(self, source: str, target: str, length: float,
                 transmission: float = 1.0) -> None:
        """Add a directed segment.  The graph must stay acyclic."""
        self._nodes[source] = None
        self._nodes[target] = None
        self._edges.append(Edge(source, target, length, transmission))

    @property
    def nodes(self) -> List[str]:
        return list(self._nodes)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    def _topological_order(self) -> List[str]:
        """Kahn's algorithm; raises on cycles (waveguide loops need the
        full solvers, not this feed-forward model)."""
        indegree = {n: 0 for n in self._nodes}
        for e in self._edges:
            indegree[e.target] += 1
        ready = [n for n, d in indegree.items() if d == 0]
        order: List[str] = []
        remaining = dict(indegree)
        while ready:
            node = ready.pop()
            order.append(node)
            for e in self._edges:
                if e.source == node:
                    remaining[e.target] -= 1
                    if remaining[e.target] == 0:
                        ready.append(e.target)
        if len(order) != len(self._nodes):
            raise ValueError("propagation graph has a cycle; the "
                             "feed-forward network model cannot evaluate it")
        return order

    # -- evaluation ---------------------------------------------------------------

    def propagate(self, injections: Mapping[str, complex]
                  ) -> Dict[str, complex]:
        """Steady-state complex envelope at every node.

        Parameters
        ----------
        injections:
            node name -> injected complex envelope (the source waves).

        Returns
        -------
        dict
            node -> total envelope (sum of all arriving partial waves
            plus any injection), i.e. the interference result at that
            point.
        """
        unknown = set(injections) - set(self._nodes)
        if unknown:
            raise KeyError(f"injection at unknown node(s) {sorted(unknown)}")
        envelope: Dict[str, complex] = {
            n: complex(injections.get(n, 0.0)) for n in self._nodes}
        order = self._topological_order()
        for node in order:
            value = envelope[node]
            if value == 0:
                continue
            for e in self._edges:
                if e.source != node:
                    continue
                factor = (e.transmission
                          * self.attenuation.path_factor(e.length)
                          * cmath.exp(-1j * self.wavenumber * e.length))
                envelope[e.target] += value * factor
        return envelope

    def output_wave(self, injections: Mapping[str, complex],
                    output: str) -> Wave:
        """Convenience: the arriving wave at a single output node."""
        env = self.propagate(injections)
        return Wave.from_complex(env[output], self.frequency)


def network_from_layout(layout: GateLayout, frequency: float,
                        attenuation: AttenuationModel = LOSSLESS,
                        junction_transmission: float = 1.0) -> WaveNetwork:
    """Build the propagation graph of a triangle-gate layout.

    Edges follow the physical wave flow of Section III-A:

    * input arms merging at ``M``, then the stem M -> C;
    * C splits into both far arms (K1, K2) -- the interference result
      continues into *both* arms, which is what makes the fan-out free;
    * I3's feed arms into K1/K2 (MAJ3 only);
    * output arms K -> (B) -> O.

    ``junction_transmission`` is applied to every edge leaving a
    junction node (M, C, K1, K2): it models the scattering/insertion
    loss of a waveguide junction; 1.0 gives the ideal textbook gate.
    """
    net = WaveNetwork(frequency, layout.dimensions.wavelength, attenuation)
    junction_nodes = {"M", "C", "K1", "K2"}
    for seg in layout.segments:
        transmission = (junction_transmission
                        if seg.start_node in junction_nodes else 1.0)
        net.add_edge(seg.start_node, seg.end_node, seg.length, transmission)
    return net
