"""Geometric layout of the triangle FO2 gates (Figures 3 and 4).

Section III of the paper gives the dimensioning rules:

* the waveguide width must satisfy ``w <= lambda`` (clean interference);
* segments ``d1, d2, d3`` must be ``n * lambda`` for same-phase
  constructive interference (or ``(n + 1/2) * lambda`` for the inverted
  behaviour);
* the output distance ``d4`` is ``n * lambda`` for a non-inverting
  output and ``(n + 1/2) * lambda`` for logic inversion;
* for the XOR's threshold detection the output distance should be as
  small as possible (the paper uses 40 nm, *not* a lambda multiple,
  because only amplitude matters there).

With lambda = 55 nm the paper selects d1 = 330 nm (6 lambda),
d2 = 880 nm (16 lambda), d3 = 220 nm (4 lambda), d4 = 55 nm (1 lambda)
for MAJ3, and d1 = 330 nm, d2 = 40 nm for XOR.

The figures in the published PDF do not pin down every vertex
coordinate, so this module reconstructs a concrete symmetric layout
with exactly the paper's path-length semantics (documented in
DESIGN.md):

* I1 and I2 launch waves along diagonal input arms of length d1 that
  *merge* at node ``M`` -- "the excited SWs at I1 and I2 propagate
  diagonally until reaching the crossing points where they interfere";
* the superposition travels a short axial stem ``M -> C`` (length
  ``stem``, an integer number of wavelengths; the published figure does
  not dimension the junction region, so this is a reconstruction
  parameter) and *splits* symmetrically into two diagonal arms of
  length d1 ending at the second-stage junctions K1/K2 -- the split is
  what makes the fan-out free;
* I3 feeds both K1 and K2 through two arms of length d2 each, so the
  I1/I2 result interferes with I3's wave "at both interfering points";
* the outputs sit d3 + d4 beyond K1/K2 for MAJ3 (phase readout) and at
  the small distance d2_xor beyond the corner points for XOR
  (threshold readout).

A plain 4-port X-crossing was rejected during cross-validation against
the wave-FDTD tier: at 90 degrees the beams pass through each other
with little modal mixing, so the outputs would carry the individual
waves instead of their superposition.  The merge-stem-split topology
forces complete interference in the single-mode stem while keeping
every path length at the paper's lambda multiples.

All interference-relevant path lengths are integer multiples of lambda,
so the phase logic is identical to the paper's.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

Point = Tuple[float, float]

#: Design wavelength of the paper [m].
PAPER_WAVELENGTH = 55e-9
#: Waveguide width of the paper [m].
PAPER_WIDTH = 50e-9
#: Operating frequency the paper quotes [Hz].
PAPER_FREQUENCY = 10e9


def segment_length(n_wavelengths: float, wavelength: float,
                   inverted: bool = False) -> float:
    """Length of a phase-design segment.

    ``n * lambda`` preserves phase; ``(n + 1/2) * lambda`` inverts it
    (Section III-A).
    """
    if n_wavelengths < 0:
        raise ValueError("n_wavelengths must be non-negative")
    if wavelength <= 0:
        raise ValueError("wavelength must be positive")
    n = n_wavelengths + (0.5 if inverted else 0.0)
    return n * wavelength


def is_phase_preserving(length: float, wavelength: float,
                        tolerance: float = 1e-3) -> bool:
    """True if ``length`` is an integer number of wavelengths."""
    ratio = length / wavelength
    return abs(ratio - round(ratio)) < tolerance


def is_phase_inverting(length: float, wavelength: float,
                       tolerance: float = 1e-3) -> bool:
    """True if ``length`` is a half-integer number of wavelengths."""
    ratio = length / wavelength - 0.5
    return abs(ratio - round(ratio)) < tolerance


@dataclass(frozen=True)
class GateDimensions:
    """The d1...d4 dimension set of Figure 3 / Figure 4.

    Attributes (all [m]):
        d1: diagonal arm length (input arms and split arms).
        d2: I3 feed-arm length (MAJ3) -- phase-critical.
        d3: output-arm first segment (MAJ3) -- phase-critical.
        d4: final output distance; n*lambda = buffer, (n+1/2)*lambda =
            inverter (MAJ3).  For XOR, ``d2_xor`` replaces d2..d4.
        stem: axial merge-to-split segment (reconstruction parameter,
            must be n*lambda; 2*lambda by default).
    """

    wavelength: float
    width: float
    d1: float
    d2: float = 0.0
    d3: float = 0.0
    d4: float = 0.0
    d2_xor: float = 0.0
    stem: float = 0.0

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.width > self.wavelength:
            raise ValueError(
                f"waveguide width ({self.width * 1e9:.1f} nm) must not exceed "
                f"the wavelength ({self.wavelength * 1e9:.1f} nm) -- "
                "Section III-A's interference-pattern condition")


def paper_maj3_dimensions(wavelength: float = PAPER_WAVELENGTH,
                          width: float = PAPER_WIDTH,
                          invert_output: bool = False) -> GateDimensions:
    """The paper's MAJ3 dimension set, rescalable to any wavelength.

    The lambda-multiples (6, 16, 4, 1) are those of Section IV-A:
    330/880/220/55 nm at lambda = 55 nm.  ``invert_output`` adds half a
    wavelength to d4, turning the gate into NMAJ (and its derived gates
    into NAND/NOR).
    """
    return GateDimensions(
        wavelength=wavelength,
        width=width,
        d1=segment_length(6, wavelength),
        d2=segment_length(16, wavelength),
        d3=segment_length(4, wavelength),
        d4=segment_length(1, wavelength, inverted=invert_output),
        stem=segment_length(2, wavelength),
    )


def paper_xor_dimensions(wavelength: float = PAPER_WAVELENGTH,
                         width: float = PAPER_WIDTH,
                         output_distance: Optional[float] = None
                         ) -> GateDimensions:
    """The paper's XOR dimension set: d1 = 6 lambda, output at 40 nm.

    ``output_distance`` overrides the 40 nm detector offset (the paper:
    "d2 must be as small as possible to capture stronger spin wave").
    """
    d2_xor = 40e-9 * (wavelength / PAPER_WAVELENGTH) \
        if output_distance is None else output_distance
    return GateDimensions(
        wavelength=wavelength,
        width=width,
        d1=segment_length(6, wavelength),
        d2_xor=d2_xor,
        stem=segment_length(2, wavelength),
    )


@dataclass(frozen=True)
class Segment:
    """A straight waveguide segment between two named nodes."""

    start_node: str
    end_node: str
    start: Point
    end: Point

    @property
    def length(self) -> float:
        return math.hypot(self.end[0] - self.start[0],
                          self.end[1] - self.start[1])


@dataclass
class GateLayout:
    """Concrete coordinates of a gate: nodes, segments, terminals.

    Attributes
    ----------
    kind:
        "maj3" or "xor".
    dimensions:
        The d-set this layout realises.
    nodes:
        name -> (x, y) [m].  Input terminals are "I1", "I2" (and "I3"),
        outputs "O1"/"O2", junctions "C" (X-crossing), "K1"/"K2"
        (second-stage), "B1"/"B2" (output-arm bends, MAJ3 only).
    segments:
        The waveguide strips composing the gate.
    """

    kind: str
    dimensions: GateDimensions
    nodes: Dict[str, Point]
    segments: List[Segment]

    @property
    def input_names(self) -> List[str]:
        return sorted(n for n in self.nodes if n.startswith("I"))

    @property
    def output_names(self) -> List[str]:
        return sorted(n for n in self.nodes if n.startswith("O"))

    def bounding_box(self, margin: float = 0.0
                     ) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` over all nodes, plus margin."""
        xs = [p[0] for p in self.nodes.values()]
        ys = [p[1] for p in self.nodes.values()]
        return (min(xs) - margin, min(ys) - margin,
                max(xs) + margin, max(ys) + margin)

    def translated(self, dx: float, dy: float) -> "GateLayout":
        """A copy shifted by ``(dx, dy)`` (to place on a canvas)."""
        nodes = {k: (x + dx, y + dy) for k, (x, y) in self.nodes.items()}
        segments = [Segment(s.start_node, s.end_node,
                            (s.start[0] + dx, s.start[1] + dy),
                            (s.end[0] + dx, s.end[1] + dy))
                    for s in self.segments]
        return GateLayout(self.kind, self.dimensions, nodes, segments)

    def path_length(self, *node_names: str) -> float:
        """Total straight-line path length through the listed nodes."""
        if len(node_names) < 2:
            raise ValueError("need at least two nodes for a path")
        total = 0.0
        for a, b in zip(node_names, node_names[1:]):
            pa, pb = self.nodes[a], self.nodes[b]
            total += math.hypot(pb[0] - pa[0], pb[1] - pa[1])
        return total


_SQRT2 = math.sqrt(2.0)


def _skeleton(dims: GateDimensions) -> Dict[str, Point]:
    """Common merge-stem-split skeleton node positions.

    ``M`` at the origin; I1/I2 up-left / down-left at 45 degrees (arm
    length d1); ``C`` (the split) a stem-length to the right of M;
    K1/K2 up-right / down-right of C at 45 degrees (arm length d1).
    """
    if dims.stem <= 0:
        raise ValueError("the merge-stem-split reconstruction needs stem > 0")
    h = dims.d1 / _SQRT2  # 45-degree projections of the diagonal arms
    m = (0.0, 0.0)
    c = (dims.stem, 0.0)
    return {
        "M": m,
        "C": c,
        "I1": (-h, +h),
        "I2": (-h, -h),
        "K1": (c[0] + h, +h),
        "K2": (c[0] + h, -h),
    }


def maj3_layout(dimensions: Optional[GateDimensions] = None) -> GateLayout:
    """Build the triangle FO2 MAJ3 layout (Figure 3 reconstruction).

    Geometry (x to the right, y upward, all lengths from ``dimensions``):

    * input arms I1 -> M and I2 -> M (length d1, 45 degrees) merging at
      ``M``, then the stem M -> C;
    * split arms C -> K1 and C -> K2 (length d1, 45 degrees);
    * ``I3`` on the symmetry axis right of C, placed so that
      |I3 K1| = |I3 K2| = d2;
    * output arms K1 -> B1 -> O1 (and mirrored K2 -> B2 -> O2): d3 from
      K to the bend B continuing outward at 45 degrees, then d4 to O.
    """
    dims = dimensions if dimensions is not None else paper_maj3_dimensions()
    if dims.d2 <= 0 or dims.d3 <= 0 or dims.d4 <= 0:
        raise ValueError("MAJ3 needs d2, d3 and d4 > 0; did you pass XOR "
                         "dimensions?")
    nodes = _skeleton(dims)
    h = dims.d1 / _SQRT2
    k1, k2 = nodes["K1"], nodes["K2"]
    if dims.d2 <= h:
        raise ValueError("d2 must exceed d1/sqrt(2) for I3 to sit on the "
                         "symmetry axis")
    i3 = (k1[0] + math.sqrt(dims.d2 ** 2 - h ** 2), 0.0)
    # Output arms continue outward at 45 degrees away from the axis.
    db3 = dims.d3 / _SQRT2
    b1 = (k1[0] + db3, k1[1] + db3)
    b2 = (k2[0] + db3, k2[1] - db3)
    db4 = dims.d4 / _SQRT2
    o1 = (b1[0] + db4, b1[1] + db4)
    o2 = (b2[0] + db4, b2[1] - db4)
    nodes.update({"I3": i3, "B1": b1, "B2": b2, "O1": o1, "O2": o2})

    segments = [
        Segment("I1", "M", nodes["I1"], nodes["M"]),
        Segment("I2", "M", nodes["I2"], nodes["M"]),
        Segment("M", "C", nodes["M"], nodes["C"]),
        Segment("C", "K1", nodes["C"], k1),
        Segment("C", "K2", nodes["C"], k2),
        Segment("I3", "K1", i3, k1),
        Segment("I3", "K2", i3, k2),
        Segment("K1", "B1", k1, b1),
        Segment("K2", "B2", k2, b2),
        Segment("B1", "O1", b1, o1),
        Segment("B2", "O2", b2, o2),
    ]
    return GateLayout("maj3", dims, nodes, segments)


def xor_layout(dimensions: Optional[GateDimensions] = None) -> GateLayout:
    """Build the triangle FO2 XOR layout (Figure 4 reconstruction).

    The MAJ3 structure with the third input removed: the merge-stem-
    split skeleton with its four d1 arms remains, and the outputs sit a
    short distance ``d2_xor`` beyond the far corner points (threshold
    detection wants maximum amplitude, so the detectors hug the
    structure).
    """
    dims = dimensions if dimensions is not None else paper_xor_dimensions()
    if dims.d2_xor <= 0:
        raise ValueError("XOR needs d2_xor > 0; did you pass MAJ3 dimensions?")
    nodes = _skeleton(dims)
    k1, k2 = nodes["K1"], nodes["K2"]
    dd = dims.d2_xor / _SQRT2
    o1 = (k1[0] + dd, k1[1] + dd)
    o2 = (k2[0] + dd, k2[1] - dd)
    nodes.update({"O1": o1, "O2": o2})

    segments = [
        Segment("I1", "M", nodes["I1"], nodes["M"]),
        Segment("I2", "M", nodes["I2"], nodes["M"]),
        Segment("M", "C", nodes["M"], nodes["C"]),
        Segment("C", "K1", nodes["C"], k1),
        Segment("C", "K2", nodes["C"], k2),
        Segment("K1", "O1", k1, o1),
        Segment("K2", "O2", k2, o2),
    ]
    return GateLayout("xor", dims, nodes, segments)


def validate_phase_design(layout: GateLayout,
                          tolerance: float = 1e-3) -> Dict[str, bool]:
    """Check the lambda-multiple conditions of Section III-A on a layout.

    Returns a dict of named checks -> pass/fail.  For MAJ3 all
    interference paths must be phase-preserving; for XOR only the d1
    symmetry matters (threshold detection ignores absolute phase).
    """
    lam = layout.dimensions.wavelength
    checks: Dict[str, bool] = {}
    if layout.kind == "maj3":
        checks["I1->M is n*lambda"] = is_phase_preserving(
            layout.path_length("I1", "M"), lam, tolerance)
        checks["I2->M is n*lambda"] = is_phase_preserving(
            layout.path_length("I2", "M"), lam, tolerance)
        checks["M->C (stem) is n*lambda"] = is_phase_preserving(
            layout.path_length("M", "C"), lam, tolerance)
        checks["C->K1 is n*lambda"] = is_phase_preserving(
            layout.path_length("C", "K1"), lam, tolerance)
        checks["I3->K1 is n*lambda"] = is_phase_preserving(
            layout.path_length("I3", "K1"), lam, tolerance)
        out_path = layout.path_length("K1", "B1", "O1")
        checks["K->O is n*lambda or (n+1/2)*lambda"] = (
            is_phase_preserving(out_path, lam, tolerance)
            or is_phase_inverting(out_path, lam, tolerance))
        checks["symmetry O1/O2"] = abs(
            layout.path_length("K1", "B1", "O1")
            - layout.path_length("K2", "B2", "O2")) < tolerance * lam
        checks["symmetry I3 arms"] = abs(
            layout.path_length("I3", "K1")
            - layout.path_length("I3", "K2")) < tolerance * lam
    elif layout.kind == "xor":
        checks["I1->M == I2->M"] = abs(
            layout.path_length("I1", "M")
            - layout.path_length("I2", "M")) < tolerance * lam
        checks["C->O1 == C->O2"] = abs(
            layout.path_length("C", "K1", "O1")
            - layout.path_length("C", "K2", "O2")) < tolerance * lam
    else:
        raise ValueError(f"unknown layout kind {layout.kind!r}")
    checks["width <= lambda"] = layout.dimensions.width <= lam
    return checks
