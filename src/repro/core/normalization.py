"""Spin-wave amplitude normalization (the ref [8] building block).

The triangle gates emit *data-dependent* amplitudes: the MAJ3 output is
~3x stronger for unanimous inputs than for 2-1 majorities, and the XOR
output is the data itself (large/small).  Phase-detected gates tolerate
this, but a threshold-detected gate downstream mis-reads a weak
phase-correct wave.  The authors' companion work (Mahmoud et al.,
"Spin wave normalization toward all magnonic circuits", IEEE TCAS-I
2020 -- ref [8] of the paper) inserts a *normalizer* between stages:
a block that outputs a standard-amplitude wave carrying the input's
phase.

This module models such a normalizer at the network tier and provides
the cascade helper that decides where normalizers are required, making
multi-stage threshold logic well-defined in the circuit layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..evaluation.transducers import PAPER_ME_CELL, METransducer
from ..physics.waves import Wave


@dataclass(frozen=True)
class NormalizerSpec:
    """Operating window and cost of an amplitude normalizer.

    Attributes
    ----------
    output_amplitude:
        The standardised amplitude emitted for any in-window input.
    min_input / max_input:
        Amplitude window the block can lock onto; inputs below
        ``min_input`` are treated as absent (no wave, an error for
        phase logic) rather than normalised noise.
    transducer:
        The ME cell pair implementing the block (detect + re-excite);
        sets the energy/delay cost.
    """

    output_amplitude: float = 1.0
    min_input: float = 0.05
    max_input: float = 10.0
    transducer: METransducer = PAPER_ME_CELL

    def __post_init__(self) -> None:
        if self.output_amplitude <= 0:
            raise ValueError("output amplitude must be positive")
        if not 0.0 < self.min_input < self.max_input:
            raise ValueError("need 0 < min_input < max_input")

    @property
    def energy(self) -> float:
        """One re-excitation per pass [J]."""
        return self.transducer.excitation_energy

    @property
    def delay(self) -> float:
        """One transducer response [s]."""
        return self.transducer.delay


class AmplitudeNormalizer:
    """Phase-preserving amplitude standardisation block."""

    def __init__(self, spec: Optional[NormalizerSpec] = None):
        self.spec = spec if spec is not None else NormalizerSpec()

    def normalize(self, wave: Wave) -> Wave:
        """Emit the standard-amplitude wave with the input's phase.

        Raises
        ------
        ValueError
            If the input lies outside the lockable window.
        """
        spec = self.spec
        if wave.amplitude < spec.min_input:
            raise ValueError(
                f"input amplitude {wave.amplitude:.3g} below the "
                f"normalizer window ({spec.min_input:.3g}); the wave "
                "was lost upstream")
        if wave.amplitude > spec.max_input:
            raise ValueError(
                f"input amplitude {wave.amplitude:.3g} above the "
                f"normalizer window ({spec.max_input:.3g})")
        return Wave(amplitude=spec.output_amplitude, phase=wave.phase,
                    frequency=wave.frequency)

    def normalize_many(self, waves: Sequence[Wave]) -> List[Wave]:
        """Normalise a bundle (e.g. both FO2 outputs)."""
        return [self.normalize(w) for w in waves]


def needs_normalizer(producer_detection: str,
                     consumer_detection: str) -> bool:
    """Does a producer->consumer gate link need a normalizer?

    The rule of ref [8] as used here:

    * into a *phase*-detected consumer: no -- phase survives amplitude
      variation (as long as the wave stays detectable);
    * into a *threshold*-detected consumer: yes, unless the producer is
      itself threshold-style with a standardised output.  Majority
      gates emit 1x or 3x amplitudes (data-dependent), and XOR gates
      emit the data as amplitude -- both would corrupt a downstream
      threshold decision.
    """
    producer = producer_detection.lower()
    consumer = consumer_detection.lower()
    for value in (producer, consumer):
        if value not in ("phase", "threshold"):
            raise ValueError(f"unknown detection scheme {value!r}")
    return consumer == "threshold"


#: Gate types whose outputs are read by phase downstream.
_PHASE_TYPES = {"MAJ3", "NMAJ3", "AND", "NAND", "OR", "NOR"}
#: Gate types read by threshold.
_THRESHOLD_TYPES = {"XOR", "XNOR", "NOT"}


def plan_normalizers(netlist) -> List[Tuple[str, str]]:
    """Find the producer->consumer links of a netlist needing normalizers.

    Returns
    -------
    list
        ``(net, consumer_gate_name)`` pairs where an
        :class:`AmplitudeNormalizer` must be inserted for the
        downstream threshold detection to be reliable.
    """
    detection_of = {}
    for gate in netlist.gates.values():
        if gate.gate_type in _PHASE_TYPES:
            detection_of[gate.name] = "phase"
        elif gate.gate_type in _THRESHOLD_TYPES:
            detection_of[gate.name] = "threshold"
        else:
            detection_of[gate.name] = "passive"
    drivers = netlist.net_drivers()
    required: List[Tuple[str, str]] = []
    for gate in netlist.gates.values():
        if detection_of[gate.name] != "threshold":
            continue
        for net in gate.inputs:
            owners = drivers.get(net, [])
            if not owners:
                continue  # primary input: freshly excited, standard level
            producer = owners[0]
            if detection_of[producer] == "passive":
                continue  # splitters keep the (already normal) level
            required.append((net, gate.name))
    return required


def normalization_cost(netlist,
                       spec: Optional[NormalizerSpec] = None
                       ) -> Tuple[int, float, float]:
    """Count and price the normalizers a netlist needs.

    Returns
    -------
    tuple
        ``(count, total_energy, worst_case_added_delay)``.
    """
    spec = spec if spec is not None else NormalizerSpec()
    links = plan_normalizers(netlist)
    return len(links), len(links) * spec.energy, \
        (spec.delay if links else 0.0)
