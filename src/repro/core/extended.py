"""Extensions sketched in Section III-A (last paragraph).

Two scaling directions the paper claims but does not evaluate:

* **more inputs** -- "more inputs can be added below I2 or above I1 and
  I3": :class:`TriangleMajority5Gate` stacks a second excitation cell
  on each input arm (I4 below I2's arm, I5 above I1's arm), one
  wavelength upstream, giving a fan-in-5 majority with the same
  triangle body and still only two detection cells;
* **more outputs** -- "the gate fan-out capabilities can be extended
  beyond 2 by using directional couplers [36] ... and repeaters [37]":
  :class:`FanoutTree` plans and models a coupler/repeater tree that
  turns one gate output into N full-strength copies, with the energy
  and delay bookkeeping the circuit layer needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuits.components import DirectionalCoupler, Repeater
from ..evaluation.transducers import PAPER_ME_CELL, METransducer
from ..physics.attenuation import LOSSLESS, AttenuationModel
from ..physics.waves import Wave
from .detection import DetectionResult, PhaseDetector
from .layout import GateDimensions, paper_maj3_dimensions, segment_length
from .logic import check_bits, input_patterns, majority
from .network import WaveNetwork


class TriangleMajority5Gate:
    """Fan-in-5, fan-out-2 majority gate with stacked input cells.

    Topology: the MAJ3 merge-stem-split skeleton, with two extra
    excitation cells one design wavelength upstream on the input arms
    (I5 above I1, I4 below I2).  Waves from stacked cells co-propagate
    on the shared arm and superpose en route -- the interference at the
    stem then carries the 4-wave sum of the arm inputs plus I3's feed
    at the K junctions, implementing MAJ5 with 5 excitation + 2
    detection cells (vs 7 cells for two cascaded MAJ3).

    All stacking offsets are integer wavelengths, so every input keeps
    the plain phase encoding.
    """

    def __init__(self, dimensions: Optional[GateDimensions] = None,
                 frequency: float = 10e9,
                 stack_offset_wavelengths: int = 1,
                 attenuation: AttenuationModel = LOSSLESS):
        if stack_offset_wavelengths < 1:
            raise ValueError("stacked cells need at least 1 wavelength "
                             "of separation")
        self.dimensions = dimensions if dimensions is not None \
            else paper_maj3_dimensions()
        self.frequency = frequency
        self.attenuation = attenuation
        self.stack_offset = segment_length(stack_offset_wavelengths,
                                           self.dimensions.wavelength)
        self.network = self._build_network()
        self._reference: Optional[Dict[str, float]] = None

    def _build_network(self) -> WaveNetwork:
        d = self.dimensions
        net = WaveNetwork(self.frequency, d.wavelength, self.attenuation)
        # Stacked cells feed the arm entry points; the arm then merges.
        net.add_edge("I5", "I1", self.stack_offset)
        net.add_edge("I4", "I2", self.stack_offset)
        net.add_edge("I1", "M", d.d1)
        net.add_edge("I2", "M", d.d1)
        net.add_edge("M", "C", d.stem)
        net.add_edge("C", "K1", d.d1)
        net.add_edge("C", "K2", d.d1)
        net.add_edge("I3", "K1", d.d2)
        net.add_edge("I3", "K2", d.d2)
        net.add_edge("K1", "O1", d.d3 + d.d4)
        net.add_edge("K2", "O2", d.d3 + d.d4)
        return net

    @property
    def input_names(self) -> List[str]:
        return ["I1", "I2", "I3", "I4", "I5"]

    @property
    def output_names(self) -> List[str]:
        return ["O1", "O2"]

    @property
    def n_excitation_cells(self) -> int:
        return 5

    @property
    def n_detection_cells(self) -> int:
        return 2

    @property
    def n_cells(self) -> int:
        """7 cells total -- each extra input costs exactly one cell,
        versus a full extra 5-cell gate in a replication-based design."""
        return self.n_excitation_cells + self.n_detection_cells

    def evaluate(self, bits: Sequence[int]) -> Dict[str, DetectionResult]:
        """Phase-detect both outputs for (I1, ..., I5)."""
        bits = check_bits(bits)
        if len(bits) != 5:
            raise ValueError(f"MAJ5 takes 5 inputs, got {len(bits)}")
        injections = {name: Wave.logic(bit, self.frequency).envelope
                      for name, bit in zip(self.input_names, bits)}
        env = self.network.propagate(injections)
        if self._reference is None:
            zeros = self.network.propagate(
                {n: Wave.logic(0, self.frequency).envelope
                 for n in self.input_names})
            self._reference = {
                o: Wave.from_complex(zeros[o], self.frequency).phase
                for o in self.output_names}
        results = {}
        for name in self.output_names:
            detector = PhaseDetector(reference_phase=self._reference[name])
            results[name] = detector.detect_envelope(env[name],
                                                     self.frequency)
        return results

    def truth_table(self) -> Dict[Tuple[int, ...], Dict[str, DetectionResult]]:
        """All 32 input patterns."""
        return {bits: self.evaluate(bits) for bits in input_patterns(5)}

    def is_functionally_correct(self) -> bool:
        """MAJ5 on every pattern at both outputs."""
        for bits, outputs in self.truth_table().items():
            expected = majority(*bits)
            if any(r.logic_value != expected for r in outputs.values()):
                return False
        return True


@dataclass(frozen=True)
class FanoutPlan:
    """Cost summary of a fan-out tree."""

    target_fanout: int
    n_couplers: int
    n_repeaters: int
    tree_depth: int
    leaf_amplitude_before_repeaters: float
    energy: float
    delay: float


class FanoutTree:
    """Coupler/repeater tree extending fan-out beyond the native 2.

    A binary tree of :class:`DirectionalCoupler` splits the wave; each
    split halves the power, so after ``depth`` levels the per-leaf
    amplitude is ``(excess_loss / sqrt(2))^depth``.  One
    :class:`Repeater` per leaf restores full amplitude (costing one ME
    excitation and one cell delay), provided the arriving amplitude is
    still above the repeater's sensitivity -- the tree-depth limit this
    class computes.
    """

    def __init__(self, coupler: Optional[DirectionalCoupler] = None,
                 repeater: Optional[Repeater] = None):
        self.coupler = coupler if coupler is not None \
            else DirectionalCoupler(n_arms=2)
        self.repeater = repeater if repeater is not None else Repeater()

    def depth_for(self, fanout: int) -> int:
        """Tree depth delivering at least ``fanout`` leaves."""
        if fanout < 1:
            raise ValueError("fan-out must be at least 1")
        depth = 0
        leaves = 1
        while leaves < fanout:
            leaves *= self.coupler.n_arms
            depth += 1
        return depth

    def max_fanout(self, input_amplitude: float = 1.0) -> int:
        """Largest achievable fan-out before leaves drop below the
        repeater sensitivity."""
        depth = 0
        amplitude = input_amplitude
        factor = self.coupler.per_arm_amplitude_factor
        while amplitude * factor >= self.repeater.minimum_input:
            amplitude *= factor
            depth += 1
        return self.coupler.n_arms ** depth

    def plan(self, fanout: int, input_amplitude: float = 1.0) -> FanoutPlan:
        """Plan a tree for ``fanout`` copies.

        Raises
        ------
        ValueError
            If the leaf amplitude would fall below the repeater
            sensitivity (insert intermediate repeaters instead).
        """
        depth = self.depth_for(fanout)
        arms = self.coupler.n_arms
        n_couplers = sum(arms ** level for level in range(depth))
        leaf_amplitude = input_amplitude \
            * self.coupler.per_arm_amplitude_factor ** depth
        if depth > 0 and leaf_amplitude < self.repeater.minimum_input:
            raise ValueError(
                f"leaf amplitude {leaf_amplitude:.3g} below repeater "
                f"sensitivity {self.repeater.minimum_input:.3g}; "
                f"max tree fan-out is {self.max_fanout(input_amplitude)}")
        n_repeaters = fanout if depth > 0 else 0
        return FanoutPlan(
            target_fanout=fanout,
            n_couplers=n_couplers,
            n_repeaters=n_repeaters,
            tree_depth=depth,
            leaf_amplitude_before_repeaters=leaf_amplitude,
            energy=n_repeaters * self.repeater.energy,
            delay=self.repeater.delay if depth > 0 else 0.0)

    def distribute(self, wave: Wave, fanout: int) -> List[Wave]:
        """Physically split + regenerate: ``fanout`` full-strength copies."""
        plan = self.plan(fanout, wave.amplitude)
        leaves = [wave]
        for _ in range(plan.tree_depth):
            next_level: List[Wave] = []
            for leaf in leaves:
                next_level.extend(self.coupler.split(leaf))
            leaves = next_level
        leaves = leaves[:fanout]
        if plan.tree_depth == 0:
            return leaves
        return [self.repeater.regenerate(leaf) for leaf in leaves]
