"""Generic 4-stage spin-wave device model (Figure 2a of the paper).

"Conceptually speaking, a SW device includes 4 stages: SW creation,
propagation, processing, and detection."  This module captures that
pipeline as a light formal object used by documentation, the energy
model (which charges per excitation/detection cell) and the circuit
simulator (which chains devices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple


class TransducerKind(Enum):
    """Physical realisations of excitation/detection cells (Section III-A)."""

    MICROSTRIP_ANTENNA = "microstrip antenna"
    MAGNETOELECTRIC_CELL = "magnetoelectric cell"
    SPIN_ORBIT_TORQUE = "spin-orbit torque"


class DetectionMethod(Enum):
    """The two readout schemes the paper uses."""

    PHASE = "phase"          # Majority gate
    THRESHOLD = "threshold"  # X(N)OR gate


@dataclass(frozen=True)
class Transducer:
    """One excitation or detection cell.

    Attributes
    ----------
    name:
        Terminal name ("I1", "O2", ...).
    role:
        "excite" or "detect".
    kind:
        Physical transducer type; the paper's energy numbers assume
        magnetoelectric (ME) cells.
    """

    name: str
    role: str
    kind: TransducerKind = TransducerKind.MAGNETOELECTRIC_CELL

    def __post_init__(self) -> None:
        if self.role not in ("excite", "detect"):
            raise ValueError(f"role must be 'excite' or 'detect', "
                             f"got {self.role!r}")


@dataclass
class SpinWaveDevice:
    """A spin-wave logic device as a creation/propagation/processing/
    detection pipeline.

    Attributes
    ----------
    name:
        Device identifier ("triangle MAJ3 FO2", ...).
    transducers:
        All excitation and detection cells.
    detection:
        Readout scheme.
    fan_out:
        Number of equivalent outputs.
    functional_region:
        Free-text description of the processing stage (the interference
        structure).
    equal_energy_inputs:
        True if all inputs are excited at the same energy level -- the
        triangle gate's key advantage over the ladder baseline.
    """

    name: str
    transducers: List[Transducer]
    detection: DetectionMethod
    fan_out: int = 1
    functional_region: str = ""
    equal_energy_inputs: bool = True

    def __post_init__(self) -> None:
        if self.fan_out < 1:
            raise ValueError("fan-out must be at least 1")
        names = [t.name for t in self.transducers]
        if len(set(names)) != len(names):
            raise ValueError("duplicate transducer names")
        if self.n_detection_cells < self.fan_out:
            raise ValueError("fan-out cannot exceed the detection cells")

    @property
    def excitation_cells(self) -> List[Transducer]:
        return [t for t in self.transducers if t.role == "excite"]

    @property
    def detection_cells(self) -> List[Transducer]:
        return [t for t in self.transducers if t.role == "detect"]

    @property
    def n_excitation_cells(self) -> int:
        return len(self.excitation_cells)

    @property
    def n_detection_cells(self) -> int:
        return len(self.detection_cells)

    @property
    def n_cells(self) -> int:
        """Total transducer count ("Used cell No." of Table III)."""
        return len(self.transducers)


def _cells(excite: Sequence[str], detect: Sequence[str]) -> List[Transducer]:
    return ([Transducer(n, "excite") for n in excite]
            + [Transducer(n, "detect") for n in detect])


def triangle_maj3_device() -> SpinWaveDevice:
    """The paper's triangle FO2 MAJ3: 3 + 2 = 5 ME cells."""
    return SpinWaveDevice(
        name="triangle MAJ3 FO2 (this work)",
        transducers=_cells(("I1", "I2", "I3"), ("O1", "O2")),
        detection=DetectionMethod.PHASE,
        fan_out=2,
        functional_region="X-crossing + I3 feed triangle, all paths n*lambda",
        equal_energy_inputs=True)


def triangle_xor_device() -> SpinWaveDevice:
    """The paper's triangle FO2 XOR: 2 + 2 = 4 ME cells."""
    return SpinWaveDevice(
        name="triangle XOR FO2 (this work)",
        transducers=_cells(("I1", "I2"), ("O1", "O2")),
        detection=DetectionMethod.THRESHOLD,
        fan_out=2,
        functional_region="X-crossing, outputs at minimal distance",
        equal_energy_inputs=True)


def ladder_maj3_device() -> SpinWaveDevice:
    """The ladder MAJ3 baseline [22]: 4 + 2 = 6 ME cells."""
    return SpinWaveDevice(
        name="ladder MAJ3 FO2 [22]",
        transducers=_cells(("I1", "I2", "I3a", "I3b"), ("O1", "O2")),
        detection=DetectionMethod.PHASE,
        fan_out=2,
        functional_region="two-rail ladder, I3 replicated",
        equal_energy_inputs=False)


def ladder_xor_device() -> SpinWaveDevice:
    """The ladder XOR baseline [23]: 4 + 2 = 6 ME cells."""
    return SpinWaveDevice(
        name="ladder XOR FO2 [23]",
        transducers=_cells(("I1a", "I1b", "I2a", "I2b"), ("O1", "O2")),
        detection=DetectionMethod.THRESHOLD,
        fan_out=2,
        functional_region="two-rail ladder, both inputs replicated",
        equal_energy_inputs=False)
