"""Output detectors: phase detection and threshold detection.

Section III of the paper: the Majority gate reads the *phase* of the
arriving wave against a predefined reference (0 -> logic 0, pi -> logic
1), while the X(N)OR gate compares the arriving *amplitude* against a
predefined threshold (0.5 of the unanimous-case amplitude).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Tuple

from ..physics.waves import Wave, phase_distance


@dataclass(frozen=True)
class DetectionResult:
    """What a detector saw and what it decided.

    Attributes
    ----------
    logic_value:
        The decoded bit.
    amplitude:
        Measured amplitude (same units as the detector's normalisation).
    phase:
        Measured phase [rad].
    margin:
        Decision margin in the detector's native quantity: radians from
        the decision boundary for phase detection, normalised amplitude
        distance from the threshold for threshold detection.  Small
        margins flag physically fragile operating points.
    """

    logic_value: int
    amplitude: float
    phase: float
    margin: float


class PhaseDetector:
    """Decode a bit from the wave phase relative to a reference.

    Parameters
    ----------
    reference_phase:
        The phase that means "logic 0".  In practice this is calibrated
        from the all-zeros input pattern of the gate (the paper's
        "predefined phase").
    invert:
        Swap the decision (an NMAJ readout without moving the detector
        by half a wavelength).

    Notes
    -----
    The decision boundary sits at +-pi/2 from the reference: anything
    closer to ``reference_phase`` than to ``reference_phase + pi`` is a
    0.  The margin is ``pi/2 - |distance to nearest codeword|``.
    """

    def __init__(self, reference_phase: float = 0.0, invert: bool = False):
        self.reference_phase = reference_phase
        self.invert = invert

    def detect(self, wave: Wave) -> DetectionResult:
        """Decode one wave."""
        distance_to_zero = phase_distance(wave.phase, self.reference_phase)
        distance_to_one = phase_distance(wave.phase,
                                         self.reference_phase + math.pi)
        value = 0 if distance_to_zero <= distance_to_one else 1
        if self.invert:
            value = 1 - value
        margin = math.pi / 2.0 - min(distance_to_zero, distance_to_one)
        return DetectionResult(logic_value=value, amplitude=wave.amplitude,
                               phase=wave.phase, margin=margin)

    def detect_envelope(self, envelope: complex,
                        frequency: float = 10e9) -> DetectionResult:
        """Decode a complex envelope (e.g. from the FDTD tier)."""
        return self.detect(Wave.from_complex(envelope, frequency))

    def calibrate(self, zero_wave: Wave) -> "PhaseDetector":
        """Return a detector whose reference is the given logic-0 wave.

        Gate constructors run the all-zeros pattern once and calibrate
        their output detectors with the resulting phase; this absorbs
        the constant propagation phase (path length mod lambda plus any
        junction phase shifts).
        """
        return PhaseDetector(reference_phase=zero_wave.phase,
                             invert=self.invert)


class ThresholdDetector:
    """Decode a bit from the wave amplitude against a threshold.

    Parameters
    ----------
    threshold:
        Decision threshold on the *normalised* amplitude.  The paper
        uses 0.5: unanimous inputs give ~1, antiphase inputs give ~0.
    reference_amplitude:
        Amplitude corresponding to "1.0" after normalisation (the
        unanimous-case output); calibrated per gate.
    invert:
        False -> XOR convention (amplitude above threshold = logic 0);
        True -> XNOR convention (amplitude above threshold = logic 1).
        These match Section III-B verbatim.
    """

    def __init__(self, threshold: float = 0.5,
                 reference_amplitude: float = 1.0, invert: bool = False):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if reference_amplitude <= 0:
            raise ValueError("reference amplitude must be positive")
        self.threshold = threshold
        self.reference_amplitude = reference_amplitude
        self.invert = invert

    def normalised(self, amplitude: float) -> float:
        """Amplitude in units of the unanimous-case reference."""
        return amplitude / self.reference_amplitude

    def detect(self, wave: Wave) -> DetectionResult:
        """Decode one wave (XOR: large amplitude -> 0)."""
        level = self.normalised(wave.amplitude)
        above = level > self.threshold
        value = (1 if above else 0) if self.invert else (0 if above else 1)
        margin = abs(level - self.threshold)
        return DetectionResult(logic_value=value, amplitude=level,
                               phase=wave.phase, margin=margin)

    def detect_envelope(self, envelope: complex,
                        frequency: float = 10e9) -> DetectionResult:
        """Decode a complex envelope (e.g. from the FDTD tier)."""
        return self.detect(Wave.from_complex(envelope, frequency))

    def calibrate(self, unanimous_wave: Wave) -> "ThresholdDetector":
        """Return a detector normalised to the unanimous-case amplitude."""
        if unanimous_wave.amplitude <= 0:
            raise ValueError("cannot calibrate on a zero-amplitude wave")
        return ThresholdDetector(threshold=self.threshold,
                                 reference_amplitude=unanimous_wave.amplitude,
                                 invert=self.invert)
