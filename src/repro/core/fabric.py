"""Realise a gate layout as simulation-ready geometry.

Bridges :mod:`repro.core.layout` (abstract node coordinates) to the two
field solvers: it builds the waveguide mask (union of strips on a
padded canvas), the source patches at the input terminals and the
detection patches at the outputs, and constructs ready-to-run
:class:`~repro.fdtd.ScalarWaveSimulator` or
:class:`~repro.micromag.Simulation` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..fdtd.scalar import ScalarWaveSimulator, WaveSource
from ..micromag.geometry import Shape, disk, rasterize, strip, union
from ..micromag.mesh import Mesh
from .layout import GateLayout


@dataclass
class FabricatedGate:
    """A rasterised gate: mesh, mask and terminal patches.

    Attributes
    ----------
    layout:
        The (translated) layout whose node coordinates are in canvas
        physical coordinates.
    mesh:
        The canvas mesh (nz = 1).
    mask:
        2-D boolean waveguide mask ``(ny, nx)``.
    terminal_masks:
        Terminal name -> 2-D boolean patch for sources/detectors.
    """

    layout: GateLayout
    mesh: Mesh
    mask: np.ndarray
    terminal_masks: Dict[str, np.ndarray]

    @property
    def cell_size(self) -> float:
        return self.mesh.dx


def fabricate(layout: GateLayout, cell_size: Optional[float] = None,
              margin: Optional[float] = None,
              terminal_radius: Optional[float] = None,
              termination: Optional[float] = None,
              single_mode: bool = True) -> FabricatedGate:
    """Rasterise a gate layout onto a padded canvas.

    Parameters
    ----------
    layout:
        Gate layout in local coordinates (any origin).  The gate's
        mirror-symmetry axis is assumed to lie at local ``y = 0``; the
        canvas translation is snapped so that axis coincides with a
        cell boundary, making the rasterised mask exactly mirror
        symmetric (the FO2 property O1 = O2 depends on it).
    cell_size:
        In-plane cell edge [m]; defaults to lambda/11 (5 nm at the
        paper's 55 nm), giving 11 cells per wavelength.
    margin:
        Canvas padding around the structure [m]; defaults to 2 lambda.
        Must exceed any absorber width used later so that only open
        waveguide ends reach into absorbing zones.
    terminal_radius:
        Radius of the circular source/detector patches [m]; defaults to
        0.5 * width so detection averages the full guide cross-section
        (suppressing odd-transverse-mode pickup, like a real ME cell
        covering the waveguide).
    termination:
        Length [m] by which output arms are extended beyond the
        detector positions, so the guides run into the absorbing frame
        instead of ending in a reflective stub.  Physically this is the
        paper's assumption (v): "the output is passed directly to be
        used by another SW gate" -- i.e. matched, not reflecting.
        Defaults to margin + 2 lambda (always reaches the frame).
    single_mode:
        If True (default), rasterise the guides at an effective width
        of ``0.45 * lambda`` (below the scalar-wave odd-mode cutoff of
        lambda/2) instead of the design width.  Anti-phase inputs
        excite an *odd* transverse mode at the merge junction; in a
        multimode guide that mode propagates, converts to fundamental
        modes in the split arms and destroys the XOR contrast.  The
        paper's MuMax3 device rejects the odd combination through its
        junction details (not resolvable from the published figures);
        forcing the scalar model single-mode reproduces that behaviour.
        The design width (``dimensions.width``) remains the documented
        physical parameter.
    """
    dims = layout.dimensions
    dx = cell_size if cell_size is not None else dims.wavelength / 16.0
    pad = margin if margin is not None else 2.0 * dims.wavelength
    term_len = termination if termination is not None \
        else pad + 2.0 * dims.wavelength

    guide_width = min(dims.width, 0.45 * dims.wavelength) if single_mode \
        else dims.width
    r_term = (terminal_radius if terminal_radius is not None
              else 0.5 * guide_width + dx)

    x_min, y_min, x_max, y_max = layout.bounding_box(margin=pad)
    # Snap the y translation so local y = 0 maps onto a cell boundary.
    y_shift = math.ceil(-y_min / dx) * dx
    x_shift = -x_min
    placed = layout.translated(x_shift, y_shift)
    width_phys = x_max - x_min
    height_phys = (y_max - y_min) + (y_shift + y_min) + dx
    nx = int(math.ceil(width_phys / dx))
    ny = int(math.ceil(height_phys / dx))
    mesh = Mesh(cell_size=(dx, dx, 1e-9), shape=(nx, ny, 1))

    shapes = [strip(seg.start, seg.end, guide_width)
              for seg in placed.segments]
    # Terminations: continue output arms beyond O into the absorbing
    # frame, and extend input arms backwards behind the (soft) sources
    # so neither end forms a reflective cavity.
    output_names = set(placed.output_names)
    input_names = set(placed.input_names)
    for seg in placed.segments:
        ux = seg.end[0] - seg.start[0]
        uy = seg.end[1] - seg.start[1]
        norm = math.hypot(ux, uy)
        if seg.end_node in output_names:
            far = (seg.end[0] + ux / norm * term_len,
                   seg.end[1] + uy / norm * term_len)
            shapes.append(strip(seg.end, far, guide_width))
        if seg.start_node in input_names:
            back = (seg.start[0] - ux / norm * term_len,
                    seg.start[1] - uy / norm * term_len)
            shapes.append(strip(back, seg.start, guide_width))
    mask = rasterize(mesh, union(*shapes))[0]

    terminal_masks: Dict[str, np.ndarray] = {}
    for name in placed.input_names + placed.output_names:
        x, y = placed.nodes[name]
        patch = rasterize(mesh, disk(x, y, r_term))[0] & mask
        if not patch.any():
            raise ValueError(f"terminal {name!r} rasterised to zero cells; "
                             "increase terminal_radius or refine the mesh")
        terminal_masks[name] = patch
    return FabricatedGate(layout=placed, mesh=mesh, mask=mask,
                          terminal_masks=terminal_masks)


def build_wave_simulator(fab: FabricatedGate, frequency: float,
                         input_bits: Dict[str, int],
                         amplitude: float = 1.0,
                         damping_time: float = math.inf,
                         absorber_width: Optional[float] = None
                         ) -> ScalarWaveSimulator:
    """FDTD simulator for one input pattern on a fabricated gate.

    Absorbers are placed on all four canvas sides; the fabrication
    margin guarantees only open waveguide ends reach them.  A default
    :class:`~repro.resilience.FieldWatchdog` rides along every gate
    solve, so a blown-up field raises a typed
    :class:`~repro.errors.NumericalDivergenceError` (caught by the
    experiment ladder's tier degradation) instead of silently decoding
    garbage.
    """
    from ..resilience.guardrails import FieldWatchdog

    dims = fab.layout.dimensions
    absorber = (absorber_width if absorber_width is not None
                else 1.5 * dims.wavelength)
    sim = ScalarWaveSimulator(
        mask=fab.mask, dx=fab.cell_size, wavelength=dims.wavelength,
        frequency=frequency, damping_time=damping_time,
        absorber_width=absorber, watchdog=FieldWatchdog(every=500))
    for name, bit in input_bits.items():
        if name not in fab.terminal_masks:
            raise KeyError(f"unknown input terminal {name!r}")
        sim.add_source(WaveSource.logic(fab.terminal_masks[name], bit,
                                        amplitude=amplitude))
    return sim


def settle_periods_for(fab: FabricatedGate, safety: float = 1.6) -> int:
    """Number of drive periods needed to reach steady state.

    The longest source-to-output path in wavelengths (bounded above by
    the canvas diagonal) times a safety factor, plus the source ramp.
    """
    lx, ly, _ = fab.mesh.extent
    diagonal = math.hypot(lx, ly)
    periods = safety * diagonal / fab.layout.dimensions.wavelength + 5.0
    return int(math.ceil(periods))
