"""The paper's gates: triangle FO2 Majority and XOR (plus derived gates).

Two evaluation backends are built in:

* ``"network"`` -- the analytic complex-envelope model
  (:mod:`repro.core.network`); instantaneous, used for logic-level work
  and, in its *calibrated* form, for the Table I / II reproduction;
* ``"fdtd"`` -- the 2-D wave solver on the rasterised geometry
  (:mod:`repro.core.fabric`), producing the Figure-5-style field maps.

The full micromagnetic (LLG) backend lives at a lower level
(:mod:`repro.micromag`) because its runtime budget demands explicit
control; ``examples/micromagnetic_interference.py`` shows the pattern.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..physics.attenuation import LOSSLESS, AttenuationModel
from ..physics.waves import Wave
from .calibration import PAPER_ARRIVAL_MODEL, ArrivalModel
from .detection import DetectionResult, PhaseDetector, ThresholdDetector
from .fabric import FabricatedGate, build_wave_simulator, fabricate, settle_periods_for
from .layout import (
    GateDimensions,
    GateLayout,
    maj3_layout,
    paper_maj3_dimensions,
    paper_xor_dimensions,
    xor_layout,
)
from .logic import (
    MAJORITY_DERIVED_FUNCTIONS,
    check_bits,
    input_patterns,
    majority,
    xor,
)
from .network import WaveNetwork, network_from_layout


@dataclass
class GateResult:
    """Outcome of one gate evaluation.

    Attributes
    ----------
    inputs:
        The applied input bits, keyed "I1"...
    outputs:
        Output name -> :class:`DetectionResult`.
    expected:
        The boolean-reference output bit.
    backend:
        Which tier produced it.
    """

    inputs: Dict[str, int]
    outputs: Dict[str, DetectionResult]
    expected: int
    backend: str

    @property
    def correct(self) -> bool:
        """True if every output decoded to the reference value."""
        return all(r.logic_value == self.expected
                   for r in self.outputs.values())

    @property
    def fanout_matched(self) -> bool:
        """True if O1 and O2 agree (the FO2 property)."""
        values = {r.logic_value for r in self.outputs.values()}
        return len(values) == 1


class _TriangleGateBase:
    """Shared machinery of the triangle gates (layout, backends, cache)."""

    def __init__(self, layout: GateLayout, frequency: float,
                 attenuation: AttenuationModel,
                 junction_transmission: float):
        self.layout = layout
        self.frequency = frequency
        self.attenuation = attenuation
        self.junction_transmission = junction_transmission
        self.network: WaveNetwork = network_from_layout(
            layout, frequency, attenuation, junction_transmission)
        self._fabricated: Optional[FabricatedGate] = None
        self._fdtd_cache: Dict[Tuple[int, ...], Dict[str, complex]] = {}
        self._fdtd_maps: Dict[Tuple[int, ...], np.ndarray] = {}

    # -- geometry ---------------------------------------------------------------

    @property
    def input_names(self) -> Sequence[str]:
        return self.layout.input_names

    @property
    def output_names(self) -> Sequence[str]:
        return self.layout.output_names

    @property
    def fabricated(self) -> FabricatedGate:
        """Rasterised geometry (built lazily, cached)."""
        if self._fabricated is None:
            self._fabricated = fabricate(self.layout)
        return self._fabricated

    #: Transducer-count bookkeeping for the energy model (Table III).
    @property
    def n_excitation_cells(self) -> int:
        return len(self.input_names)

    @property
    def n_detection_cells(self) -> int:
        return len(self.output_names)

    @property
    def n_cells(self) -> int:
        """Total ME cells -- the paper's "Used cell No." row."""
        return self.n_excitation_cells + self.n_detection_cells

    # -- backends ---------------------------------------------------------------

    def _network_envelopes(self, bits: Sequence[int]) -> Dict[str, complex]:
        injections = {
            name: Wave.logic(bit, self.frequency).envelope
            for name, bit in zip(self.input_names, check_bits(bits))}
        env = self.network.propagate(injections)
        return {name: env[name] for name in self.output_names}

    def _fdtd_envelopes(self, bits: Sequence[int],
                        keep_map: bool = False) -> Dict[str, complex]:
        from ..fdtd.scalar import run_steady_state

        key = tuple(check_bits(bits))
        if key not in self._fdtd_cache:
            fab = self.fabricated
            input_bits = dict(zip(self.input_names, key))
            sim = build_wave_simulator(fab, self.frequency, input_bits)
            envelope = run_steady_state(sim, settle_periods_for(fab))
            self._fdtd_cache[key] = {
                name: sim.region_envelope(fab.terminal_masks[name], envelope)
                for name in self.output_names}
            if keep_map:
                self._fdtd_maps[key] = envelope
        return self._fdtd_cache[key]

    def output_envelopes(self, bits: Sequence[int],
                         backend: str = "network") -> Dict[str, complex]:
        """Raw complex envelopes at O1/O2 for an input pattern."""
        if backend == "network":
            return self._network_envelopes(bits)
        if backend == "fdtd":
            return self._fdtd_envelopes(bits)
        raise ValueError(f"unknown backend {backend!r}; use 'network' or "
                         "'fdtd' (LLG runs live in repro.micromag)")

    def field_map(self, bits: Sequence[int]) -> np.ndarray:
        """Steady-state complex envelope map (Figure 5 raw data).

        Runs the FDTD backend for the pattern and returns the per-cell
        complex envelope ``(ny, nx)``; ``.real`` of it is the snapshot
        rendering the paper colour-codes blue/red.
        """
        key = tuple(check_bits(bits))
        if key not in self._fdtd_maps:
            self._fdtd_cache.pop(key, None)
            self._fdtd_envelopes(bits, keep_map=True)
        return self._fdtd_maps[key]

    def clear_caches(self) -> None:
        """Drop FDTD steady states (e.g. after mutating the layout)."""
        self._fdtd_cache.clear()
        self._fdtd_maps.clear()

    def as_device(self):
        """This gate as a generic 4-stage :class:`SpinWaveDevice`."""
        from .device import (
            DetectionMethod,
            SpinWaveDevice,
            Transducer,
        )

        detection = (DetectionMethod.PHASE
                     if self.layout.kind == "maj3"
                     else DetectionMethod.THRESHOLD)
        transducers = ([Transducer(n, "excite") for n in self.input_names]
                       + [Transducer(n, "detect")
                          for n in self.output_names])
        return SpinWaveDevice(
            name=f"triangle {self.layout.kind.upper()} FO2",
            transducers=transducers,
            detection=detection,
            fan_out=len(self.output_names),
            functional_region="merge-stem-split triangle, paths n*lambda",
            equal_energy_inputs=True)


class TriangleMajorityGate(_TriangleGateBase):
    """Fan-out-of-2 triangle 3-input Majority gate (Section III-A).

    Phase-encoded inputs, phase detection at both outputs.  With
    ``invert_output=True`` the output arms are lengthened by half a
    wavelength (d4 rule), yielding the inverted majority.

    Parameters
    ----------
    dimensions:
        Gate dimension set; defaults to the paper's
        (d1, d2, d3, d4) = (330, 880, 220, 55) nm at lambda = 55 nm.
    frequency:
        Operating frequency [Hz] (10 GHz in the paper).
    attenuation / junction_transmission:
        Loss configuration of the network backend; the defaults are the
        ideal lossless gate.
    calibration:
        Optional :class:`ArrivalModel` -- when given,
        :meth:`normalized_output_table` uses the calibrated amplitude
        model (reproducing Table I exactly) instead of raw network
        amplitudes.
    """

    def __init__(self, dimensions: Optional[GateDimensions] = None,
                 frequency: float = 10e9,
                 invert_output: bool = False,
                 attenuation: AttenuationModel = LOSSLESS,
                 junction_transmission: float = 1.0,
                 calibration: Optional[ArrivalModel] = None):
        dims = dimensions if dimensions is not None else \
            paper_maj3_dimensions(invert_output=invert_output)
        super().__init__(maj3_layout(dims), frequency, attenuation,
                         junction_transmission)
        self.invert_output = invert_output
        self.calibration = calibration
        self._reference_phase: Dict[str, Dict[str, float]] = {}

    # -- detection ---------------------------------------------------------------

    def _references(self, backend: str) -> Dict[str, float]:
        """Reference phases per output: the all-zeros pattern defines
        logic 0 (the paper's "predefined phase")."""
        if backend not in self._reference_phase:
            zeros = self.output_envelopes([0] * len(self.input_names), backend)
            self._reference_phase[backend] = {
                name: float(np.angle(env)) for name, env in zeros.items()}
        return self._reference_phase[backend]

    def evaluate(self, bits: Sequence[int],
                 backend: str = "network") -> GateResult:
        """Apply an input pattern and phase-detect both outputs."""
        bits = check_bits(bits)
        if len(bits) != 3:
            raise ValueError(f"MAJ3 takes 3 inputs, got {len(bits)}")
        envelopes = self.output_envelopes(bits, backend)
        references = self._references(backend)
        outputs = {}
        for name, env in envelopes.items():
            # The inversion is implemented geometrically (d4 rule):
            # the half-wavelength of an inverted gate flips the arriving
            # phase relative to the *non-inverted* reference, so the
            # detector reference is shifted back by pi.
            ref = references[name] - (math.pi if self.invert_output else 0.0)
            detector = PhaseDetector(reference_phase=ref)
            outputs[name] = detector.detect_envelope(env, self.frequency)
        expected = majority(*bits)
        if self.invert_output:
            expected = 1 - expected
        return GateResult(inputs=dict(zip(self.input_names, bits)),
                          outputs=outputs, expected=expected, backend=backend)

    def truth_table(self, backend: str = "network"
                    ) -> Dict[Tuple[int, ...], GateResult]:
        """Evaluate all 8 patterns."""
        return {bits: self.evaluate(bits, backend)
                for bits in input_patterns(3)}

    def normalized_output_table(self, backend: str = "network"
                                ) -> Dict[Tuple[int, ...], Tuple[float, float]]:
        """Reproduce Table I: normalised output amplitude per pattern.

        Amplitudes are normalised to the all-zeros (unanimous) case.
        With a ``calibration`` model attached and the network backend,
        the calibrated arrival amplitudes are used -- this is the
        configuration that matches the paper's numbers.
        """
        if self.calibration is not None and backend == "network":
            return {bits: (self.calibration.normalized_output(bits),) * 2
                    for bits in input_patterns(3)}
        table = {}
        zeros = self.output_envelopes((0, 0, 0), backend)
        refs = {name: abs(env) for name, env in zeros.items()}
        for bits in input_patterns(3):
            env = self.output_envelopes(bits, backend)
            table[bits] = tuple(abs(env[name]) / refs[name]
                                for name in self.output_names)
        return table


class TriangleXorGate(_TriangleGateBase):
    """Fan-out-of-2 triangle 2-input X(N)OR gate (Section III-B).

    Same X-skeleton as the Majority gate with the third input removed;
    outputs are read by *threshold* detection: amplitude above 0.5 of
    the unanimous reference decodes as 0 (XOR) or 1 (XNOR).
    """

    def __init__(self, dimensions: Optional[GateDimensions] = None,
                 frequency: float = 10e9,
                 xnor: bool = False,
                 threshold: float = 0.5,
                 attenuation: AttenuationModel = LOSSLESS,
                 junction_transmission: float = 1.0):
        dims = dimensions if dimensions is not None else paper_xor_dimensions()
        super().__init__(xor_layout(dims), frequency, attenuation,
                         junction_transmission)
        self.xnor = xnor
        self.threshold = threshold
        self._reference_amp: Dict[str, Dict[str, float]] = {}

    def _references(self, backend: str) -> Dict[str, float]:
        """Unanimous-case amplitudes: the normalisation of Table II."""
        if backend not in self._reference_amp:
            zeros = self.output_envelopes((0, 0), backend)
            self._reference_amp[backend] = {
                name: abs(env) for name, env in zeros.items()}
        return self._reference_amp[backend]

    def evaluate(self, bits: Sequence[int],
                 backend: str = "network") -> GateResult:
        """Apply an input pattern and threshold-detect both outputs."""
        bits = check_bits(bits)
        if len(bits) != 2:
            raise ValueError(f"XOR takes 2 inputs, got {len(bits)}")
        envelopes = self.output_envelopes(bits, backend)
        references = self._references(backend)
        outputs = {}
        for name, env in envelopes.items():
            detector = ThresholdDetector(
                threshold=self.threshold,
                reference_amplitude=references[name],
                invert=self.xnor)
            outputs[name] = detector.detect_envelope(env, self.frequency)
        expected = xor(*bits)
        if self.xnor:
            expected = 1 - expected
        return GateResult(inputs=dict(zip(self.input_names, bits)),
                          outputs=outputs, expected=expected, backend=backend)

    def truth_table(self, backend: str = "network"
                    ) -> Dict[Tuple[int, ...], GateResult]:
        """Evaluate all 4 patterns."""
        return {bits: self.evaluate(bits, backend)
                for bits in input_patterns(2)}

    def normalized_output_table(self, backend: str = "network"
                                ) -> Dict[Tuple[int, ...], Tuple[float, float]]:
        """Reproduce Table II: normalised output amplitudes."""
        refs = self._references(backend)
        table = {}
        for bits in input_patterns(2):
            env = self.output_envelopes(bits, backend)
            table[bits] = tuple(abs(env[name]) / refs[name]
                                for name in self.output_names)
        return table


class DerivedTriangleGate:
    """2-input (N)AND / (N)OR built from the MAJ3 with a control input.

    Section III-A: fixing I3 = 0 yields AND, I3 = 1 yields OR; the
    inverted variants use the inverted-output majority gate (d4 =
    (n+1/2) lambda).  The control wave is excited at the same energy as
    the data inputs -- one of the triangle design's selling points.
    """

    def __init__(self, function: str,
                 dimensions: Optional[GateDimensions] = None,
                 frequency: float = 10e9, **gate_kwargs):
        key = function.upper()
        if key not in MAJORITY_DERIVED_FUNCTIONS:
            raise KeyError(f"unknown derived function {function!r}; "
                           f"options: {sorted(MAJORITY_DERIVED_FUNCTIONS)}")
        self.function = key
        self.control_value, inverted = MAJORITY_DERIVED_FUNCTIONS[key]
        if dimensions is None:
            dimensions = paper_maj3_dimensions(invert_output=inverted)
        self.majority_gate = TriangleMajorityGate(
            dimensions=dimensions, frequency=frequency,
            invert_output=inverted, **gate_kwargs)

    @property
    def n_cells(self) -> int:
        return self.majority_gate.n_cells

    def evaluate(self, a: int, b: int,
                 backend: str = "network") -> GateResult:
        """Evaluate the derived function on data bits (a, b).

        The triangle's data inputs are I1 and I2; I3 carries the
        control value.
        """
        return self.majority_gate.evaluate((a, b, self.control_value),
                                           backend=backend)

    def truth_table(self, backend: str = "network"
                    ) -> Dict[Tuple[int, int], GateResult]:
        """All four (a, b) patterns."""
        return {(a, b): self.evaluate(a, b, backend)
                for a, b in input_patterns(2)}


def paper_table_i_gate() -> TriangleMajorityGate:
    """The exact configuration reproducing Table I (calibrated model)."""
    return TriangleMajorityGate(calibration=PAPER_ARRIVAL_MODEL)


def paper_table_ii_gate() -> TriangleXorGate:
    """The exact configuration reproducing Table II."""
    return TriangleXorGate()
