"""Ladder-shape FO2 gates -- the state-of-the-art baseline [22], [23].

The paper compares its triangle gates against the earlier *ladder
shape* fan-out-enabled gates (Mahmoud et al., AIP Advances 10, 035119
(2020) and ISVLSI 2020).  The relevant structural facts, all taken from
Section I and IV-D of the paper:

* the ladder gate achieves FO2 by **replicating one input** through an
  extra excitation transducer (4 excitation cells for both MAJ and XOR
  instead of 3 / 2), plus the two output cells -- 6 cells total;
* inputs may have to be excited at **different energy levels**
  depending on whether their path to the outputs is straight or passes
  bent regions -- an energy and design-complexity overhead;
* delay is transducer-dominated and therefore identical (0.4 ns).

This module models the ladder gates at the same level as the triangle
gates: a propagation network for functionality plus the transducer
bookkeeping the Table III energy comparison needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..physics.attenuation import LOSSLESS, AttenuationModel
from ..physics.waves import Wave
from .detection import DetectionResult, PhaseDetector, ThresholdDetector
from .layout import PAPER_WAVELENGTH, segment_length
from .logic import check_bits, input_patterns, majority, xor
from .network import WaveNetwork


@dataclass(frozen=True)
class LadderDimensions:
    """Ladder-gate segment lengths (all n * lambda by design)."""

    wavelength: float = PAPER_WAVELENGTH
    rung_length: float = 0.0       # vertical connector segments
    rail_length: float = 0.0       # horizontal propagation segments
    output_length: float = 0.0     # junction-to-output segments

    def __post_init__(self) -> None:
        object.__setattr__(self, "rung_length",
                           self.rung_length or segment_length(
                               4, self.wavelength))
        object.__setattr__(self, "rail_length",
                           self.rail_length or segment_length(
                               6, self.wavelength))
        object.__setattr__(self, "output_length",
                           self.output_length or segment_length(
                               1, self.wavelength))


class LadderMajorityGate:
    """FO2 ladder MAJ3 [22]: 3 logical inputs, one replicated -> 4 cells.

    Topology (our reconstruction of the ladder of ref. [22]): two
    horizontal rails ending at outputs O1 (top) and O2 (bottom).  I1
    feeds the top rail, I2 feeds the bottom rail, and the third input
    must reach *both* rails -- the ladder does this by exciting I3
    twice (transducers I3a, I3b), one per rail.  Each rail therefore
    carries a two-wave interference of (data, replicated I3) and the
    two rails are tied by a rung carrying I1's and I2's contribution to
    the opposite rail.

    The functional model keeps the exact majority interference: each
    output superposes all three logical inputs, with the replicated
    input contributing through its own transducer on that rail.
    """

    #: Excitation-energy multipliers per transducer relative to the
    #: triangle gate's uniform level: the paper notes inputs facing bent
    #: regions must be excited harder (Section IV-D).  Straight-path
    #: transducers run at 1.0; bent-path ones at this factor.
    BENT_PATH_EXCITATION_FACTOR = 1.5

    def __init__(self, dimensions: Optional[LadderDimensions] = None,
                 frequency: float = 10e9,
                 attenuation: AttenuationModel = LOSSLESS):
        self.dimensions = dimensions or LadderDimensions()
        self.frequency = frequency
        self.attenuation = attenuation
        self.network = self._build_network()
        self._reference: Optional[Dict[str, float]] = None

    def _build_network(self) -> WaveNetwork:
        d = self.dimensions
        net = WaveNetwork(self.frequency, d.wavelength, self.attenuation)
        # Top rail: I1 and I3a interfere at J1, then out to O1.
        net.add_edge("I1", "J1", d.rail_length)
        net.add_edge("I3a", "J1", d.rung_length)
        net.add_edge("J1", "O1", d.output_length)
        # Bottom rail: I2 and I3b interfere at J2, then out to O2.
        net.add_edge("I2", "J2", d.rail_length)
        net.add_edge("I3b", "J2", d.rung_length)
        net.add_edge("J2", "O2", d.output_length)
        # Rungs: each data input also reaches the opposite rail junction
        # (path through the ladder rung; n*lambda, bent region).
        net.add_edge("I1", "J2", d.rail_length + d.rung_length)
        net.add_edge("I2", "J1", d.rail_length + d.rung_length)
        return net

    # -- transducer bookkeeping (Table III) ----------------------------------------

    @property
    def n_excitation_cells(self) -> int:
        return 4  # I1, I2, I3a, I3b -- the replication costs one cell

    @property
    def n_detection_cells(self) -> int:
        return 2

    @property
    def n_cells(self) -> int:
        return self.n_excitation_cells + self.n_detection_cells

    @property
    def requires_unequal_excitation(self) -> bool:
        """The ladder needs per-input drive levels; the triangle does not."""
        return True

    def excitation_levels(self) -> Dict[str, float]:
        """Relative drive amplitude per transducer.

        The rung paths of I1/I2 traverse bends; for equal arrival
        amplitudes at both junctions those transducers are driven
        harder.
        """
        f = self.BENT_PATH_EXCITATION_FACTOR
        return {"I1": f, "I2": f, "I3a": 1.0, "I3b": 1.0}

    # -- functional model -----------------------------------------------------------

    def evaluate(self, bits: Sequence[int]) -> Dict[str, DetectionResult]:
        """Phase-detect both outputs for (I1, I2, I3)."""
        b1, b2, b3 = check_bits(bits)
        injections = {
            "I1": Wave.logic(b1, self.frequency).envelope,
            "I2": Wave.logic(b2, self.frequency).envelope,
            "I3a": Wave.logic(b3, self.frequency).envelope,
            "I3b": Wave.logic(b3, self.frequency).envelope,
        }
        env = self.network.propagate(injections)
        if self._reference is None:
            zeros = self.network.propagate(
                {k: Wave.logic(0, self.frequency).envelope
                 for k in injections})
            self._reference = {o: Wave.from_complex(
                zeros[o], self.frequency).phase for o in ("O1", "O2")}
        out = {}
        for name in ("O1", "O2"):
            detector = PhaseDetector(reference_phase=self._reference[name])
            out[name] = detector.detect_envelope(env[name], self.frequency)
        return out

    def truth_table(self) -> Dict[Tuple[int, ...], Dict[str, DetectionResult]]:
        """All 8 input patterns."""
        return {bits: self.evaluate(bits) for bits in input_patterns(3)}

    def is_functionally_correct(self) -> bool:
        """Check MAJ3 behaviour on every pattern at both outputs."""
        for bits, outputs in self.truth_table().items():
            expected = majority(*bits)
            if any(r.logic_value != expected for r in outputs.values()):
                return False
        return True


class LadderXorGate:
    """FO2 ladder XOR [23]: 2 logical inputs, both replicated -> 4 cells.

    Per Table III of the paper the ladder XOR also uses 6 cells total
    (4 excitation + 2 detection): each of the two inputs is excited on
    both rails, and each output reads the two-wave interference of its
    rail by threshold detection.
    """

    def __init__(self, dimensions: Optional[LadderDimensions] = None,
                 frequency: float = 10e9,
                 attenuation: AttenuationModel = LOSSLESS,
                 threshold: float = 0.5):
        self.dimensions = dimensions or LadderDimensions()
        self.frequency = frequency
        self.attenuation = attenuation
        self.threshold = threshold
        self.network = self._build_network()
        self._reference: Optional[Dict[str, float]] = None

    def _build_network(self) -> WaveNetwork:
        d = self.dimensions
        net = WaveNetwork(self.frequency, d.wavelength, self.attenuation)
        for rail, (a, b) in (("J1", ("I1a", "I2a")), ("J2", ("I1b", "I2b"))):
            net.add_edge(a, rail, d.rail_length)
            net.add_edge(b, rail, d.rung_length)
        net.add_edge("J1", "O1", d.output_length)
        net.add_edge("J2", "O2", d.output_length)
        return net

    @property
    def n_excitation_cells(self) -> int:
        return 4  # both inputs replicated per rail

    @property
    def n_detection_cells(self) -> int:
        return 2

    @property
    def n_cells(self) -> int:
        return self.n_excitation_cells + self.n_detection_cells

    @property
    def requires_unequal_excitation(self) -> bool:
        return True

    def evaluate(self, bits: Sequence[int]) -> Dict[str, DetectionResult]:
        """Threshold-detect both outputs for (I1, I2)."""
        b1, b2 = check_bits(bits)
        injections = {
            "I1a": Wave.logic(b1, self.frequency).envelope,
            "I1b": Wave.logic(b1, self.frequency).envelope,
            "I2a": Wave.logic(b2, self.frequency).envelope,
            "I2b": Wave.logic(b2, self.frequency).envelope,
        }
        env = self.network.propagate(injections)
        if self._reference is None:
            zeros = self.network.propagate(
                {k: Wave.logic(0, self.frequency).envelope
                 for k in injections})
            self._reference = {o: abs(zeros[o]) for o in ("O1", "O2")}
        out = {}
        for name in ("O1", "O2"):
            detector = ThresholdDetector(
                threshold=self.threshold,
                reference_amplitude=self._reference[name])
            out[name] = detector.detect_envelope(env[name], self.frequency)
        return out

    def truth_table(self) -> Dict[Tuple[int, ...], Dict[str, DetectionResult]]:
        """All 4 input patterns."""
        return {bits: self.evaluate(bits) for bits in input_patterns(2)}

    def is_functionally_correct(self) -> bool:
        """Check XOR behaviour on every pattern at both outputs."""
        for bits, outputs in self.truth_table().items():
            expected = xor(*bits)
            if any(r.logic_value != expected for r in outputs.values()):
                return False
        return True
