"""n-bit data-parallel operation via frequency-division multiplexing.

The authors' companion work (Mahmoud et al., "n-bit data parallel spin
wave logic gate", DATE 2020 -- ref [9] of the paper) drives the *same*
waveguide structure with several frequencies at once: waves only
interfere with waves of their own frequency (Section II-B requires
equal frequencies for the majority evaluation), so one physical
triangle gate evaluates n independent bit-slices concurrently.

This module implements that extension over the network tier: each
frequency channel is an independent linear problem on the shared
geometry, detectors demodulate per channel.  The channel frequencies
must (a) lie in the propagating band and (b) keep per-channel
wavelengths close enough to the design wavelength that the lambda-
multiple phase rules still hold within a phase-margin budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..physics.attenuation import LOSSLESS, AttenuationModel
from ..physics.dispersion import DispersionRelation
from ..physics.waves import Wave
from .detection import DetectionResult, PhaseDetector
from .layout import GateDimensions, maj3_layout, paper_maj3_dimensions
from .logic import check_bits, majority
from .network import WaveNetwork


@dataclass(frozen=True)
class Channel:
    """One frequency channel of the multiplexed gate."""

    index: int
    frequency: float
    wavelength: float
    worst_phase_error: float  # radians of de-tuning over the longest path


class ParallelMajorityGate:
    """Frequency-multiplexed fan-in-3 FO2 majority gate.

    Parameters
    ----------
    dispersion:
        Material dispersion used to map channel frequencies to their
        wavelengths (each channel propagates with its own k).
    n_channels:
        Number of parallel bit slices.
    channel_spacing:
        Frequency separation between slices [Hz].
    dimensions:
        Triangle geometry (designed for the *centre* channel's
        wavelength).
    margin_budget:
        Maximum tolerated phase de-tuning [rad] accumulated over the
        longest interference path by the outermost channels; channels
        beyond it are rejected at construction (the detector would
        decode them unreliably).
    """

    def __init__(self, dispersion: DispersionRelation,
                 n_channels: int,
                 centre_frequency: float,
                 channel_spacing: float = 0.2e9,
                 dimensions: Optional[GateDimensions] = None,
                 attenuation: AttenuationModel = LOSSLESS,
                 margin_budget: float = math.pi / 3):
        if n_channels < 1:
            raise ValueError("need at least one channel")
        if channel_spacing <= 0:
            raise ValueError("channel spacing must be positive")
        self.dispersion = dispersion
        centre_wavelength = dispersion.wavelength(centre_frequency)
        self.dimensions = dimensions if dimensions is not None else \
            paper_maj3_dimensions(wavelength=centre_wavelength,
                                  width=0.9 * centre_wavelength)
        self.layout = maj3_layout(self.dimensions)
        self.attenuation = attenuation
        # Longest phase-critical path: I1 -> M -> C -> K -> O.
        self._longest_path = (self.dimensions.d1 + self.dimensions.stem
                              + self.dimensions.d1 + self.dimensions.d3
                              + self.dimensions.d4)
        self.channels = self._build_channels(
            n_channels, centre_frequency, channel_spacing, margin_budget)
        self._networks = {
            ch.index: self._network_for(ch) for ch in self.channels}
        self._references: Dict[int, Dict[str, float]] = {}

    def _build_channels(self, n: int, f0: float, spacing: float,
                        budget: float) -> List[Channel]:
        k_design = 2.0 * math.pi / self.dimensions.wavelength
        channels = []
        for index in range(n):
            offset = index - (n - 1) / 2.0
            frequency = f0 + offset * spacing
            wavelength = self.dispersion.wavelength(frequency)
            k = 2.0 * math.pi / wavelength
            phase_error = abs(k - k_design) * self._longest_path
            if phase_error > budget:
                raise ValueError(
                    f"channel {index} at {frequency / 1e9:.2f} GHz "
                    f"de-tunes by {phase_error:.2f} rad over the longest "
                    f"path (budget {budget:.2f}); reduce the spacing or "
                    "the channel count")
            channels.append(Channel(index=index, frequency=frequency,
                                    wavelength=wavelength,
                                    worst_phase_error=phase_error))
        return channels

    def _network_for(self, channel: Channel) -> WaveNetwork:
        net = WaveNetwork(channel.frequency, channel.wavelength,
                          self.attenuation)
        d = self.dimensions
        net.add_edge("I1", "M", d.d1)
        net.add_edge("I2", "M", d.d1)
        net.add_edge("M", "C", d.stem)
        net.add_edge("C", "K1", d.d1)
        net.add_edge("C", "K2", d.d1)
        net.add_edge("I3", "K1", d.d2)
        net.add_edge("I3", "K2", d.d2)
        net.add_edge("K1", "O1", d.d3 + d.d4)
        net.add_edge("K2", "O2", d.d3 + d.d4)
        return net

    @property
    def n_channels(self) -> int:
        return len(self.channels)

    def evaluate(self, words: Sequence[Sequence[int]]
                 ) -> List[Dict[str, DetectionResult]]:
        """Evaluate one MAJ3 per channel, all concurrently.

        Parameters
        ----------
        words:
            ``n_channels`` triples of bits, one per frequency slice.

        Returns
        -------
        list
            Per-channel ``{"O1": DetectionResult, "O2": ...}``.
        """
        if len(words) != self.n_channels:
            raise ValueError(f"expected {self.n_channels} bit triples, "
                             f"got {len(words)}")
        results = []
        for channel, bits in zip(self.channels, words):
            bits = check_bits(bits)
            if len(bits) != 3:
                raise ValueError("each channel takes 3 bits")
            net = self._networks[channel.index]
            injections = {
                f"I{i + 1}": Wave.logic(b, channel.frequency).envelope
                for i, b in enumerate(bits)}
            env = net.propagate(injections)
            refs = self._reference_for(channel)
            results.append({
                name: PhaseDetector(reference_phase=refs[name])
                .detect_envelope(env[name], channel.frequency)
                for name in ("O1", "O2")})
        return results

    def _reference_for(self, channel: Channel) -> Dict[str, float]:
        if channel.index not in self._references:
            net = self._networks[channel.index]
            zeros = net.propagate({
                f"I{i + 1}": Wave.logic(0, channel.frequency).envelope
                for i in range(3)})
            self._references[channel.index] = {
                name: Wave.from_complex(zeros[name],
                                        channel.frequency).phase
                for name in ("O1", "O2")}
        return self._references[channel.index]

    def evaluate_word(self, a: int, b: int, c: int) -> Tuple[int, int, int]:
        """Bitwise MAJ of three n-bit integers, one gate pass.

        Returns ``(result, o1_word, o2_word)`` where the two output
        words must be equal (FO2); ``result`` is their common value.
        """
        n = self.n_channels
        for value in (a, b, c):
            if not 0 <= value < 2 ** n:
                raise ValueError(f"operands must fit in {n} bits")
        words = [((a >> i) & 1, (b >> i) & 1, (c >> i) & 1)
                 for i in range(n)]
        outputs = self.evaluate(words)
        o1 = sum(out["O1"].logic_value << i for i, out in enumerate(outputs))
        o2 = sum(out["O2"].logic_value << i for i, out in enumerate(outputs))
        return o1, o1, o2

    def throughput_gain(self) -> float:
        """Evaluations per gate pass vs a single-frequency gate."""
        return float(self.n_channels)

    def channel_summary(self) -> List[str]:
        """Human-readable per-channel design table rows."""
        return [
            f"ch{c.index}: {c.frequency / 1e9:.2f} GHz, "
            f"lambda = {c.wavelength * 1e9:.2f} nm, "
            f"de-tuning {c.worst_phase_error:.3f} rad"
            for c in self.channels]
