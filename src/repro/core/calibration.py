"""Calibration of the network tier against the paper's Table I / II.

The ideal (lossless) three-wave superposition gives normalised outputs
of 1 for unanimous inputs and 1/3 for any 2-vs-1 majority; the paper's
micromagnetic Table I instead reports 0.083-0.164 for the minority
cases, with the value depending on *which* input is outvoted.  Two
physical effects produce this structure:

1. each input reaches the final interference points with a different
   effective amplitude (different numbers of junction crossings and
   different diffraction spreading along its path), and
2. partially-cancelled states arrive as spatially distorted beams whose
   overlap with the detection cell is reduced relative to the clean
   unanimous beam (a mode-overlap penalty).

Writing the arrival amplitudes as ``e1, e2, e3`` (normalised to
``e1 + e2 + e3 = 1``) and the non-unanimous overlap penalty as ``eta``,
the normalised detected amplitudes are::

    unanimous              -> 1
    input j in minority    -> eta * (1 - 2 * e_j)

The three minority rows of Table I then *uniquely* determine the model:
``eta`` must equal the sum of the three reported minority amplitudes
(because the three ``(1 - 2 e_j)`` terms sum to 1), and each ``e_j``
follows from its row.  This inversion is implemented in
:func:`fit_arrival_model`; the paper's numbers give

    eta  = 0.083 + 0.160 + 0.164 = 0.407
    e1   = 0.398,  e2 = 0.303,  e3 = 0.299

i.e. I1 arrives ~30 % stronger than I2/I3 and destructive states
couple to the detector at ~41 % -- both physically sensible for the
triangle geometry (I1's path crosses one junction fewer in our
reconstruction, and a partially cancelled beam is strongly distorted).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

from .logic import check_bits, majority

#: Table I of the paper: normalised |m| at O1 and O2 per input pattern
#: (I1, I2, I3) -- the reproduction target.
PAPER_TABLE_I: Dict[Tuple[int, int, int], Tuple[float, float]] = {
    (0, 0, 0): (1.0, 1.0),
    (1, 0, 0): (0.083, 0.084),
    (0, 1, 0): (0.16, 0.16),
    (1, 1, 0): (0.164, 0.164),
    (0, 0, 1): (0.164, 0.164),
    (1, 0, 1): (0.16, 0.16),
    (0, 1, 1): (0.083, 0.084),
    (1, 1, 1): (1.0, 1.0),
}

#: Table II of the paper: normalised |m| at O1 and O2 per (I1, I2).
PAPER_TABLE_II: Dict[Tuple[int, int], Tuple[float, float]] = {
    (0, 0): (0.99, 1.0),
    (1, 0): (0.0, 0.0),
    (0, 1): (0.0, 0.0),
    (1, 1): (1.0, 1.0),
}


@dataclass(frozen=True)
class ArrivalModel:
    """Calibrated effective-arrival parameters of the triangle MAJ3 gate.

    Attributes
    ----------
    efficiencies:
        ``(e1, e2, e3)`` relative arrival amplitudes, summing to 1.
    overlap_penalty:
        ``eta`` applied to non-unanimous outputs.
    """

    efficiencies: Tuple[float, float, float]
    overlap_penalty: float

    def __post_init__(self) -> None:
        if len(self.efficiencies) != 3:
            raise ValueError("need exactly three arrival efficiencies")
        if any(e <= 0 for e in self.efficiencies):
            raise ValueError("arrival efficiencies must be positive")
        total = sum(self.efficiencies)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"efficiencies must sum to 1, got {total}")
        if not 0.0 < self.overlap_penalty <= 1.0:
            raise ValueError("overlap penalty must be in (0, 1]")

    def normalized_output(self, bits: Sequence[int]) -> float:
        """Predicted normalised output amplitude for an input pattern."""
        b1, b2, b3 = check_bits(bits)
        signs = [1.0 if b == 0 else -1.0 for b in (b1, b2, b3)]
        raw = abs(sum(s * e for s, e in zip(signs, self.efficiencies)))
        if b1 == b2 == b3:
            return raw  # = 1 by normalisation
        return self.overlap_penalty * raw

    def output_phase_is_majority(self, bits: Sequence[int]) -> bool:
        """True if the interference sign matches the majority phase.

        The signed sum has the sign of the majority whenever the losing
        input's efficiency stays below 1/2 -- the *functional-margin*
        condition of the calibrated gate.
        """
        b1, b2, b3 = check_bits(bits)
        signs = [1.0 if b == 0 else -1.0 for b in (b1, b2, b3)]
        total = sum(s * e for s, e in zip(signs, self.efficiencies))
        maj = majority(b1, b2, b3)
        return (total > 0 and maj == 0) or (total < 0 and maj == 1)


def fit_arrival_model(minority_amplitudes: Mapping[int, float] = None
                      ) -> ArrivalModel:
    """Invert the three minority rows of Table I into an ArrivalModel.

    Parameters
    ----------
    minority_amplitudes:
        ``{input_index: normalised amplitude when that input is in the
        minority}`` with input indices 1..3.  Defaults to the paper's
        Table I values (0.083, 0.16, 0.164).

    Returns
    -------
    ArrivalModel
        The unique ``(e1, e2, e3, eta)`` reproducing those rows.
    """
    if minority_amplitudes is None:
        minority_amplitudes = {1: 0.083, 2: 0.16, 3: 0.164}
    if sorted(minority_amplitudes) != [1, 2, 3]:
        raise ValueError("minority_amplitudes must have keys 1, 2, 3")
    p1, p2, p3 = (minority_amplitudes[i] for i in (1, 2, 3))
    if min(p1, p2, p3) <= 0:
        raise ValueError("minority amplitudes must be positive")
    eta = p1 + p2 + p3
    if eta > 1.0:
        raise ValueError("minority amplitudes sum above 1; inconsistent "
                         "with the unanimous normalisation")
    # eta * (1 - 2 e_j) = p_j  =>  e_j = (1 - p_j / eta) / 2
    efficiencies = tuple((1.0 - p / eta) / 2.0 for p in (p1, p2, p3))
    if any(e >= 0.5 for e in efficiencies):
        raise ValueError("fitted efficiency >= 1/2 would flip the majority "
                         "phase; input data inconsistent with a working gate")
    return ArrivalModel(efficiencies=efficiencies, overlap_penalty=eta)


#: The model fitted to the paper's published Table I.
PAPER_ARRIVAL_MODEL = fit_arrival_model()


def xor_asymmetry_model() -> Dict[Tuple[int, int], float]:
    """Table II reproduction: per-pattern normalised XOR amplitudes.

    The XOR gate is two-wave interference: unanimous -> 1, antiphase ->
    0 up to a tiny residual from the O1-side asymmetry the paper's
    Table II shows as 0.99 vs 1.0.  We model outputs as ideal with the
    measured 1 % imbalance attached to O1 of the (0, 0) row.
    """
    return {pattern: (a1 + a2) / 2.0
            for pattern, (a1, a2) in PAPER_TABLE_II.items()}
