"""OVF 2.0 (text) reader/writer -- the OOMMF/MuMax3 interchange format.

Lets our solver's magnetisation states round-trip with the ecosystem
the paper used: ``mumax3-convert``/``ubermag`` can read what we write
and vice versa.  Only the rectangular-mesh, text-data subset of the
specification is implemented -- exactly what ``OVF2_TEXT`` output from
MuMax3 produces.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, TextIO, Tuple, Union

import numpy as np

from ..micromag.mesh import Mesh


@dataclass
class OvfField:
    """A vector field read from (or destined for) an OVF file."""

    mesh: Mesh
    data: np.ndarray           # (3, nz, ny, nx)
    title: str = "m"
    valueunit: str = ""

    def __post_init__(self) -> None:
        if self.data.shape != self.mesh.field_shape:
            raise ValueError(f"data shape {self.data.shape} != mesh field "
                             f"shape {self.mesh.field_shape}")


def write_ovf(destination: Union[str, TextIO], field: OvfField) -> None:
    """Write a vector field as OVF 2.0 text.

    Parameters
    ----------
    destination:
        File path or open text handle.
    field:
        The field to serialise.
    """
    mesh = field.mesh
    own = isinstance(destination, str)
    handle = open(destination, "w") if own else destination
    try:
        w = handle.write
        w("# OOMMF OVF 2.0\n")
        w("# Segment count: 1\n")
        w("# Begin: Segment\n")
        w("# Begin: Header\n")
        w(f"# Title: {field.title}\n")
        w("# meshtype: rectangular\n")
        w("# meshunit: m\n")
        for axis, label in enumerate("xyz"):
            w(f"# {label}base: "
              f"{mesh.origin[axis] + mesh.cell_size[axis] / 2:.9e}\n")
        for axis, label in enumerate("xyz"):
            w(f"# {label}stepsize: {mesh.cell_size[axis]:.9e}\n")
        for axis, label in enumerate("xyz"):
            w(f"# {label}nodes: {mesh.shape[axis]}\n")
        for axis, label in enumerate("xyz"):
            w(f"# {label}min: {mesh.origin[axis]:.9e}\n")
        for axis, label in enumerate("xyz"):
            w(f"# {label}max: "
              f"{mesh.origin[axis] + mesh.shape[axis] * mesh.cell_size[axis]:.9e}\n")
        w("# valuedim: 3\n")
        w(f"# valueunits: {field.valueunit} {field.valueunit} "
          f"{field.valueunit}\n")
        w("# valuelabels: m_x m_y m_z\n")
        w("# End: Header\n")
        w("# Begin: Data Text\n")
        data = field.data
        for iz in range(mesh.nz):
            for iy in range(mesh.ny):
                for ix in range(mesh.nx):
                    w(f"{data[0, iz, iy, ix]:.9e} "
                      f"{data[1, iz, iy, ix]:.9e} "
                      f"{data[2, iz, iy, ix]:.9e}\n")
        w("# End: Data Text\n")
        w("# End: Segment\n")
    finally:
        if own:
            handle.close()


def read_ovf(source: Union[str, TextIO]) -> OvfField:
    """Read an OVF 2.0 text file written by this module or MuMax3.

    Raises
    ------
    ValueError
        On malformed headers or data-count mismatches.
    """
    own = isinstance(source, str)
    handle = open(source, "r") if own else source
    try:
        header: Dict[str, str] = {}
        title = "m"
        lines = iter(handle)
        for line in lines:
            stripped = line.strip()
            if stripped.startswith("# Begin: Data Text"):
                break
            if stripped.startswith("#") and ":" in stripped:
                key, _, value = stripped[1:].partition(":")
                key = key.strip().lower()
                value = value.strip()
                header[key] = value
                if key == "title":
                    title = value
        else:
            raise ValueError("no 'Begin: Data Text' section found")

        def need(key: str) -> str:
            if key not in header:
                raise ValueError(f"missing OVF header field {key!r}")
            return header[key]

        shape = tuple(int(need(f"{label}nodes")) for label in "xyz")
        cell = tuple(float(need(f"{label}stepsize")) for label in "xyz")
        origin = tuple(float(header.get(f"{label}min", "0")) for label in "xyz")
        if header.get("valuedim", "3") != "3":
            raise ValueError("only valuedim=3 OVF files are supported")
        mesh = Mesh(cell_size=cell, shape=shape, origin=origin)

        values = []
        for line in lines:
            stripped = line.strip()
            if stripped.startswith("# End: Data Text"):
                break
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 3:
                raise ValueError(f"expected 3 columns, got: {stripped!r}")
            values.append([float(p) for p in parts])
        expected = mesh.n_cells
        if len(values) != expected:
            raise ValueError(f"expected {expected} data rows, got "
                             f"{len(values)}")
        arr = np.array(values)  # (n_cells, 3), x fastest
        data = np.empty(mesh.field_shape)
        grid = arr.reshape(mesh.nz, mesh.ny, mesh.nx, 3)
        for c in range(3):
            data[c] = grid[..., c]
        return OvfField(mesh=mesh, data=data, title=title,
                        valueunit=header.get("valueunits", "").split()[0]
                        if header.get("valueunits") else "")
    finally:
        if own:
            handle.close()
