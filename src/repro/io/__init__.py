"""I/O: OVF interchange with OOMMF/MuMax3 tooling and table rendering."""

from .ovf import OvfField, read_ovf, write_ovf
from .tables import format_table, format_truth_table

__all__ = ["OvfField", "read_ovf", "write_ovf", "format_table",
           "format_truth_table"]
