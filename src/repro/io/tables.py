"""ASCII table formatting for benchmark output.

The benches print the same rows the paper's tables report; this module
keeps that rendering consistent and dependency-free.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [["1", "22"]]))
    a | b
    --+---
    1 | 22
    """
    header = [str(h) for h in header]
    body = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(body):
        if len(row) != len(header):
            raise ValueError(f"row {i} has {len(row)} cells, header has "
                             f"{len(header)}")
    widths = [len(h) for h in header]
    for row in body:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 3 * (len(widths) - 1)))
    lines.append(render_row(header))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


#: Unicode block characters used by :func:`sparkline`, low to high.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: Optional[int] = None) -> str:
    """Render a numeric series as a one-line unicode sparkline.

    Values are min-max scaled onto eight block heights; a flat series
    renders mid-height.  Non-finite entries render as ``·``.  When
    ``width`` is given only the most recent ``width`` values are shown
    (a trajectory tail), not a resampled view.

    >>> sparkline([1, 2, 3, 4])
    '▁▃▆█'
    """
    import math

    series = [float(v) for v in values]
    if width is not None and width > 0:
        series = series[-width:]
    if not series:
        return ""
    finite = [v for v in series if math.isfinite(v)]
    if not finite:
        return "·" * len(series)
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars: List[str] = []
    for v in series:
        if not math.isfinite(v):
            chars.append("·")
        elif span == 0.0:
            chars.append(SPARK_CHARS[len(SPARK_CHARS) // 2])
        else:
            index = int((v - lo) / span * (len(SPARK_CHARS) - 1) + 0.5)
            chars.append(SPARK_CHARS[index])
    return "".join(chars)


def format_truth_table(patterns: Sequence[Sequence[int]],
                       columns: Sequence[str],
                       values: Sequence[Sequence[object]],
                       input_names: Sequence[str],
                       title: Optional[str] = None) -> str:
    """Render a logic truth table (inputs on the left, outputs right)."""
    header = list(input_names) + list(columns)
    rows = []
    for bits, vals in zip(patterns, values):
        rows.append([str(b) for b in bits]
                    + [v if isinstance(v, str) else f"{v:g}" for v in vals])
    return format_table(header, rows, title=title)
