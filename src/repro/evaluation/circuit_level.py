"""Circuit-level benchmarking (the ref. [42] style of comparison).

Section IV-D points to Zografos et al. [42]: at circuit level, SW
technology's energy/area advantages can outweigh its delay deficit
(e.g. an area-delay-power product 800x better for a 32-bit hybrid
divider).  This module provides the same figure-of-merit machinery for
the circuits our library can synthesise: gate-count, energy, critical
path and the energy-delay / area-delay-power products of n-bit adders
built from triangle gates vs their CMOS equivalents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..circuits.netlist import Netlist
from ..circuits.simulator import CircuitSimulator
from .cmos import cmos_gate
from .energy import TABLE_DELAY
from .transducers import PAPER_ME_CELL, METransducer

#: Rough ME-cell footprint [m^2] used for the area figure of merit --
#: a 50 nm x 100 nm transducer on the paper's 50 nm waveguides.
ME_CELL_AREA = 50e-9 * 100e-9

#: Rough transistor footprint per node [m^2] (gate pitch squared).
CMOS_TRANSISTOR_AREA = {"16nm": (64e-9) ** 2, "7nm": (40e-9) ** 2}


@dataclass(frozen=True)
class CircuitFigures:
    """Figure-of-merit bundle for one circuit realisation."""

    name: str
    technology: str
    device_count: int
    energy: float      # [J] per evaluation
    delay: float       # [s] critical path
    area: float        # [m^2]

    @property
    def energy_delay_product(self) -> float:
        return self.energy * self.delay

    @property
    def area_delay_power_product(self) -> float:
        """ADP(P) = area x delay x power, power = energy / delay -> the
        product reduces to area x energy (the convention of [42])."""
        return self.area * self.energy


def spin_wave_circuit_figures(netlist: Netlist,
                              transducer: METransducer = PAPER_ME_CELL
                              ) -> CircuitFigures:
    """Evaluate a spin-wave netlist's figures of merit.

    Energy/delay come from the circuit simulator's accounting (all-ones
    input as the representative vector -- energy is input-independent
    in the ME model); area counts every transducer cell.
    """
    sim = CircuitSimulator(netlist, transducer=transducer)
    inputs = {net: 1 for net in netlist.primary_inputs}
    report = sim.run(inputs)
    from ..circuits.simulator import _CELL_COUNTS

    n_cells = 0
    for gate in netlist.gates.values():
        excite, detect = _CELL_COUNTS[gate.gate_type]
        n_cells += excite + detect
    return CircuitFigures(
        name=netlist.name,
        technology="SW",
        device_count=n_cells,
        energy=report.energy,
        delay=report.delay,
        area=n_cells * ME_CELL_AREA)


def cmos_adder_figures(width: int, technology: str) -> CircuitFigures:
    """CMOS ripple-carry adder figures from the Table III gate data.

    Per full-adder slice: one MAJ (carry) + two XOR (sum); the critical
    path is the carry chain (one MAJ delay per bit) plus the final sum
    XOR, matching the structure used for the SW adder.
    """
    if width < 1:
        raise ValueError("width must be at least 1")
    maj = cmos_gate(technology, "MAJ")
    xor = cmos_gate(technology, "XOR")
    energy = width * (maj.energy + 2 * xor.energy)
    delay = width * maj.delay + xor.delay
    transistors = width * (maj.device_count + 2 * xor.device_count)
    area = transistors * CMOS_TRANSISTOR_AREA[technology.lower()
                                              .replace(" cmos", "")]
    return CircuitFigures(
        name=f"rca{width}",
        technology=f"{technology} CMOS",
        device_count=transistors,
        energy=energy,
        delay=delay,
        area=area)


def adder_comparison(width: int) -> Dict[str, CircuitFigures]:
    """n-bit adder: SW triangle gates vs 16 nm and 7 nm CMOS."""
    from ..circuits.synthesis import ripple_carry_adder_netlist

    sw = spin_wave_circuit_figures(ripple_carry_adder_netlist(width))
    return {
        "SW (this work)": sw,
        "16nm CMOS": cmos_adder_figures(width, "16nm"),
        "7nm CMOS": cmos_adder_figures(width, "7nm"),
    }


def format_comparison(figures: Dict[str, CircuitFigures]) -> str:
    """ASCII table of an adder comparison."""
    from ..io.tables import format_table

    rows: List[List[str]] = []
    for label, fig in figures.items():
        rows.append([
            label,
            str(fig.device_count),
            f"{fig.energy * 1e18:.0f}",
            f"{fig.delay * 1e9:.2f}",
            f"{fig.area * 1e12:.3f}",
            f"{fig.energy_delay_product * 1e27:.1f}",
            f"{fig.area_delay_power_product * 1e30:.2f}",
        ])
    return format_table(
        ["technology", "devices", "energy (aJ)", "delay (ns)",
         "area (um^2)", "EDP (aJ ns)", "area x energy (um^2 aJ)"],
        rows)
