"""Energy and delay estimation for spin-wave gates.

Implements the paper's evaluation methodology (Section IV-D):

* energy = sum over *excitation* cells of ``P_ME * t_pulse`` (detection
  cells read passively in this accounting; their cost is charged when
  they excite the next stage, consistent with assumption (v));
* the ladder baseline is re-evaluated at the same 100 ps pulse ("the
  energy consumption in [23] are re-evaluated based on 100 ps pulse
  signal excitation in order to make a fair comparison");
* delay = ME cell response delay, waveguide propagation neglected
  (assumption (iii)); the paper rounds 0.42 ns to 0.4 ns in Table III
  and we keep that convention through ``TABLE_DELAY``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .transducers import PAPER_ME_CELL, METransducer

#: The delay value Table III reports for every SW gate [s].
TABLE_DELAY = 0.4e-9


@dataclass(frozen=True)
class GateEnergyReport:
    """Energy/delay estimate of one spin-wave gate.

    Attributes
    ----------
    name:
        Gate identifier.
    n_excitation_cells / n_detection_cells:
        Transducer counts.
    energy:
        Total excitation energy per evaluation [J].
    delay:
        Input-to-output delay [s].
    excitation_levels:
        Relative drive level per excitation cell that produced
        ``energy`` (all 1.0 for the triangle gates).
    """

    name: str
    n_excitation_cells: int
    n_detection_cells: int
    energy: float
    delay: float
    excitation_levels: Mapping[str, float]

    @property
    def n_cells(self) -> int:
        """Total transducers -- Table III's "Used cell No."."""
        return self.n_excitation_cells + self.n_detection_cells

    @property
    def energy_delay_product(self) -> float:
        """EDP [J s]."""
        return self.energy * self.delay


def estimate_gate_energy(name: str, n_excitation_cells: int,
                         n_detection_cells: int,
                         transducer: METransducer = PAPER_ME_CELL,
                         excitation_levels: Optional[Mapping[str, float]] = None,
                         delay: float = TABLE_DELAY) -> GateEnergyReport:
    """Apply the paper's energy model to a gate.

    Parameters
    ----------
    name:
        Label for the report.
    n_excitation_cells / n_detection_cells:
        Transducer counts of the gate.
    transducer:
        ME cell parameters.
    excitation_levels:
        Optional per-cell relative drive levels; by default every cell
        runs at the nominal level 1.0.  **Table III's accounting** uses
        nominal levels for all designs (the ladder's unequal-level
        requirement is reported as a complexity penalty, not priced
        in); pass the ladder's real levels to quantify that penalty
        (see the ablation bench).
    delay:
        Gate delay [s]; the transducer-dominated 0.4 ns by default.
    """
    if n_excitation_cells < 1:
        raise ValueError("a gate needs at least one excitation cell")
    if n_detection_cells < 1:
        raise ValueError("a gate needs at least one detection cell")
    if excitation_levels is None:
        excitation_levels = {f"I{i + 1}": 1.0
                             for i in range(n_excitation_cells)}
    if len(excitation_levels) != n_excitation_cells:
        raise ValueError(
            f"{len(excitation_levels)} excitation levels given for "
            f"{n_excitation_cells} cells")
    energy = sum(transducer.excitation_energy_at_level(level)
                 for level in excitation_levels.values())
    return GateEnergyReport(
        name=name,
        n_excitation_cells=n_excitation_cells,
        n_detection_cells=n_detection_cells,
        energy=energy,
        delay=delay,
        excitation_levels=dict(excitation_levels))


# -- the four SW rows of Table III -------------------------------------------------

def triangle_maj3_report(transducer: METransducer = PAPER_ME_CELL
                         ) -> GateEnergyReport:
    """This work, MAJ: 3 + 2 cells, 3 x 3.44 aJ = 10.3 aJ, 0.4 ns."""
    return estimate_gate_energy("triangle MAJ3 FO2 (this work)", 3, 2,
                                transducer)


def triangle_xor_report(transducer: METransducer = PAPER_ME_CELL
                        ) -> GateEnergyReport:
    """This work, XOR: 2 + 2 cells, 2 x 3.44 aJ = 6.9 aJ, 0.4 ns."""
    return estimate_gate_energy("triangle XOR FO2 (this work)", 2, 2,
                                transducer)


def ladder_maj3_report(transducer: METransducer = PAPER_ME_CELL,
                       real_levels: bool = False) -> GateEnergyReport:
    """SW baseline [22/23], MAJ: 4 + 2 cells, 13.7 aJ at nominal levels.

    With ``real_levels=True`` the bent-path inputs are driven at the
    elevated level the ladder needs (quantifying the penalty Table III
    footnotes qualitatively).
    """
    levels = None
    if real_levels:
        from ..core.ladder import LadderMajorityGate
        levels = LadderMajorityGate().excitation_levels()
    return estimate_gate_energy("ladder MAJ3 FO2 [22]", 4, 2, transducer,
                                excitation_levels=levels)


def ladder_xor_report(transducer: METransducer = PAPER_ME_CELL
                      ) -> GateEnergyReport:
    """SW baseline [23], XOR: 4 + 2 cells, 13.7 aJ at nominal levels."""
    return estimate_gate_energy("ladder XOR FO2 [23]", 4, 2, transducer)
