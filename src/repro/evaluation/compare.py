"""Table III generator: the full performance comparison.

Builds the paper's comparison table (CMOS 16 nm / 7 nm vs the ladder SW
baseline vs this work) from the component models and derives every
ratio the paper quotes -- including the abstract's headline numbers
(25-50 % energy saving vs SW, 43x-0.8x energy vs CMOS, 11x-40x delay
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .cmos import CmosGateData, cmos_gate
from .energy import (
    GateEnergyReport,
    ladder_maj3_report,
    ladder_xor_report,
    triangle_maj3_report,
    triangle_xor_report,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One (design, function) cell of Table III."""

    design: str
    technology: str
    function: str
    device_count: int
    delay: float
    energy: float

    @property
    def energy_aj(self) -> float:
        return self.energy * 1e18

    @property
    def delay_ns(self) -> float:
        return self.delay * 1e9


def _row_from_cmos(data: CmosGateData) -> ComparisonRow:
    return ComparisonRow(design=data.technology,
                         technology=data.technology,
                         function=data.function,
                         device_count=data.device_count,
                         delay=data.delay, energy=data.energy)


def _row_from_sw(report: GateEnergyReport, design: str,
                 function: str) -> ComparisonRow:
    return ComparisonRow(design=design, technology="SW",
                         function=function,
                         device_count=report.n_cells,
                         delay=report.delay, energy=report.energy)


def build_table_iii() -> List[ComparisonRow]:
    """All eight rows of Table III in the paper's column order."""
    return [
        _row_from_cmos(cmos_gate("16nm", "MAJ")),
        _row_from_cmos(cmos_gate("16nm", "XOR")),
        _row_from_cmos(cmos_gate("7nm", "MAJ")),
        _row_from_cmos(cmos_gate("7nm", "XOR")),
        _row_from_sw(ladder_maj3_report(), "SW [23]", "MAJ"),
        _row_from_sw(ladder_xor_report(), "SW [23]", "XOR"),
        _row_from_sw(triangle_maj3_report(), "This work", "MAJ"),
        _row_from_sw(triangle_xor_report(), "This work", "XOR"),
    ]


@dataclass(frozen=True)
class HeadlineRatios:
    """Every derived ratio the paper's text quotes.

    All ratios are "other / this work" for energy (so > 1 means this
    work wins) and "this work / other" for delay (so > 1 means this
    work is slower) -- matching the paper's phrasing.
    """

    energy_vs_cmos16_maj: float
    energy_vs_cmos16_xor: float
    energy_vs_cmos7_maj: float
    energy_vs_cmos7_xor: float
    delay_overhead_cmos16_maj: float
    delay_overhead_cmos16_xor: float
    delay_overhead_cmos7_maj: float
    delay_overhead_cmos7_xor: float
    energy_saving_vs_sw_maj: float   # fractional: 0.25 = 25 %
    energy_saving_vs_sw_xor: float   # fractional: 0.5 = 50 %

    def as_dict(self) -> Dict[str, float]:
        return {
            "energy reduction vs 16nm CMOS (MAJ)": self.energy_vs_cmos16_maj,
            "energy reduction vs 16nm CMOS (XOR)": self.energy_vs_cmos16_xor,
            "energy reduction vs 7nm CMOS (MAJ)": self.energy_vs_cmos7_maj,
            "energy reduction vs 7nm CMOS (XOR)": self.energy_vs_cmos7_xor,
            "delay overhead vs 16nm CMOS (MAJ)": self.delay_overhead_cmos16_maj,
            "delay overhead vs 16nm CMOS (XOR)": self.delay_overhead_cmos16_xor,
            "delay overhead vs 7nm CMOS (MAJ)": self.delay_overhead_cmos7_maj,
            "delay overhead vs 7nm CMOS (XOR)": self.delay_overhead_cmos7_xor,
            "energy saving vs SW baseline (MAJ)": self.energy_saving_vs_sw_maj,
            "energy saving vs SW baseline (XOR)": self.energy_saving_vs_sw_xor,
        }


def headline_ratios() -> HeadlineRatios:
    """Compute the paper's quoted comparison numbers from Table III.

    Expected values (paper): XOR energy 43x / 0.8x vs 16/7 nm CMOS,
    MAJ 1.6x vs 7 nm; delay overheads 13x/20x (MAJ) and 13x/40x (XOR);
    energy savings 25 % (MAJ) / 50 % (XOR) vs the ladder SW gates.
    (The text's "11x" for MAJ vs 16 nm CMOS is inconsistent with its
    own Table III, which implies ~45x; we derive from the table.)
    """
    c16_maj = cmos_gate("16nm", "MAJ")
    c16_xor = cmos_gate("16nm", "XOR")
    c7_maj = cmos_gate("7nm", "MAJ")
    c7_xor = cmos_gate("7nm", "XOR")
    t_maj = triangle_maj3_report()
    t_xor = triangle_xor_report()
    l_maj = ladder_maj3_report()
    l_xor = ladder_xor_report()
    return HeadlineRatios(
        energy_vs_cmos16_maj=c16_maj.energy / t_maj.energy,
        energy_vs_cmos16_xor=c16_xor.energy / t_xor.energy,
        energy_vs_cmos7_maj=c7_maj.energy / t_maj.energy,
        energy_vs_cmos7_xor=c7_xor.energy / t_xor.energy,
        delay_overhead_cmos16_maj=t_maj.delay / c16_maj.delay,
        delay_overhead_cmos16_xor=t_xor.delay / c16_xor.delay,
        delay_overhead_cmos7_maj=t_maj.delay / c7_maj.delay,
        delay_overhead_cmos7_xor=t_xor.delay / c7_xor.delay,
        energy_saving_vs_sw_maj=1.0 - t_maj.energy / l_maj.energy,
        energy_saving_vs_sw_xor=1.0 - t_xor.energy / l_xor.energy,
    )


def format_table_iii(rows: List[ComparisonRow] = None) -> str:
    """Render Table III as aligned ASCII (the bench prints this)."""
    from ..io.tables import format_table

    rows = rows if rows is not None else build_table_iii()
    header = ["Design", "Function", "Used cell No.", "Delay (ns)",
              "Energy (aJ)"]
    body = [[r.design, r.function, str(r.device_count),
             f"{r.delay_ns:.2f}", f"{r.energy_aj:.1f}"] for r in rows]
    return format_table(header, body,
                        title="TABLE III: PERFORMANCE COMPARISON")
