"""Magnetoelectric (ME) transducer model -- the paper's energy unit.

Section IV-D, assumptions (i)-(vi): ME cells excite and detect the spin
waves; one cell consumes 34.4 nW and has a 0.42 ns response delay (from
Zografos et al. [42]); excitation uses 100 ps pulses; propagation delay
and loss in the waveguide are neglected against the transducers.

Energy per *excitation* event is therefore ``P * t_pulse`` = 3.44 aJ,
and gate energy = (number of excitation cells) * 3.44 aJ -- exactly the
arithmetic that produces Table III's 10.3 aJ (3 cells) and 6.9 aJ
(2 cells) for this work, and 13.7 aJ (4 cells) for the ladder baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class METransducer:
    """Parametric ME cell.

    Attributes
    ----------
    power:
        Drive power while active [W] (34.4 nW in [42]).
    delay:
        Cell response delay [s] (0.42 ns in [42]).
    pulse_duration:
        Excitation pulse length [s] (100 ps, assumption (vi)).
    """

    power: float = 34.4e-9
    delay: float = 0.42e-9
    pulse_duration: float = 100e-12

    def __post_init__(self) -> None:
        if self.power <= 0:
            raise ValueError("transducer power must be positive")
        if self.delay <= 0:
            raise ValueError("transducer delay must be positive")
        if self.pulse_duration <= 0:
            raise ValueError("pulse duration must be positive")

    @property
    def excitation_energy(self) -> float:
        """Energy of one excitation pulse [J] (3.44 aJ for the defaults)."""
        return self.power * self.pulse_duration

    def excitation_energy_at_level(self, relative_level: float) -> float:
        """Energy for a drive at ``relative_level`` times the nominal.

        Drive *power* scales with the square of the drive amplitude; the
        ladder baseline's bent-path inputs need higher amplitude, hence
        the quadratic scaling here.
        """
        if relative_level < 0:
            raise ValueError("relative level must be non-negative")
        return self.excitation_energy * relative_level ** 2

    def with_pulse(self, pulse_duration: float) -> "METransducer":
        """Copy with a different pulse duration (the paper re-evaluated
        ref. [23] at 100 ps "to make a fair comparison")."""
        return replace(self, pulse_duration=pulse_duration)


#: The paper's ME cell (34.4 nW, 0.42 ns, 100 ps pulse).
PAPER_ME_CELL = METransducer()
