"""CMOS reference gate data for the Table III comparison.

The paper benchmarks against 16 nm CMOS [40] and 7 nm CMOS [41] gate
realisations, assuming a 3-input Majority gate built from 4 NAND gates
(16 transistors) and the XOR figures quoted in those references.  The
published Table III numbers are encoded verbatim; derived quantities
(per-NAND energy, energy-delay product) are computed, not stored, so
the arithmetic is visible and testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class CmosGateData:
    """One CMOS gate entry of Table III.

    Attributes
    ----------
    technology:
        Node label ("16nm CMOS", "7nm CMOS").
    function:
        "MAJ" or "XOR".
    device_count:
        Transistor count ("Used cell No." row).
    delay:
        Propagation delay [s].
    energy:
        Switching energy [J].
    """

    technology: str
    function: str
    device_count: int
    delay: float
    energy: float

    def __post_init__(self) -> None:
        if self.device_count <= 0:
            raise ValueError("device count must be positive")
        if self.delay <= 0 or self.energy <= 0:
            raise ValueError("delay and energy must be positive")

    @property
    def energy_delay_product(self) -> float:
        """EDP [J s]."""
        return self.energy * self.delay


#: Table III, columns "16nm CMOS" and "7nm CMOS" (refs [40], [41]).
#: MAJ = 4 NAND gates = 16 transistors; XOR = 8 transistors.
CMOS_TABLE: Dict[Tuple[str, str], CmosGateData] = {
    ("16nm", "MAJ"): CmosGateData("16nm CMOS", "MAJ", 16, 0.03e-9, 466e-18),
    ("16nm", "XOR"): CmosGateData("16nm CMOS", "XOR", 8, 0.03e-9, 303e-18),
    ("7nm", "MAJ"): CmosGateData("7nm CMOS", "MAJ", 16, 0.02e-9, 16.4e-18),
    ("7nm", "XOR"): CmosGateData("7nm CMOS", "XOR", 8, 0.01e-9, 5.4e-18),
}

#: Number of NAND gates composing the CMOS 3-input majority.
NANDS_PER_MAJ = 4
#: Transistors per (2-input) NAND in static CMOS.
TRANSISTORS_PER_NAND = 4


def cmos_gate(technology: str, function: str) -> CmosGateData:
    """Look up a CMOS reference gate.

    Parameters
    ----------
    technology:
        "16nm" or "7nm".
    function:
        "MAJ" or "XOR".
    """
    key = (technology.lower().replace(" cmos", ""), function.upper())
    if key not in CMOS_TABLE:
        options = sorted({k[0] for k in CMOS_TABLE})
        raise KeyError(f"no CMOS data for {technology!r}/{function!r}; "
                       f"technologies: {options}, functions: MAJ, XOR")
    return CMOS_TABLE[key]


def maj_transistor_count() -> int:
    """16 transistors: 4 NAND gates of 4 transistors each."""
    return NANDS_PER_MAJ * TRANSISTORS_PER_NAND
