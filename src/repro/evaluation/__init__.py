"""Energy/delay evaluation: ME transducers, CMOS references, Table III."""

from .transducers import PAPER_ME_CELL, METransducer
from .cmos import (
    CMOS_TABLE,
    NANDS_PER_MAJ,
    TRANSISTORS_PER_NAND,
    CmosGateData,
    cmos_gate,
    maj_transistor_count,
)
from .energy import (
    TABLE_DELAY,
    GateEnergyReport,
    estimate_gate_energy,
    ladder_maj3_report,
    ladder_xor_report,
    triangle_maj3_report,
    triangle_xor_report,
)
from .compare import (
    ComparisonRow,
    HeadlineRatios,
    build_table_iii,
    format_table_iii,
    headline_ratios,
)

__all__ = [
    "PAPER_ME_CELL",
    "METransducer",
    "CMOS_TABLE",
    "NANDS_PER_MAJ",
    "TRANSISTORS_PER_NAND",
    "CmosGateData",
    "cmos_gate",
    "maj_transistor_count",
    "TABLE_DELAY",
    "GateEnergyReport",
    "estimate_gate_energy",
    "ladder_maj3_report",
    "ladder_xor_report",
    "triangle_maj3_report",
    "triangle_xor_report",
    "ComparisonRow",
    "HeadlineRatios",
    "build_table_iii",
    "format_table_iii",
    "headline_ratios",
]
