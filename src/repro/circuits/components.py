"""Auxiliary spin-wave circuit components.

Section III-A (last paragraph): "the gate fan-out capabilities can be
extended beyond 2 by using directional couplers [36] to split the spin
wave into multiple arms and using repeaters [37] to regenerate a strong
SW in the different waveguides."  These components complete the circuit
layer: couplers split amplitude, repeaters restore it (at transducer
cost).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..physics.waves import Wave
from ..evaluation.transducers import PAPER_ME_CELL, METransducer


@dataclass(frozen=True)
class DirectionalCoupler:
    """Ideal N-arm power splitter (ref. [36] device class).

    Splits an incoming wave into ``n_arms`` equal arms; power is
    conserved, so the per-arm amplitude is ``1/sqrt(n)`` of the input.
    An ``excess_loss`` factor (amplitude, per pass) models the coupler's
    non-ideality.
    """

    n_arms: int = 2
    excess_loss: float = 1.0

    def __post_init__(self) -> None:
        if self.n_arms < 2:
            raise ValueError("a coupler needs at least 2 arms")
        if not 0.0 < self.excess_loss <= 1.0:
            raise ValueError("excess loss factor must be in (0, 1]")

    def split(self, wave: Wave) -> List[Wave]:
        """The per-arm output waves (equal amplitude and phase)."""
        arm = wave.split(self.n_arms).attenuate(self.excess_loss)
        return [arm] * self.n_arms

    @property
    def per_arm_amplitude_factor(self) -> float:
        return self.excess_loss / math.sqrt(self.n_arms)


@dataclass(frozen=True)
class Repeater:
    """Clocked spin-wave repeater (ref. [37] device class).

    Regenerates a full-strength wave from a (possibly attenuated)
    incoming wave while preserving its phase.  Costs one transducer
    excitation per evaluation plus the repeater latch delay.
    """

    transducer: METransducer = PAPER_ME_CELL
    nominal_amplitude: float = 1.0
    minimum_input: float = 0.1

    def __post_init__(self) -> None:
        if self.nominal_amplitude <= 0:
            raise ValueError("nominal amplitude must be positive")
        if not 0.0 < self.minimum_input < self.nominal_amplitude:
            raise ValueError("minimum input must be in (0, nominal)")

    def regenerate(self, wave: Wave) -> Wave:
        """A fresh wave at nominal amplitude with the input's phase.

        Raises
        ------
        ValueError
            If the input is below the repeater's sensitivity -- the
            signal was lost upstream and regeneration would launder an
            undefined logic value.
        """
        if wave.amplitude < self.minimum_input:
            raise ValueError(
                f"repeater input amplitude {wave.amplitude:.3g} below "
                f"sensitivity {self.minimum_input:.3g}")
        return Wave(amplitude=self.nominal_amplitude, phase=wave.phase,
                    frequency=wave.frequency)

    @property
    def energy(self) -> float:
        """Energy per regeneration [J] (one ME excitation)."""
        return self.transducer.excitation_energy

    @property
    def delay(self) -> float:
        """Regeneration delay [s] (ME cell response)."""
        return self.transducer.delay


def fanout_chain(target_fanout: int, coupler_arms: int = 2
                 ) -> Tuple[int, int]:
    """Plan a fan-out tree beyond the native FO2.

    Returns ``(n_couplers, n_repeaters)`` for a tree of
    ``coupler_arms``-way couplers delivering ``target_fanout`` copies,
    with one repeater per leaf to restore full amplitude (the paper's
    recipe for fan-out > 2).

    >>> fanout_chain(2)
    (1, 2)
    >>> fanout_chain(4)
    (3, 4)
    """
    if target_fanout < 2:
        raise ValueError("fan-out below 2 needs no splitting")
    if coupler_arms < 2:
        raise ValueError("couplers need at least 2 arms")
    n_couplers = 0
    leaves = 1
    while leaves < target_fanout:
        n_couplers += leaves
        leaves *= coupler_arms
    return n_couplers, target_fanout
