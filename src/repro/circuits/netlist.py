"""Gate-level netlists of spin-wave logic.

The paper motivates fan-out with circuit building ("the same structure
can be used to feed multiple inputs of next stage gates
simultaneously").  This module provides the netlist container used by
the circuit simulator: named nets, gate instances with typed ports, and
structural validation (drive conflicts, dangling inputs, fan-out
budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import (
    CombinationalLoopError,
    DanglingNetError,
    DriveConflictError,
    FanOutExceededError,
)

#: Gate types the circuit layer understands and their port signatures.
GATE_PORT_COUNTS: Dict[str, Tuple[int, int]] = {
    # type: (n_inputs, n_outputs)
    "MAJ3": (3, 2),
    "NMAJ3": (3, 2),
    "XOR": (2, 2),
    "XNOR": (2, 2),
    "AND": (2, 2),
    "NAND": (2, 2),
    "OR": (2, 2),
    "NOR": (2, 2),
    "NOT": (1, 2),
    "REPEATER": (1, 1),
    "SPLITTER2": (1, 2),
    "SPLITTER3": (1, 3),
}

#: Native fan-out of the triangle gates (and the splitter components
#: used to exceed it, Section III-A last paragraph).
TRIANGLE_FAN_OUT = 2


@dataclass(frozen=True)
class GateInstance:
    """One gate in a netlist.

    Attributes
    ----------
    name:
        Unique instance name.
    gate_type:
        Key into :data:`GATE_PORT_COUNTS`.
    inputs:
        Net names driving the gate's inputs, in port order.
    outputs:
        Net names the gate drives, in port order.  Unused outputs may
        be ``None`` (an FO2 gate feeding a single consumer).
    """

    name: str
    gate_type: str
    inputs: Tuple[str, ...]
    outputs: Tuple[Optional[str], ...]

    def __post_init__(self) -> None:
        if self.gate_type not in GATE_PORT_COUNTS:
            raise ValueError(f"unknown gate type {self.gate_type!r}; "
                             f"known: {sorted(GATE_PORT_COUNTS)}")
        n_in, n_out = GATE_PORT_COUNTS[self.gate_type]
        if len(self.inputs) != n_in:
            raise ValueError(f"{self.gate_type} takes {n_in} inputs, "
                             f"got {len(self.inputs)}")
        if len(self.outputs) != n_out:
            raise ValueError(f"{self.gate_type} has {n_out} outputs, "
                             f"got {len(self.outputs)}")
        driven = [o for o in self.outputs if o is not None]
        if not driven:
            raise ValueError(f"gate {self.name!r} drives no nets")
        if len(set(driven)) != len(driven):
            raise ValueError(f"gate {self.name!r} drives a net twice")


class Netlist:
    """A combinational spin-wave circuit.

    Nets are created implicitly by reference.  Primary inputs and
    outputs are declared explicitly; everything else is internal.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.gates: Dict[str, GateInstance] = {}
        self.primary_inputs: List[str] = []
        self.primary_outputs: List[str] = []

    # -- construction -------------------------------------------------------------

    def add_input(self, net: str) -> str:
        """Declare a primary input net."""
        if net in self.primary_inputs:
            raise ValueError(f"duplicate primary input {net!r}")
        self.primary_inputs.append(net)
        return net

    def add_output(self, net: str) -> str:
        """Declare a primary output net."""
        if net in self.primary_outputs:
            raise ValueError(f"duplicate primary output {net!r}")
        self.primary_outputs.append(net)
        return net

    def add_gate(self, name: str, gate_type: str,
                 inputs: Sequence[str],
                 outputs: Sequence[Optional[str]]) -> GateInstance:
        """Instantiate a gate."""
        if name in self.gates:
            raise ValueError(f"duplicate gate name {name!r}")
        inst = GateInstance(name=name, gate_type=gate_type.upper(),
                            inputs=tuple(inputs), outputs=tuple(outputs))
        self.gates[name] = inst
        self._check_single_driver(inst)
        self.gates[name] = inst
        return inst

    def _check_single_driver(self, new: GateInstance) -> None:
        drivers = self.net_drivers()
        for net in (o for o in new.outputs if o is not None):
            if net in self.primary_inputs:
                raise ValueError(f"gate {new.name!r} drives primary input "
                                 f"{net!r}")
            owners = drivers.get(net, [])
            if len(owners) > 1:
                raise DriveConflictError(net, owners, netlist=self.name)

    # -- queries ------------------------------------------------------------------

    def net_drivers(self) -> Dict[str, List[str]]:
        """net -> list of gate names driving it."""
        drivers: Dict[str, List[str]] = {}
        for gate in self.gates.values():
            for net in gate.outputs:
                if net is not None:
                    drivers.setdefault(net, []).append(gate.name)
        return drivers

    def net_loads(self) -> Dict[str, List[Tuple[str, int]]]:
        """net -> list of (gate name, input port index) consuming it."""
        loads: Dict[str, List[Tuple[str, int]]] = {}
        for gate in self.gates.values():
            for port, net in enumerate(gate.inputs):
                loads.setdefault(net, []).append((gate.name, port))
        return loads

    def all_nets(self) -> Set[str]:
        """Every net name referenced anywhere."""
        nets: Set[str] = set(self.primary_inputs) | set(self.primary_outputs)
        for gate in self.gates.values():
            nets.update(gate.inputs)
            nets.update(n for n in gate.outputs if n is not None)
        return nets

    def topological_order(self) -> List[str]:
        """Gate names in evaluation order; raises on combinational loops."""
        drivers = self.net_drivers()
        dependencies: Dict[str, Set[str]] = {}
        for gate in self.gates.values():
            deps = set()
            for net in gate.inputs:
                for owner in drivers.get(net, []):
                    deps.add(owner)
            dependencies[gate.name] = deps
        order: List[str] = []
        done: Set[str] = set()
        remaining = set(self.gates)
        while remaining:
            ready = sorted(g for g in remaining
                           if dependencies[g] <= done)
            if not ready:
                raise CombinationalLoopError(remaining, netlist=self.name)
            order.extend(ready)
            done.update(ready)
            remaining.difference_update(ready)
        return order

    def validate(self) -> None:
        """Full structural check.

        Raises
        ------
        repro.errors.DanglingNetError
            A gate input (or primary output) has no driver and is not a
            primary input.
        repro.errors.FanOutExceededError
            A net feeds more than one consumer; each SW output drives
            exactly one next-stage input -- use the gate's second FO2
            output or a SPLITTER component for more.
        repro.errors.CombinationalLoopError
            The gates form a combinational cycle.

        All three subclass :class:`repro.errors.NetlistError` (itself a
        ``ValueError`` for backwards compatibility).
        """
        drivers = self.net_drivers()
        loads = self.net_loads()
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in drivers and net not in self.primary_inputs:
                    raise DanglingNetError(net, gate.name,
                                           netlist=self.name)
        for net in self.primary_outputs:
            if net not in drivers and net not in self.primary_inputs:
                raise DanglingNetError(net, "<primary output>",
                                       netlist=self.name)
        # Fan-out budget: one physical detector feeds one next-stage
        # input (assumption (v)); an FO2 gate exposes two output nets.
        for net, users in loads.items():
            consumers = len(users) + (1 if net in self.primary_outputs else 0)
            if consumers > 1:
                raise FanOutExceededError(net, consumers,
                                          netlist=self.name)
        self.topological_order()

    @property
    def gate_count(self) -> int:
        return len(self.gates)

    def count_by_type(self) -> Dict[str, int]:
        """Gate-type histogram (for energy totals)."""
        counts: Dict[str, int] = {}
        for gate in self.gates.values():
            counts[gate.gate_type] = counts.get(gate.gate_type, 0) + 1
        return counts
