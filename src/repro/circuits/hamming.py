"""Hamming(7,4) encoder / single-error corrector over spin-wave gates.

Section II-B motivates majority/parity hardware with error detection
and correction.  The Hamming(7,4) code is the textbook single-error
corrector and exercises the whole gate library at once: XOR chains for
parities and syndromes, derived AND gates with NOT literals for the
syndrome decoder, and splitter trees for the heavy signal reuse.

Codeword layout (positions 1..7): p1 p2 d1 p3 d2 d3 d4 with
p1 = d1^d2^d4, p2 = d1^d3^d4, p3 = d2^d3^d4; the syndrome
(s3 s2 s1) read as a binary number is the 1-based error position.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .netlist import Netlist

#: position (1-based) of each data bit in the codeword.
DATA_POSITIONS = {1: 3, 2: 5, 3: 6, 4: 7}
#: position of each parity bit.
PARITY_POSITIONS = {1: 1, 2: 2, 3: 4}


def hamming74_encode(data: Sequence[int]) -> Tuple[int, ...]:
    """Reference encoder: 4 data bits -> 7-bit codeword (positions 1..7).

    >>> hamming74_encode((1, 0, 1, 1))
    (0, 1, 1, 0, 0, 1, 1)
    """
    if len(data) != 4:
        raise ValueError("Hamming(7,4) takes 4 data bits")
    d1, d2, d3, d4 = (int(b) for b in data)
    if any(b not in (0, 1) for b in (d1, d2, d3, d4)):
        raise ValueError("data bits must be 0 or 1")
    p1 = d1 ^ d2 ^ d4
    p2 = d1 ^ d3 ^ d4
    p3 = d2 ^ d3 ^ d4
    return (p1, p2, d1, p3, d2, d3, d4)


def hamming74_decode(codeword: Sequence[int]) -> Tuple[Tuple[int, ...], int]:
    """Reference decoder: codeword -> (corrected data, error position).

    Error position 0 means the codeword was clean.
    """
    if len(codeword) != 7:
        raise ValueError("codeword must have 7 bits")
    c = [int(b) for b in codeword]
    s1 = c[0] ^ c[2] ^ c[4] ^ c[6]
    s2 = c[1] ^ c[2] ^ c[5] ^ c[6]
    s3 = c[3] ^ c[4] ^ c[5] ^ c[6]
    position = s1 + 2 * s2 + 4 * s3
    if position:
        c[position - 1] ^= 1
    return (c[2], c[4], c[5], c[6]), position


class _Fan:
    """Splitter-tree helper: hand out copies of a net on demand."""

    def __init__(self, netlist: Netlist, source: str, copies: int):
        self.netlist = netlist
        self._pool: List[str] = []
        self._grow(source, copies)

    def _grow(self, source: str, copies: int) -> None:
        if copies <= 1:
            self._pool.append(source)
            return
        # Binary splitter tree.
        left = copies - copies // 2
        right = copies // 2
        a = f"{source}_f{left}"
        b = f"{source}_g{right}"
        self.netlist.add_gate(f"split_{source}_{copies}", "SPLITTER2",
                              [source], [a, b])
        self._grow(a, left)
        self._grow(b, right)

    def take(self) -> str:
        if not self._pool:
            raise RuntimeError("fan exhausted; plan more copies")
        return self._pool.pop()


def _xor_chain(netlist: Netlist, prefix: str, nets: Sequence[str],
               out: str) -> None:
    """Reduce nets with 2-input XOR gates into ``out``."""
    acc = nets[0]
    for index, net in enumerate(nets[1:]):
        target = out if index == len(nets) - 2 else f"{prefix}_x{index}"
        netlist.add_gate(f"{prefix}_xor{index}", "XOR", [acc, net],
                         [target, None])
        acc = target


def hamming74_encoder_netlist() -> Netlist:
    """Encoder: inputs d1..d4, outputs c1..c7."""
    net = Netlist("hamming74_encoder")
    for i in range(1, 5):
        net.add_input(f"d{i}")
    for i in range(1, 8):
        net.add_output(f"c{i}")
    # Usage counts: d1 in p1, p2 + pass-through; d2 in p1, p3 + out;
    # d3 in p2, p3 + out; d4 in p1, p2, p3 + out.
    fans = {
        "d1": _Fan(net, "d1", 3),
        "d2": _Fan(net, "d2", 3),
        "d3": _Fan(net, "d3", 3),
        "d4": _Fan(net, "d4", 4),
    }
    _xor_chain(net, "p1", [fans["d1"].take(), fans["d2"].take(),
                           fans["d4"].take()], "c1")
    _xor_chain(net, "p2", [fans["d1"].take(), fans["d3"].take(),
                           fans["d4"].take()], "c2")
    _xor_chain(net, "p3", [fans["d2"].take(), fans["d3"].take(),
                           fans["d4"].take()], "c4")
    # Data pass-throughs (repeaters re-excite the wave toward outputs).
    net.add_gate("buf_c3", "REPEATER", [fans["d1"].take()], ["c3"])
    net.add_gate("buf_c5", "REPEATER", [fans["d2"].take()], ["c5"])
    net.add_gate("buf_c6", "REPEATER", [fans["d3"].take()], ["c6"])
    net.add_gate("buf_c7", "REPEATER", [fans["d4"].take()], ["c7"])
    net.validate()
    return net


def hamming74_corrector_netlist() -> Netlist:
    """Single-error corrector: inputs c1..c7, outputs d1..d4 (corrected).

    Structure: three 4-input XOR syndrome chains; per data bit a
    2-AND miniterm over the syndrome literals selecting "error is
    here", XORed into the received bit.
    """
    net = Netlist("hamming74_corrector")
    for i in range(1, 8):
        net.add_input(f"c{i}")
    for i in range(1, 5):
        net.add_output(f"d{i}")

    # Codeword-bit usage: syndrome membership + (data bits) final XOR.
    usage = {1: 1, 2: 1, 3: 3, 4: 1, 5: 3, 6: 3, 7: 4}
    fans = {i: _Fan(net, f"c{i}", usage[i]) for i in range(1, 8)}

    _xor_chain(net, "s1", [fans[1].take(), fans[3].take(),
                           fans[5].take(), fans[7].take()], "s1")
    _xor_chain(net, "s2", [fans[2].take(), fans[3].take(),
                           fans[6].take(), fans[7].take()], "s2")
    _xor_chain(net, "s3", [fans[4].take(), fans[5].take(),
                           fans[6].take(), fans[7].take()], "s3")

    # Literal requirements over the four miniterms
    # d1@3: s1 s2 ~s3 | d2@5: s1 ~s2 s3 | d3@6: ~s1 s2 s3 | d4@7: s1 s2 s3.
    # Positive/negative usage per syndrome: s1: 3 pos, 1 neg;
    # s2: 3 pos, 1 neg; s3: 3 pos, 1 neg -- fan each into 4 and invert one.
    syn_fans = {name: _Fan(net, name, 4) for name in ("s1", "s2", "s3")}
    inverted = {}
    for name in ("s1", "s2", "s3"):
        net.add_gate(f"not_{name}", "NOT", [syn_fans[name].take()],
                     [f"n{name}", None])
        inverted[name] = f"n{name}"

    miniterms = {
        1: (syn_fans["s1"].take(), syn_fans["s2"].take(), inverted["s3"]),
        2: (syn_fans["s1"].take(), inverted["s2"], syn_fans["s3"].take()),
        3: (inverted["s1"], syn_fans["s2"].take(), syn_fans["s3"].take()),
        4: (syn_fans["s1"].take(), syn_fans["s2"].take(),
            syn_fans["s3"].take()),
    }
    for data_bit, (a, b, c) in miniterms.items():
        net.add_gate(f"and_{data_bit}a", "AND", [a, b],
                     [f"m{data_bit}a", None])
        net.add_gate(f"and_{data_bit}b", "AND", [f"m{data_bit}a", c],
                     [f"flip{data_bit}", None])
        position = DATA_POSITIONS[data_bit]
        net.add_gate(f"fix_{data_bit}", "XOR",
                     [fans[position].take(), f"flip{data_bit}"],
                     [f"d{data_bit}", None])
    net.validate()
    return net


def run_corrector(simulator, codeword: Sequence[int]) -> Tuple[int, ...]:
    """Evaluate a corrector netlist simulator on a 7-bit codeword."""
    inputs = {f"c{i + 1}": int(b) for i, b in enumerate(codeword)}
    outputs = simulator.run(inputs).outputs
    return tuple(outputs[f"d{i}"] for i in range(1, 5))
