"""Gate-level simulator for spin-wave netlists.

Evaluates a :class:`~repro.circuits.netlist.Netlist` on boolean inputs
using the library's gate models, and accumulates the physical cost
(energy, critical-path delay) with the paper's accounting: every gate
evaluation charges its excitation cells, and the critical path counts
one transducer delay per logic stage.

Two gate-model levels are available:

* ``"boolean"`` -- pure truth-table evaluation (fast, for large nets);
* ``"network"`` -- every MAJ3/XOR instance is evaluated through an
  actual :class:`~repro.core.gates.TriangleMajorityGate` /
  :class:`~repro.core.gates.TriangleXorGate` wave model, so phase
  bookkeeping and detection margins are physical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.gates import DerivedTriangleGate, TriangleMajorityGate, TriangleXorGate
from ..core.logic import and_, majority, nand, nor, not_, or_, xnor, xor
from ..evaluation.energy import TABLE_DELAY, estimate_gate_energy
from ..evaluation.transducers import PAPER_ME_CELL, METransducer
from .netlist import GATE_PORT_COUNTS, Netlist

#: Boolean reference function per gate type (first output; the second
#: output of an FO2 gate carries the same value).
_BOOLEAN_MODELS = {
    "MAJ3": majority,
    "NMAJ3": lambda a, b, c: 1 - majority(a, b, c),
    "XOR": xor,
    "XNOR": xnor,
    "AND": and_,
    "NAND": nand,
    "OR": or_,
    "NOR": nor,
    "NOT": not_,
    "REPEATER": lambda a: a,
    "SPLITTER2": lambda a: a,
    "SPLITTER3": lambda a: a,
}

#: Excitation/detection cell counts per gate type for the energy model.
#: Derived 2-input gates embed MAJ3 (3 excitation cells: 2 data + 1
#: control).  Repeaters cost one excitation; splitters are passive.
_CELL_COUNTS: Dict[str, Tuple[int, int]] = {
    "MAJ3": (3, 2),
    "NMAJ3": (3, 2),
    "XOR": (2, 2),
    "XNOR": (2, 2),
    "AND": (3, 2),
    "NAND": (3, 2),
    "OR": (3, 2),
    "NOR": (3, 2),
    "NOT": (2, 2),   # XOR with a constant-1 control input
    "REPEATER": (1, 1),
    "SPLITTER2": (0, 0),
    "SPLITTER3": (0, 0),
}

#: Gate types that take a transducer delay stage (passive splitters
#: add none under the paper's assumptions).
_ACTIVE_TYPES = {t for t, (e, _d) in _CELL_COUNTS.items() if e > 0}


@dataclass
class CircuitReport:
    """Result of one netlist evaluation.

    Attributes
    ----------
    values:
        net -> bit after evaluation.
    outputs:
        primary output net -> bit.
    energy:
        Total excitation energy [J].
    delay:
        Critical-path delay [s] (stages x transducer delay).
    stage_count:
        Logic depth in active stages.
    """

    values: Dict[str, int]
    outputs: Dict[str, int]
    energy: float
    delay: float
    stage_count: int


class CircuitSimulator:
    """Evaluate netlists with boolean or wave-model gate semantics."""

    def __init__(self, netlist: Netlist, model: str = "boolean",
                 transducer: METransducer = PAPER_ME_CELL):
        if model not in ("boolean", "network"):
            raise ValueError("model must be 'boolean' or 'network'")
        netlist.validate()
        self.netlist = netlist
        self.model = model
        self.transducer = transducer
        self._order = netlist.topological_order()
        self._wave_gates: Dict[str, object] = {}
        if model == "network":
            self._build_wave_gates()

    def _build_wave_gates(self) -> None:
        for name, inst in self.netlist.gates.items():
            if inst.gate_type in ("MAJ3",):
                self._wave_gates[name] = TriangleMajorityGate()
            elif inst.gate_type == "NMAJ3":
                self._wave_gates[name] = TriangleMajorityGate(
                    invert_output=True)
            elif inst.gate_type == "XOR":
                self._wave_gates[name] = TriangleXorGate()
            elif inst.gate_type == "XNOR":
                self._wave_gates[name] = TriangleXorGate(xnor=True)
            elif inst.gate_type in ("AND", "NAND", "OR", "NOR"):
                self._wave_gates[name] = DerivedTriangleGate(inst.gate_type)
            # NOT / repeaters / splitters stay boolean even in network
            # mode: they are single-wave devices with no interference.

    def _evaluate_gate(self, name: str, in_bits: Tuple[int, ...]) -> int:
        inst = self.netlist.gates[name]
        if self.model == "network" and name in self._wave_gates:
            gate = self._wave_gates[name]
            if isinstance(gate, DerivedTriangleGate):
                result = gate.evaluate(*in_bits)
            else:
                result = gate.evaluate(in_bits)
            if not result.fanout_matched:
                raise RuntimeError(
                    f"gate {name!r}: outputs disagree (FO2 violated)")
            return next(iter(result.outputs.values())).logic_value
        return _BOOLEAN_MODELS[inst.gate_type](*in_bits)

    def run(self, inputs: Mapping[str, int]) -> CircuitReport:
        """Evaluate the circuit for one input assignment.

        Parameters
        ----------
        inputs:
            primary input net -> bit; all primary inputs must be given.
        """
        missing = set(self.netlist.primary_inputs) - set(inputs)
        if missing:
            raise ValueError(f"missing primary inputs: {sorted(missing)}")
        extra = set(inputs) - set(self.netlist.primary_inputs)
        if extra:
            raise ValueError(f"unknown primary inputs: {sorted(extra)}")
        values: Dict[str, int] = {}
        for net, bit in inputs.items():
            if bit not in (0, 1):
                raise ValueError(f"input {net!r} must be 0 or 1, got {bit!r}")
            values[net] = int(bit)

        energy = 0.0
        depth: Dict[str, int] = {net: 0 for net in values}
        for name in self._order:
            inst = self.netlist.gates[name]
            in_bits = tuple(values[n] for n in inst.inputs)
            out_bit = self._evaluate_gate(name, in_bits)
            stage = max(depth[n] for n in inst.inputs) \
                + (1 if inst.gate_type in _ACTIVE_TYPES else 0)
            for net in inst.outputs:
                if net is not None:
                    values[net] = out_bit
                    depth[net] = stage
            n_excite, _ = _CELL_COUNTS[inst.gate_type]
            energy += n_excite * self.transducer.excitation_energy
        outputs = {net: values[net] for net in self.netlist.primary_outputs}
        stage_count = max((depth[n] for n in outputs), default=0)
        return CircuitReport(values=values, outputs=outputs,
                             energy=energy,
                             delay=stage_count * TABLE_DELAY,
                             stage_count=stage_count)

    def truth_table(self) -> Dict[Tuple[int, ...], Dict[str, int]]:
        """Exhaustive evaluation: input assignment -> primary outputs.

        Enumerates all ``2^n`` assignments of the primary inputs (in
        declaration order) and returns ``{bits: {output_net: bit}}``.
        """
        from itertools import product

        names = self.netlist.primary_inputs
        table: Dict[Tuple[int, ...], Dict[str, int]] = {}
        for bits in product((0, 1), repeat=len(names)):
            table[bits] = self.run(dict(zip(names, bits))).outputs
        return table

    def exhaustive_check(self, reference) -> bool:
        """Compare every input assignment against a reference function.

        Parameters
        ----------
        reference:
            Callable mapping a dict of primary-input bits to a dict of
            primary-output bits.

        Returns
        -------
        bool
            True if all assignments match.
        """
        from itertools import product

        names = self.netlist.primary_inputs
        for bits in product((0, 1), repeat=len(names)):
            assignment = dict(zip(names, bits))
            got = self.run(assignment).outputs
            want = reference(assignment)
            if got != want:
                return False
        return True


class CascadeSimulator(CircuitSimulator):
    """Netlist evaluator for cascaded (multi-stage) triangle circuits.

    The construction path runs :meth:`Netlist.validate` first, so a
    malformed hand-written netlist (dangling nets, combinational loops,
    fan-out above the FO2 budget) raises a typed
    :class:`repro.errors.NetlistError` instead of silently evaluating
    garbage.  Beyond :class:`CircuitSimulator` it adds
    :meth:`truth_table` exhaustive enumeration -- the contract the
    synthesis fixtures and the compiler's equivalence check rely on.
    """
