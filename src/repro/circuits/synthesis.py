"""Majority-logic building blocks: the circuits the paper motivates.

Section II-B: "the Full Adder (a fundamental processor design building
block) carry out is computed as a 3-input majority and most of the
error detection and correction schemes rely on n-input majorities."
This module synthesises those circuits over the triangle gate library,
exploiting the FO2 property wherever a signal feeds two consumers.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .netlist import Netlist


def full_adder_netlist() -> Netlist:
    """1-bit full adder from one MAJ3 and two XOR triangle gates.

    ``carry = MAJ(a, b, cin)``; ``sum = a XOR b XOR cin`` via two
    cascaded XOR gates.  The FO2 outputs mean ``a``, ``b`` and ``cin``
    each need only one excitation per consumer -- here every signal
    pair (gate) consumes dedicated nets, and the XOR1 gate's second
    output is left unused to keep the textbook structure visible.
    """
    net = Netlist("full_adder")
    a = net.add_input("a")
    b = net.add_input("b")
    cin = net.add_input("cin")
    net.add_output("sum")
    net.add_output("carry")

    # Each primary input physically feeds two gates; SW inputs are
    # excitation cells, so we model the two consumers with explicit
    # splitter components (one excitation feeding two arms).
    net.add_gate("split_a", "SPLITTER2", [a], ["a1", "a2"])
    net.add_gate("split_b", "SPLITTER2", [b], ["b1", "b2"])
    net.add_gate("split_c", "SPLITTER2", [cin], ["c1", "c2"])

    net.add_gate("xor1", "XOR", ["a1", "b1"], ["ab", None])
    net.add_gate("xor2", "XOR", ["ab", "c1"], ["sum", None])
    net.add_gate("maj", "MAJ3", ["a2", "b2", "c2"], ["carry", None])
    net.validate()
    return net


def ripple_carry_adder_netlist(width: int) -> Netlist:
    """``width``-bit ripple-carry adder of full-adder slices.

    Demonstrates FO2 across stages: each slice's carry MAJ3 produces
    two identical outputs; one feeds the next slice, keeping the other
    free for carry-lookahead style consumers.
    """
    if width < 1:
        raise ValueError("adder width must be at least 1")
    net = Netlist(f"rca{width}")
    for i in range(width):
        net.add_input(f"a{i}")
        net.add_input(f"b{i}")
    net.add_input("cin")
    for i in range(width):
        net.add_output(f"s{i}")
    net.add_output("cout")

    carry = "cin"
    for i in range(width):
        net.add_gate(f"split_a{i}", "SPLITTER2", [f"a{i}"],
                     [f"a{i}_1", f"a{i}_2"])
        net.add_gate(f"split_b{i}", "SPLITTER2", [f"b{i}"],
                     [f"b{i}_1", f"b{i}_2"])
        net.add_gate(f"split_c{i}", "SPLITTER2", [carry],
                     [f"c{i}_1", f"c{i}_2"])
        net.add_gate(f"xor1_{i}", "XOR", [f"a{i}_1", f"b{i}_1"],
                     [f"ab{i}", None])
        net.add_gate(f"xor2_{i}", "XOR", [f"ab{i}", f"c{i}_1"],
                     [f"s{i}", None])
        carry_net = "cout" if i == width - 1 else f"carry{i}"
        # The MAJ3's second output is exported alongside: that is the
        # fan-out-of-2 dividend -- a free copy of the carry.
        spare = None if i == width - 1 else f"carry{i}_spare"
        net.add_gate(f"maj_{i}", "MAJ3", [f"a{i}_2", f"b{i}_2", f"c{i}_2"],
                     [carry_net, spare])
        carry = carry_net
    net.validate()
    return net


def majority_tree_netlist(n_leaves: int) -> Netlist:
    """Balanced MAJ3 reduction tree for n-input voting (ECC decoding).

    ``n_leaves`` must be a power of 3; each level reduces 3 votes to 1.
    """
    if n_leaves < 3:
        raise ValueError("need at least 3 leaves")
    n = n_leaves
    while n > 1:
        if n % 3 != 0:
            raise ValueError("n_leaves must be a power of 3")
        n //= 3
    net = Netlist(f"maj_tree{n_leaves}")
    level = [net.add_input(f"v{i}") for i in range(n_leaves)]
    net.add_output("vote")
    stage = 0
    while len(level) > 1:
        next_level: List[str] = []
        for j in range(0, len(level), 3):
            out = "vote" if len(level) == 3 else f"t{stage}_{j // 3}"
            net.add_gate(f"maj{stage}_{j // 3}", "MAJ3",
                         level[j:j + 3], [out, None])
            next_level.append(out)
        level = next_level
        stage += 1
    net.validate()
    return net


def parity_chain_netlist(n_bits: int) -> Netlist:
    """n-input parity from a chain of 2-input XOR triangle gates."""
    if n_bits < 2:
        raise ValueError("parity needs at least 2 bits")
    net = Netlist(f"parity{n_bits}")
    bits = [net.add_input(f"d{i}") for i in range(n_bits)]
    net.add_output("p")
    acc = bits[0]
    for i in range(1, n_bits):
        out = "p" if i == n_bits - 1 else f"x{i}"
        net.add_gate(f"xor{i}", "XOR", [acc, bits[i]], [out, None])
        acc = out
    net.validate()
    return net
