"""Fault injection and majority-based fault masking.

Section II-B motivates the majority gate with error detection and
correction: "most of the error detection and correction schemes rely on
n-input majorities".  This module closes that loop: a stuck-at fault
model over netlists, a fault simulator computing coverage of test
vectors, and a triple-modular-redundancy (TMR) builder whose MAJ3 voter
demonstrably masks any single module fault.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .netlist import Netlist
from .simulator import CircuitSimulator


@dataclass(frozen=True)
class StuckAtFault:
    """A net permanently stuck at a logic value."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.net}/SA{self.value}"


class FaultySimulator(CircuitSimulator):
    """Circuit simulator with an injectable stuck-at fault.

    The fault forces its net's value after the driver (or input)
    assigns it -- the standard single-stuck-at model.
    """

    def __init__(self, netlist: Netlist,
                 fault: Optional[StuckAtFault] = None, **kwargs):
        super().__init__(netlist, **kwargs)
        if fault is not None and fault.net not in netlist.all_nets():
            raise ValueError(f"fault net {fault.net!r} not in the circuit")
        self.fault = fault

    def run(self, inputs):
        if self.fault is None:
            return super().run(inputs)
        # Forward pass with the faulty net clamped at every read; the
        # physical-cost fields of the report are meaningless under a
        # fault, so only values/outputs are filled.
        from .simulator import CircuitReport

        missing = set(self.netlist.primary_inputs) - set(inputs)
        if missing:
            raise ValueError(f"missing primary inputs: {sorted(missing)}")
        fault = self.fault
        values: Dict[str, int] = {}
        for net, bit in inputs.items():
            if bit not in (0, 1):
                raise ValueError(f"input {net!r} must be 0 or 1")
            values[net] = fault.value if net == fault.net else int(bit)
        for name in self._order:
            inst = self.netlist.gates[name]
            in_bits = tuple(values[n] for n in inst.inputs)
            out_bit = self._evaluate_gate(name, in_bits)
            for net in inst.outputs:
                if net is not None:
                    values[net] = fault.value if net == fault.net \
                        else out_bit
        outputs = {net: values[net]
                   for net in self.netlist.primary_outputs}
        return CircuitReport(values=values, outputs=outputs,
                             energy=0.0, delay=0.0, stage_count=0)


def enumerate_faults(netlist: Netlist,
                     include_inputs: bool = True) -> List[StuckAtFault]:
    """All single stuck-at faults of a netlist (both polarities)."""
    nets = sorted(netlist.all_nets())
    if not include_inputs:
        nets = [n for n in nets if n not in netlist.primary_inputs]
    return [StuckAtFault(net, value)
            for net in nets for value in (0, 1)]


@dataclass
class FaultCoverageReport:
    """Result of a fault-simulation campaign."""

    n_faults: int
    detected: List[StuckAtFault]
    undetected: List[StuckAtFault]

    @property
    def coverage(self) -> float:
        """Fraction of faults detected by the vector set."""
        return len(self.detected) / self.n_faults if self.n_faults else 1.0


def fault_coverage(netlist: Netlist,
                   vectors: Optional[Sequence[Dict[str, int]]] = None
                   ) -> FaultCoverageReport:
    """Simulate every single stuck-at fault against a test-vector set.

    Parameters
    ----------
    netlist:
        Circuit under test.
    vectors:
        Input assignments; defaults to the exhaustive set (fine for the
        gate-count scales of this library).
    """
    if vectors is None:
        names = netlist.primary_inputs
        vectors = [dict(zip(names, bits))
                   for bits in product((0, 1), repeat=len(names))]
    golden = CircuitSimulator(netlist)
    golden_outputs = [golden.run(v).outputs for v in vectors]

    detected: List[StuckAtFault] = []
    undetected: List[StuckAtFault] = []
    for fault in enumerate_faults(netlist):
        simulator = FaultySimulator(netlist, fault)
        for vector, expected in zip(vectors, golden_outputs):
            if simulator.run(vector).outputs != expected:
                detected.append(fault)
                break
        else:
            undetected.append(fault)
    return FaultCoverageReport(n_faults=len(detected) + len(undetected),
                               detected=detected, undetected=undetected)


def tmr_netlist(module_builder: Callable[[Netlist, str, List[str]], str],
                n_inputs: int, name: str = "tmr") -> Netlist:
    """Triple-modular-redundancy wrapper with a MAJ3 triangle voter.

    Parameters
    ----------
    module_builder:
        Callback ``(netlist, instance_prefix, input_nets) -> output_net``
        that instantiates one copy of the protected module and returns
        its output net.
    n_inputs:
        Number of primary inputs of the module.

    Returns
    -------
    Netlist
        Inputs ``d0..``; output ``vote``; three module copies, each fed
        through a splitter tree so every copy gets its own excitation.
    """
    net = Netlist(name)
    data = [net.add_input(f"d{i}") for i in range(n_inputs)]
    net.add_output("vote")
    # Fan each input to the three module copies (splitter trees).
    fanned: List[List[str]] = []
    for i, source in enumerate(data):
        net.add_gate(f"fan_a{i}", "SPLITTER2", [source],
                     [f"{source}_c0", f"{source}_x"])
        net.add_gate(f"fan_b{i}", "SPLITTER2", [f"{source}_x"],
                     [f"{source}_c1", f"{source}_c2"])
        fanned.append([f"{source}_c0", f"{source}_c1", f"{source}_c2"])
    module_outputs = []
    for copy in range(3):
        inputs = [fanned[i][copy] for i in range(n_inputs)]
        module_outputs.append(module_builder(net, f"m{copy}", inputs))
    net.add_gate("voter", "MAJ3", module_outputs, ["vote", None])
    net.validate()
    return net


def xor_module(netlist: Netlist, prefix: str,
               inputs: List[str]) -> str:
    """Example protected module: a 2-input XOR gate."""
    if len(inputs) != 2:
        raise ValueError("xor module takes 2 inputs")
    out = f"{prefix}_y"
    netlist.add_gate(f"{prefix}_xor", "XOR", inputs, [out, None])
    return out


def masks_single_module_faults(netlist: Netlist,
                               module_output_nets: Sequence[str]) -> bool:
    """Check the TMR property: any single fault on one module's output
    is masked at the voter for every input vector."""
    names = netlist.primary_inputs
    vectors = [dict(zip(names, bits))
               for bits in product((0, 1), repeat=len(names))]
    golden = CircuitSimulator(netlist)
    expected = [golden.run(v).outputs for v in vectors]
    for net_name in module_output_nets:
        for value in (0, 1):
            simulator = FaultySimulator(netlist,
                                        StuckAtFault(net_name, value))
            for vector, want in zip(vectors, expected):
                if simulator.run(vector).outputs != want:
                    return False
    return True
