"""Cascade-depth analysis: how far can a spin wave travel through gates?

The paper's assumption (v) -- "the output is passed directly to be used
by another SW gate" -- makes cascading free in Table III, but each real
gate stage attenuates the wave (junction scattering, propagation loss,
fan-out splitting).  This module computes the amplitude budget of a
gate chain and plans minimal repeater insertion, quantifying when the
all-magnonic pipeline of the paper's vision needs regeneration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..evaluation.transducers import PAPER_ME_CELL, METransducer
from ..physics.attenuation import AttenuationModel
from .components import Repeater


@dataclass(frozen=True)
class StageModel:
    """Amplitude transfer of one gate stage.

    Attributes
    ----------
    transmission:
        Worst-case output/input amplitude ratio of the stage.  For the
        calibrated triangle MAJ3 this is the minority-case normalised
        output (0.083 in Table I) when cascading must work for *every*
        input pattern, or the unanimous value for best-case analysis.
    path_length:
        Waveguide length traversed in the stage [m].
    """

    transmission: float
    path_length: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.transmission <= 1.0:
            raise ValueError("stage transmission must be in (0, 1]")
        if self.path_length < 0:
            raise ValueError("path length must be non-negative")


@dataclass(frozen=True)
class CascadeReport:
    """Outcome of a cascade-budget analysis."""

    n_stages: int
    final_amplitude: float
    min_detectable: float
    max_depth_without_repeater: int
    repeater_positions: Tuple[int, ...]
    total_repeater_energy: float
    added_delay: float


class CascadeAnalyzer:
    """Amplitude budget and repeater planning for gate chains.

    Parameters
    ----------
    attenuation:
        Propagation-loss model applied along stage path lengths.
    min_detectable:
        Smallest amplitude the detectors / next-stage transducers can
        still use (relative to the nominal excitation level).
    repeater:
        Regenerator inserted when the budget runs out.
    """

    def __init__(self, attenuation: AttenuationModel,
                 min_detectable: float = 0.05,
                 repeater: Optional[Repeater] = None):
        if not 0.0 < min_detectable < 1.0:
            raise ValueError("min_detectable must be in (0, 1)")
        self.attenuation = attenuation
        self.min_detectable = min_detectable
        self.repeater = repeater if repeater is not None else Repeater(
            minimum_input=min_detectable)

    def stage_factor(self, stage: StageModel) -> float:
        """Amplitude ratio of one stage (gate transfer x path loss)."""
        return stage.transmission \
            * self.attenuation.path_factor(stage.path_length)

    def amplitude_after(self, stages: List[StageModel],
                        input_amplitude: float = 1.0) -> float:
        """Amplitude surviving an unrepeatered chain."""
        amplitude = input_amplitude
        for stage in stages:
            amplitude *= self.stage_factor(stage)
        return amplitude

    def max_depth(self, stage: StageModel,
                  input_amplitude: float = 1.0) -> int:
        """Stages of a homogeneous chain before falling below threshold."""
        factor = self.stage_factor(stage)
        if factor >= 1.0:
            return 10 ** 9  # lossless chains never die
        if input_amplitude <= self.min_detectable:
            return 0
        return int(math.floor(
            math.log(self.min_detectable / input_amplitude)
            / math.log(factor)))

    def plan(self, stages: List[StageModel],
             input_amplitude: float = 1.0) -> CascadeReport:
        """Greedy repeater insertion keeping every stage detectable.

        A repeater is placed *before* any stage whose output would drop
        below the threshold; greedy placement is optimal here because
        regeneration always restores the same nominal amplitude.
        """
        amplitude = input_amplitude
        positions: List[int] = []
        for index, stage in enumerate(stages):
            next_amplitude = amplitude * self.stage_factor(stage)
            if next_amplitude < self.min_detectable:
                if self.repeater.nominal_amplitude \
                        * self.stage_factor(stage) < self.min_detectable:
                    raise ValueError(
                        f"stage {index} kills even a regenerated wave "
                        f"(factor {self.stage_factor(stage):.3g}); the "
                        "chain is infeasible at this threshold")
                positions.append(index)
                amplitude = self.repeater.nominal_amplitude \
                    * self.stage_factor(stage)
            else:
                amplitude = next_amplitude
        homogeneous = self.max_depth(stages[0], input_amplitude) \
            if stages else 0
        return CascadeReport(
            n_stages=len(stages),
            final_amplitude=amplitude,
            min_detectable=self.min_detectable,
            max_depth_without_repeater=homogeneous,
            repeater_positions=tuple(positions),
            total_repeater_energy=len(positions) * self.repeater.energy,
            added_delay=len(positions) * self.repeater.delay)


def triangle_stage_model(worst_case: bool = True,
                         path_length: float = 1.045e-6) -> StageModel:
    """Stage model of the calibrated triangle MAJ3.

    ``worst_case=True`` uses Table I's 0.083 minority amplitude (the
    chain must work for every input pattern); ``False`` uses the
    unanimous 1.0.  The default path length is the longest input-to-
    output path of the 55 nm design (19 lambda).
    """
    from ..core.calibration import PAPER_TABLE_I

    transmission = min(v[0] for v in PAPER_TABLE_I.values()) \
        if worst_case else 1.0
    return StageModel(transmission=transmission, path_length=path_length)
