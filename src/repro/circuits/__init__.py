"""Circuit layer: netlists, components and simulation over the gates."""

from .netlist import GATE_PORT_COUNTS, TRIANGLE_FAN_OUT, GateInstance, Netlist
from .components import DirectionalCoupler, Repeater, fanout_chain
from .simulator import CascadeSimulator, CircuitReport, CircuitSimulator
from .cascade import CascadeAnalyzer, CascadeReport, StageModel, triangle_stage_model
from .hamming import (
    hamming74_corrector_netlist,
    hamming74_decode,
    hamming74_encode,
    hamming74_encoder_netlist,
)
from .synthesis import (
    full_adder_netlist,
    majority_tree_netlist,
    parity_chain_netlist,
    ripple_carry_adder_netlist,
)

__all__ = [
    "GATE_PORT_COUNTS",
    "TRIANGLE_FAN_OUT",
    "GateInstance",
    "Netlist",
    "DirectionalCoupler",
    "Repeater",
    "fanout_chain",
    "CascadeSimulator",
    "CircuitReport",
    "CircuitSimulator",
    "CascadeAnalyzer",
    "CascadeReport",
    "StageModel",
    "triangle_stage_model",
    "hamming74_corrector_netlist",
    "hamming74_decode",
    "hamming74_encode",
    "hamming74_encoder_netlist",
    "full_adder_netlist",
    "majority_tree_netlist",
    "parity_chain_netlist",
    "ripple_carry_adder_netlist",
]
