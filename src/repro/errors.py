"""Typed exception hierarchy for the reproduction.

Every failure mode the engine is expected to *handle* -- as opposed to
programmer errors, which stay plain ``ValueError``/``TypeError`` -- is
a subclass of :class:`ReproError`, so callers can catch the whole
family or a precise leaf:

* :class:`JobTimeout` -- a job attempt exceeded its wall-time bound
  (the executor's per-job timeout, or a propagated request deadline);
* :class:`JobFailed` -- a batch contained jobs that exhausted their
  retries (:meth:`repro.runtime.RunResult.raise_on_failure`);
* :class:`CacheCorrupt` -- an on-disk result cache entry failed to
  decode; the entry is quarantined, the lookup reported as a miss;
* :class:`NumericalDivergenceError` -- a solver health watchdog caught
  non-finite values or runaway drift, with step diagnostics attached;
* :class:`CircuitOpen` -- a serving-tier circuit breaker is rejecting
  work for a failing job family;
* :class:`FaultInjected` -- an error deliberately raised by the
  fault-injection framework (:mod:`repro.resilience.faults`);
* :class:`CheckpointError` -- a solver checkpoint could not be read.

The hierarchy is dependency-free (no numpy, no package imports) so any
tier -- runtime, solvers, serving, CLI -- can import it without cycles.
See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "CacheCorrupt",
    "CheckpointError",
    "CircuitOpen",
    "FaultInjected",
    "JobFailed",
    "JobTimeout",
    "NumericalDivergenceError",
    "ReproError",
]


class ReproError(Exception):
    """Base class of every handled failure mode in the package."""


class JobTimeout(ReproError):
    """A job attempt exceeded its wall-time bound.

    Raised by the executor's per-job timeout and by the serving tier
    when a propagated request deadline expires before the result.
    """


class JobFailed(ReproError):
    """Raised by :meth:`RunResult.raise_on_failure` when jobs failed."""


class CacheCorrupt(ReproError):
    """An on-disk cache entry failed to decode.

    Carries the content key and the decode failure; the cache treats
    the lookup as a miss and moves the damaged files to the quarantine
    directory instead of serving (or silently deleting) them.
    """

    def __init__(self, key: str, reason: str):
        super().__init__(f"corrupt cache entry {key}: {reason}")
        self.key = key
        self.reason = reason


class NumericalDivergenceError(ReproError):
    """A solver health watchdog detected numerical divergence.

    Attributes
    ----------
    solver:
        Which tier diverged (``"fdtd"``, ``"llg"``, ...).
    step:
        Step count at the failing health check.
    t:
        Physical simulation time [s] at the check.
    diagnostics:
        Field diagnostics gathered at the check -- non-finite cell
        count, peak amplitude, |m| drift and the like.
    """

    def __init__(self, solver: str, step: int, t: float, reason: str,
                 diagnostics: Optional[Dict[str, Any]] = None):
        detail = ", ".join(f"{k}={v}" for k, v in (diagnostics or {}).items())
        message = (f"{solver} diverged at step {step} (t = {t:.4g} s): "
                   f"{reason}" + (f" [{detail}]" if detail else ""))
        super().__init__(message)
        self.solver = solver
        self.step = step
        self.t = t
        self.reason = reason
        self.diagnostics = dict(diagnostics or {})


class CircuitOpen(ReproError):
    """A circuit breaker is open: the job family keeps failing and new
    work is rejected fast instead of burning the executor."""

    def __init__(self, name: str, retry_after: float = 1.0):
        super().__init__(f"circuit {name!r} is open; retry in "
                         f"{retry_after:.1f} s")
        self.name = name
        self.retry_after = max(0.0, retry_after)


class FaultInjected(ReproError):
    """An error deliberately injected by an armed fault plan."""


class CheckpointError(ReproError):
    """A solver checkpoint file is missing required state or corrupt."""
