"""Typed exception hierarchy for the reproduction.

Every failure mode the engine is expected to *handle* -- as opposed to
programmer errors, which stay plain ``ValueError``/``TypeError`` -- is
a subclass of :class:`ReproError`, so callers can catch the whole
family or a precise leaf:

* :class:`JobTimeout` -- a job attempt exceeded its wall-time bound
  (the executor's per-job timeout, or a propagated request deadline);
* :class:`JobFailed` -- a batch contained jobs that exhausted their
  retries (:meth:`repro.runtime.RunResult.raise_on_failure`);
* :class:`CacheCorrupt` -- an on-disk result cache entry failed to
  decode; the entry is quarantined, the lookup reported as a miss;
* :class:`NumericalDivergenceError` -- a solver health watchdog caught
  non-finite values or runaway drift, with step diagnostics attached;
* :class:`CircuitOpen` -- a serving-tier circuit breaker is rejecting
  work for a failing job family;
* :class:`ClusterError` -- the distributed execution backend
  (:mod:`repro.cluster`) lost a peer or received a malformed frame,
  with leaves for misconfiguration (:class:`ClusterConfigError` -- bad
  ``tcp://`` URL, unreachable coordinator, no connected workers) and
  failed HMAC authentication (:class:`ClusterAuthError`);
* :class:`FaultInjected` -- an error deliberately raised by the
  fault-injection framework (:mod:`repro.resilience.faults`);
* :class:`SurrogateDomainError` -- a surrogate-tier query cannot be
  answered within the fitted characterization domain (no fitted model,
  out-of-grid point, or a leave-one-out residual above the accuracy
  threshold); the degradation ladder falls back to the network tier;
* :class:`CheckpointError` -- a solver checkpoint could not be read;
* :class:`NetlistError` -- a gate netlist is structurally malformed
  (dangling nets, combinational loops, drive conflicts, fan-out above
  the triangle FO2 budget), with precise leaves per defect;
* :class:`DRCViolation` -- a compiled placement breaks a physical
  design rule (d1--d4 lambda-multiple spacings, waveguide crossings,
  fan-out budget), naming the offending rule and object pair.

The hierarchy is dependency-free (no numpy, no package imports) so any
tier -- runtime, solvers, serving, CLI -- can import it without cycles.
See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = [
    "CacheCorrupt",
    "CheckpointError",
    "CircuitOpen",
    "ClusterAuthError",
    "ClusterConfigError",
    "ClusterError",
    "CombinationalLoopError",
    "DanglingNetError",
    "DriveConflictError",
    "DRCViolation",
    "FanOutExceededError",
    "FaultInjected",
    "JobFailed",
    "JobTimeout",
    "NetlistError",
    "NumericalDivergenceError",
    "ReproError",
    "SurrogateDomainError",
]


class ReproError(Exception):
    """Base class of every handled failure mode in the package."""


class JobTimeout(ReproError):
    """A job attempt exceeded its wall-time bound.

    Raised by the executor's per-job timeout and by the serving tier
    when a propagated request deadline expires before the result.
    """


class JobFailed(ReproError):
    """Raised by :meth:`RunResult.raise_on_failure` when jobs failed."""


class CacheCorrupt(ReproError):
    """An on-disk cache entry failed to decode.

    Carries the content key and the decode failure; the cache treats
    the lookup as a miss and moves the damaged files to the quarantine
    directory instead of serving (or silently deleting) them.
    """

    def __init__(self, key: str, reason: str):
        super().__init__(f"corrupt cache entry {key}: {reason}")
        self.key = key
        self.reason = reason


class NumericalDivergenceError(ReproError):
    """A solver health watchdog detected numerical divergence.

    Attributes
    ----------
    solver:
        Which tier diverged (``"fdtd"``, ``"llg"``, ...).
    step:
        Step count at the failing health check.
    t:
        Physical simulation time [s] at the check.
    diagnostics:
        Field diagnostics gathered at the check -- non-finite cell
        count, peak amplitude, |m| drift and the like.
    """

    def __init__(self, solver: str, step: int, t: float, reason: str,
                 diagnostics: Optional[Dict[str, Any]] = None):
        detail = ", ".join(f"{k}={v}" for k, v in (diagnostics or {}).items())
        message = (f"{solver} diverged at step {step} (t = {t:.4g} s): "
                   f"{reason}" + (f" [{detail}]" if detail else ""))
        super().__init__(message)
        self.solver = solver
        self.step = step
        self.t = t
        self.reason = reason
        self.diagnostics = dict(diagnostics or {})


class CircuitOpen(ReproError):
    """A circuit breaker is open: the job family keeps failing and new
    work is rejected fast instead of burning the executor."""

    def __init__(self, name: str, retry_after: float = 1.0):
        super().__init__(f"circuit {name!r} is open; retry in "
                         f"{retry_after:.1f} s")
        self.name = name
        self.retry_after = max(0.0, retry_after)


class ClusterError(ReproError):
    """A distributed-execution failure the cluster layer handles.

    Base of every :mod:`repro.cluster` failure mode: lost coordinator
    connections, malformed or oversized frames, a chunked result
    stream that fails its SHA-256 digest check, dead workers.  The
    coordinator reschedules work on surviving workers where it can,
    and clients/workers redial a restarting coordinator within their
    reconnect windows; what cannot be recovered surfaces as this
    family so callers distinguish cluster transport trouble from job
    failures.
    """


class ClusterConfigError(ClusterError):
    """The cluster backend is misconfigured or unreachable.

    Raised instead of a raw socket traceback when a ``tcp://`` backend
    URL is malformed, the coordinator does not answer, the coordinator
    is up but has no connected workers to run jobs on, or the TLS
    flags are incomplete (``--tls-cert`` without ``--tls-key``,
    missing PEM files, a supervised coordinator without a fixed port).
    """


class ClusterAuthError(ClusterError):
    """A cluster peer failed the HMAC shared-secret handshake.

    Both sides authenticate: a coordinator rejects clients and workers
    that cannot prove knowledge of the shared secret, and clients
    refuse coordinators that cannot (so a redirected connection never
    receives job parameters).  See ``docs/CLUSTER.md``.
    """


class FaultInjected(ReproError):
    """An error deliberately injected by an armed fault plan."""


class SurrogateDomainError(ReproError):
    """A surrogate-tier query fell outside the fitted domain.

    Raised by the accuracy guardrails of :mod:`repro.surrogate`: no
    model has been fitted for the gate, the query point leaves the
    characterized grid bounds, or the fit's leave-one-out residual
    around the query exceeds the accuracy threshold.  The degradation
    ladder (:func:`repro.micromag.experiments.run_gate_case`) catches
    this and re-answers from the network tier, recording
    ``degraded_from="surrogate"``.

    Attributes
    ----------
    gate:
        The gate whose surrogate was queried.
    reason:
        Machine-readable cause: ``"unfitted"`` (no model),
        ``"bounds"`` (outside the characterized grid), ``"residual"``
        (local fit error above the threshold) or ``"sparse"``
        (scattered-data fit has no nearby sample).
    point:
        The offending query point (axis name -> value), when known.
    """

    def __init__(self, gate: str, reason: str, detail: str,
                 point: Optional[Dict[str, float]] = None):
        super().__init__(f"surrogate domain check failed for {gate!r} "
                         f"({reason}): {detail}")
        self.gate = gate
        self.reason = reason
        self.detail = detail
        self.point = dict(point or {})


class CheckpointError(ReproError):
    """A solver checkpoint file is missing required state or corrupt."""


class NetlistError(ReproError, ValueError):
    """A gate netlist is structurally malformed.

    Subclasses :class:`ValueError` as well so code (and tests) written
    against the original ``Netlist.validate()`` contract keeps working;
    new code should catch the precise leaf.

    Attributes
    ----------
    netlist:
        Name of the offending netlist.
    """

    def __init__(self, message: str, netlist: str = ""):
        super().__init__(message)
        self.netlist = netlist


class DanglingNetError(NetlistError):
    """A net is consumed (or exported) but nothing drives it.

    Attributes
    ----------
    net:
        The undriven net.
    consumer:
        The gate (or ``"<primary output>"``) that needed it.
    """

    def __init__(self, net: str, consumer: str, netlist: str = ""):
        super().__init__(
            f"net {net!r} consumed by {consumer!r} has no driver",
            netlist=netlist)
        self.net = net
        self.consumer = consumer


class CombinationalLoopError(NetlistError):
    """The netlist contains a combinational cycle.

    Attributes
    ----------
    gates:
        The gate names participating in (or downstream of) the cycle.
    """

    def __init__(self, gates, netlist: str = ""):
        super().__init__(
            f"combinational loop among gates: {sorted(gates)}",
            netlist=netlist)
        self.gates = tuple(sorted(gates))


class DriveConflictError(NetlistError):
    """A net is driven by more than one gate output.

    Attributes
    ----------
    net:
        The multiply-driven net.
    drivers:
        The competing driver gate names.
    """

    def __init__(self, net: str, drivers, netlist: str = ""):
        super().__init__(
            f"net {net!r} driven by multiple gates: {sorted(drivers)}",
            netlist=netlist)
        self.net = net
        self.drivers = tuple(sorted(drivers))


class FanOutExceededError(NetlistError):
    """A net feeds more consumers than one spin-wave output can drive.

    Each physical SW output drives exactly one next-stage input
    (assumption (v) of the paper); the gate's *second* FO2 output or a
    SPLITTER component provides additional copies.

    Attributes
    ----------
    net:
        The overloaded net.
    consumers:
        How many inputs (plus primary-output taps) the net feeds.
    budget:
        The per-net consumer budget (1).
    """

    def __init__(self, net: str, consumers: int, budget: int = 1,
                 netlist: str = ""):
        super().__init__(
            f"net {net!r} feeds {consumers} consumers; each SW output "
            "drives exactly one input -- use the gate's second output "
            "or a SPLITTER component", netlist=netlist)
        self.net = net
        self.consumers = consumers
        self.budget = budget


class DRCViolation(ReproError):
    """A compiled placement violates a physical design rule.

    Raised by :func:`repro.compiler.run_drc` (and collected into a
    :class:`repro.compiler.DRCReport`).  The message always names the
    broken rule and the offending object pair, so a failing compile
    points at *which two structures* are too close / miswired.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"spacing"``, ``"phase.d2"``,
        ``"fanout"``, ``"crossing"``, ``"width"``.
    offenders:
        The named objects breaking the rule (gate instances, nets or
        wires) -- usually a pair.
    actual / required:
        The measured and required values, when the rule is metric
        (spacings in lambda-multiples); ``None`` otherwise.
    """

    def __init__(self, rule: str, offenders, detail: str,
                 actual: Optional[float] = None,
                 required: Optional[float] = None):
        names = " <-> ".join(str(o) for o in offenders)
        message = f"DRC rule {rule!r} violated by [{names}]: {detail}"
        super().__init__(message)
        self.rule = rule
        self.offenders = tuple(str(o) for o in offenders)
        self.detail = detail
        self.actual = actual
        self.required = required
