"""Numerical health watchdogs and remediation policies.

A watchdog rides along a solver loop: the solver calls
:meth:`Watchdog.observe` after every step, the watchdog runs its
actual check only every ``every``-th call (so the hot loop pays a
counter increment and a modulo), and a failed check raises
:class:`repro.errors.NumericalDivergenceError` carrying the step,
simulation time and field diagnostics of the blown-up state.

Two concrete checks cover the two solver tiers:

* :class:`FieldWatchdog` (FDTD) -- finiteness of the scalar field plus
  an amplitude-runaway bound: a driven *damped* wave system has a
  bounded steady-state amplitude, so the peak exceeding
  ``growth_factor`` times the first observed peak (or an absolute
  ``max_amplitude``) means the leapfrog scheme left its stability
  region.
* :class:`MagnetisationWatchdog` (LLG) -- finiteness of ``m`` plus the
  drift of ``|m|`` from 1, checked *before* the integrator's
  renormalisation would mask it.

Remediation: :func:`run_with_dt_remediation` wraps a ``run(dt)``
callable and, on divergence, retries with a halved time step up to
``RemediationPolicy.dt_halvings`` times -- the standard fix when an
explicit integrator is marginally outside its stability bound.  Tier
degradation (LLG -> FDTD -> network) lives with the experiment ladder
in :mod:`repro.micromag.experiments`, which records ``degraded_from``
in its results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, TypeVar

import numpy as np

from .. import obs
from ..errors import NumericalDivergenceError

__all__ = [
    "FieldWatchdog",
    "MagnetisationWatchdog",
    "RemediationPolicy",
    "Watchdog",
    "run_with_dt_remediation",
]

T = TypeVar("T")


class Watchdog:
    """Self-throttling health check attached to a solver loop.

    Subclasses implement :meth:`check`; the solver calls
    :meth:`observe` every step and pays only an integer modulo on the
    ``every - 1`` steps in between checks.
    """

    #: Solver tag carried into :class:`NumericalDivergenceError`.
    solver = "solver"

    def __init__(self, every: int = 100):
        if every < 1:
            raise ValueError("watchdog period must be >= 1 step")
        self.every = int(every)
        self.calls = 0
        self.checks = 0

    def observe(self, t: float, step: Optional[int] = None, **fields: Any) -> None:
        """Record one solver step; runs the check every ``every`` calls."""
        self.calls += 1
        if self.calls % self.every:
            return
        self.checks += 1
        if obs.enabled():
            obs.counter("resilience.watchdog_checks").inc()
        self.check(self.calls if step is None else int(step), float(t), fields)

    def check(self, step: int, t: float, fields: Dict[str, Any]) -> None:
        raise NotImplementedError

    def fail(self, step: int, t: float, reason: str, **diagnostics: Any) -> None:
        """Raise the typed divergence error (and count it).

        The flight recorder captures the trip and dumps its recent
        history, so the post-mortem for a diverged run starts with the
        last-N events (faults armed, spans open, prior checks) instead
        of a bare traceback.
        """
        obs.flight.record("watchdog", solver=self.solver, step=step,
                          t=t, reason=reason)
        obs.flight.auto_dump(reason=f"divergence:{self.solver}")
        if obs.enabled():
            obs.counter("resilience.divergence").inc()
            obs.counter(f"resilience.divergence.{self.solver}").inc()
        raise NumericalDivergenceError(self.solver, step, t, reason,
                                       diagnostics)


class FieldWatchdog(Watchdog):
    """Finiteness + amplitude-runaway guard for the scalar FDTD field.

    Parameters
    ----------
    every:
        Check period in solver steps.
    growth_factor:
        Relative runaway bound: peak amplitude above ``growth_factor``
        times the first checked peak fails.  The driven-damped wave
        equation reaches a bounded steady state, so growth by orders
        of magnitude can only be numerical instability.
    max_amplitude:
        Optional absolute peak bound [field units]; checked in
        addition when given.
    """

    solver = "fdtd"

    def __init__(self, every: int = 500, growth_factor: float = 1e3,
                 max_amplitude: Optional[float] = None):
        super().__init__(every)
        if growth_factor <= 1.0:
            raise ValueError("growth_factor must exceed 1")
        self.growth_factor = float(growth_factor)
        self.max_amplitude = max_amplitude
        self.baseline_peak: Optional[float] = None

    def check(self, step: int, t: float, fields: Dict[str, Any]) -> None:
        u = np.asarray(fields["u"])
        finite = np.isfinite(u)
        if not finite.all():
            self.fail(step, t, "non-finite field values",
                      nonfinite_cells=int(u.size - finite.sum()),
                      checked_cells=int(u.size))
        peak = float(np.max(np.abs(u)))
        if self.max_amplitude is not None and peak > self.max_amplitude:
            self.fail(step, t, "field amplitude above absolute bound",
                      peak=peak, bound=float(self.max_amplitude))
        if self.baseline_peak is None:
            # First check fixes the reference scale (post source ramp-up
            # for any sensible period); a silent field stays unset so a
            # late-starting drive does not pin the baseline at ~0.
            if peak > 0.0:
                self.baseline_peak = peak
            return
        if peak > self.growth_factor * self.baseline_peak:
            self.fail(step, t, "runaway amplitude growth",
                      peak=peak, baseline=self.baseline_peak,
                      growth_factor=self.growth_factor)


class MagnetisationWatchdog(Watchdog):
    """Finiteness + unit-norm drift guard for LLG magnetisation fields.

    ``max_drift`` bounds ``max | |m| - 1 |`` over the checked cells.
    Integrators call :meth:`observe` with the *raw* post-step state,
    before renormalisation would hide the drift.
    """

    solver = "llg"

    def __init__(self, every: int = 50, max_drift: float = 1e-2):
        super().__init__(every)
        if max_drift <= 0:
            raise ValueError("max_drift must be positive")
        self.max_drift = float(max_drift)

    def check(self, step: int, t: float, fields: Dict[str, Any]) -> None:
        m = np.asarray(fields["m"])
        mask = fields.get("mask")
        finite = np.isfinite(m)
        if not finite.all():
            self.fail(step, t, "non-finite magnetisation",
                      nonfinite_values=int(m.size - finite.sum()),
                      checked_values=int(m.size))
        norm = np.sqrt(np.sum(m * m, axis=0))
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if not mask.any():
                return
            norm = norm[mask]
        drift = float(np.max(np.abs(norm - 1.0)))
        if drift > self.max_drift:
            self.fail(step, t, "|m| drifted off the unit sphere",
                      max_drift=drift, bound=self.max_drift)


@dataclass(frozen=True)
class RemediationPolicy:
    """How to respond when a guarded run diverges.

    ``dt_halvings`` bounds the retry budget of
    :func:`run_with_dt_remediation`; ``degrade`` lets the experiment
    ladder fall back to the next-coarser model tier when the budget is
    exhausted (see ``run_gate_case``).
    """

    dt_halvings: int = 2
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.dt_halvings < 0:
            raise ValueError("dt_halvings must be >= 0")


def run_with_dt_remediation(
        run: Callable[[float], T], dt: float,
        policy: Optional[RemediationPolicy] = None,
) -> Tuple[T, float, int]:
    """Run ``run(dt)``, halving ``dt`` on numerical divergence.

    Returns ``(result, dt_used, halvings)``.  Re-raises the last
    :class:`NumericalDivergenceError` once ``policy.dt_halvings``
    retries are spent.
    """
    policy = policy or RemediationPolicy()
    attempt_dt = float(dt)
    for halvings in range(policy.dt_halvings + 1):
        try:
            return run(attempt_dt), attempt_dt, halvings
        except NumericalDivergenceError:
            if halvings == policy.dt_halvings:
                raise
            attempt_dt *= 0.5
            if obs.enabled():
                obs.counter("resilience.dt_halved").inc()
    raise AssertionError("unreachable")  # pragma: no cover
