"""repro.resilience: fault injection, guardrails, checkpoint/resume.

Four small, independently usable pieces (see ``docs/RESILIENCE.md``):

* :mod:`~repro.resilience.faults` -- seeded deterministic fault
  injection (worker crash, slow I/O, cache corruption, NaN at step N)
  behind a zero-overhead-when-disabled flag, armed in-process or via
  the ``REPRO_FAULTS`` environment variable;
* :mod:`~repro.resilience.guardrails` -- solver health watchdogs
  raising typed :class:`~repro.errors.NumericalDivergenceError` with
  step diagnostics, plus the dt-halving remediation policy;
* :mod:`~repro.resilience.checkpoint` -- atomic ``.npz`` solver
  checkpoints and the periodic :class:`CheckpointManager`;
* :mod:`~repro.resilience.journal` -- the write-ahead job journal
  behind ``python -m repro sweep --resume``;
* :mod:`~repro.resilience.circuit` -- the serving tier's per-job
  circuit breaker;
* :mod:`~repro.resilience.supervisor` -- the fork/restart-with-backoff
  parent loop shared by ``serve --prefork`` and
  ``cluster supervise``.

All ``resilience.*`` metrics flow through :mod:`repro.obs` and show up
in ``/metrics`` and ``metrics_snapshot()`` like any other counter.
"""

from ..errors import (
    CacheCorrupt,
    CheckpointError,
    CircuitOpen,
    FaultInjected,
    NumericalDivergenceError,
    ReproError,
)
from .checkpoint import CheckpointManager, load_checkpoint, save_checkpoint
from .circuit import CircuitBreaker
from .faults import (
    FaultPlan,
    FaultSpec,
    active,
    install,
    install_from_env,
    trip,
    uninstall,
)
from .guardrails import (
    FieldWatchdog,
    MagnetisationWatchdog,
    RemediationPolicy,
    Watchdog,
    run_with_dt_remediation,
)
from .journal import JobJournal, JournalState, read_journal
from .supervisor import ProcessSupervisor

__all__ = [
    "CacheCorrupt",
    "CheckpointError",
    "CheckpointManager",
    "CircuitBreaker",
    "CircuitOpen",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
    "FieldWatchdog",
    "JobJournal",
    "JournalState",
    "MagnetisationWatchdog",
    "NumericalDivergenceError",
    "ProcessSupervisor",
    "RemediationPolicy",
    "ReproError",
    "Watchdog",
    "active",
    "install",
    "install_from_env",
    "load_checkpoint",
    "read_journal",
    "run_with_dt_remediation",
    "save_checkpoint",
    "trip",
    "uninstall",
]
