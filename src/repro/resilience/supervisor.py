"""Generic fork-based child supervision: restart-with-backoff.

Two subsystems need the same parent loop: ``serve --prefork`` (N HTTP
children on one ``SO_REUSEPORT`` port) and ``cluster supervise`` (one
coordinator child that must outlive ``kill -9``).  Both want identical
semantics -- fork children, forward SIGTERM/SIGINT to the whole brood,
reap, restart an *unrequested* death after an exponentially backed-off
pause, give up after ``max_restarts`` crash-loops -- so the loop lives
here once and the callers supply only the child body.

A child that stayed alive for ``healthy_after`` seconds earns its
lineage a fresh restart budget: the budget bounds *crash loops* (a
child that dies instantly, forever), not the total number of faults a
long-lived service may survive.  Without this, a coordinator killed
once a day would exhaust any finite budget eventually.

``os.fork`` is POSIX; on platforms without it the supervisor raises a
typed :class:`~repro.errors.ClusterConfigError` at construction.
"""

from __future__ import annotations

import errno
import os
import signal
import time
from typing import Callable, Dict, Optional, Tuple

from .. import obs
from ..errors import ClusterConfigError

__all__ = ["ProcessSupervisor"]

_LOG = obs.get_logger("resilience.supervisor")


class ProcessSupervisor:
    """Fork ``processes`` children running ``child_main`` and keep
    them alive.

    Parameters
    ----------
    child_main:
        ``child_main(slot) -> int`` runs *in the forked child* with
        default signal dispositions and its return value becomes the
        child's exit code (it may also ``os._exit`` itself).  ``slot``
        is the stable child index ``0..processes-1`` -- a restarted
        child keeps its slot.
    processes:
        Number of concurrent children.
    max_restarts:
        Restart budget per slot *between healthy runs*; a slot that
        crash-loops past it stays down and the supervisor's exit code
        becomes non-zero.
    backoff_base / backoff_cap:
        Pause before the k-th consecutive restart of a slot is
        ``min(backoff_cap, backoff_base * 2**k)`` seconds.
    healthy_after:
        Seconds a child must survive for its slot's restart count to
        reset (None: never reset -- strict crash budget).
    restart_counter:
        Observability counter bumped per restart.
    on_spawn:
        ``on_spawn(pid, slot)`` runs in the parent after every fork --
        e.g. to publish a pid file for chaos drills.
    """

    def __init__(self, child_main: Callable[[int], int],
                 processes: int = 1, max_restarts: int = 3,
                 backoff_base: float = 0.1, backoff_cap: float = 1.0,
                 healthy_after: Optional[float] = None,
                 name: str = "supervisor",
                 restart_counter: str = "resilience.supervisor_restarts",
                 on_spawn: Optional[Callable[[int, int], None]] = None):
        if not hasattr(os, "fork"):
            raise ClusterConfigError(
                f"{name} needs os.fork (POSIX); run the service as a "
                "single foreground process instead")
        self.child_main = child_main
        self.processes = max(1, int(processes))
        self.max_restarts = int(max_restarts)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.healthy_after = healthy_after
        self.name = name
        self.restart_counter = restart_counter
        self.on_spawn = on_spawn

    def run(self) -> int:
        """Block until every child exited; return the worst exit code
        (0 after a clean SIGTERM/SIGINT drain)."""
        # pid -> (slot, restarts consumed, spawn time)
        children: Dict[int, Tuple[int, int, float]] = {}
        shutting_down = {"flag": False}

        def _spawn(slot: int, restarts: int) -> None:
            pid = os.fork()
            if pid == 0:
                # Fresh dispositions: the child installs its own
                # graceful-drain handlers (or keeps the defaults).
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                signal.signal(signal.SIGINT, signal.SIG_DFL)
                code = 1
                try:
                    code = int(self.child_main(slot) or 0)
                except BaseException as exc:
                    _LOG.error("%s child %d crashed: %s",
                               self.name, os.getpid(), exc)
                finally:
                    os._exit(code)
            children[pid] = (slot, restarts, time.monotonic())
            _LOG.info("%s child %d started (slot %d, %d/%d)",
                      self.name, pid, slot, len(children), self.processes)
            if self.on_spawn is not None:
                self.on_spawn(pid, slot)

        def _forward(signum, _frame) -> None:
            shutting_down["flag"] = True
            for pid in list(children):
                try:
                    os.kill(pid, signum)
                except OSError:
                    pass

        for slot in range(self.processes):
            _spawn(slot, 0)
        previous = {signum: signal.signal(signum, _forward)
                    for signum in (signal.SIGTERM, signal.SIGINT)}
        _LOG.info("%s %d supervising %d child(ren)",
                  self.name, os.getpid(), self.processes)

        worst = 0
        try:
            while children:
                try:
                    pid, status = os.wait()
                except OSError as exc:
                    if exc.errno == errno.EINTR:
                        continue  # a forwarded signal interrupted wait()
                    if exc.errno == errno.ECHILD:
                        break
                    raise
                except KeyboardInterrupt:
                    _forward(signal.SIGINT, None)
                    continue
                slot, restarts, started = children.pop(pid, (0, 0, 0.0))
                code = (os.waitstatus_to_exitcode(status)
                        if hasattr(os, "waitstatus_to_exitcode")
                        else os.WEXITSTATUS(status))
                if shutting_down["flag"]:
                    worst = max(worst, abs(int(code)))
                    continue
                if code == 0:
                    # Voluntary clean exit (e.g. a supervised
                    # coordinator honouring `cluster stop`): the slot
                    # is done, not crashed -- do not resurrect it.
                    _LOG.info("%s child %d (slot %d) exited cleanly",
                              self.name, pid, slot)
                    continue
                if (self.healthy_after is not None
                        and time.monotonic() - started >= self.healthy_after):
                    restarts = 0  # it was healthy; this is a new incident
                # Unrequested death: keep capacity up (bounded).
                _LOG.warning("%s child %d (slot %d) died with %s; "
                             "restarting", self.name, pid, slot, code)
                if obs.enabled():
                    obs.counter(self.restart_counter).inc()
                if restarts < self.max_restarts:
                    time.sleep(min(self.backoff_cap,
                                   self.backoff_base * 2 ** restarts))
                    _spawn(slot, restarts + 1)
                else:
                    worst = max(worst, 1)
                    _LOG.error("%s slot %d exceeded %d restarts; not "
                               "restarting", self.name, slot,
                               self.max_restarts)
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)
        _LOG.info("%s exiting (%d)", self.name, worst)
        return worst
