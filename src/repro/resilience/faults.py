"""Seeded, deterministic fault injection.

A :class:`FaultPlan` is a list of :class:`FaultSpec` triggers, each
bound to a named *site* in the codebase (``"executor.invoke"``,
``"cache.load"``, ``"fdtd.step"``, ...).  Production code calls
:func:`trip` at each site; when no plan is installed the call is a
single module-attribute check (the same zero-overhead-when-disabled
contract as :mod:`repro.obs`), and chaos tests install a plan -- in
process via :func:`install`, or across process boundaries via the
``REPRO_FAULTS`` environment variable holding the plan's JSON.

Determinism: every site keeps a monotonically increasing hit counter,
and a spec fires on hits ``at .. at + count - 1`` of its site.  Two
runs with the same plan and the same call sequence inject the same
faults at the same places -- there is no randomness at trip time (the
plan ``seed`` is carried for experiment bookkeeping and for callers
that want to derive randomized plans up front).

Fault kinds
-----------
``crash``
    ``os._exit(EXIT_CODE)`` -- an un-catchable process death, the
    moral equivalent of ``kill -9`` or an OOM kill.
``slow``
    ``time.sleep(delay_s)`` -- degraded I/O or a straggler worker.
``error``
    raises :class:`repro.errors.FaultInjected`.
``nan``
    returned to the call site, which poisons its state (solvers write
    a NaN into the field at the armed step).
``corrupt``
    returned to the call site, which damages the artefact it was
    about to produce (the disk cache truncates the entry it writes).
"""

from __future__ import annotations

import json
import logging
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import FaultInjected

__all__ = [
    "ENV_VAR",
    "EXIT_CODE",
    "FaultPlan",
    "FaultSpec",
    "active",
    "install",
    "install_from_env",
    "installed_plan",
    "trip",
    "uninstall",
]

log = logging.getLogger("repro.resilience")

ENV_VAR = "REPRO_FAULTS"
#: Exit status used by ``crash`` faults, distinguishable from normal
#: failure codes in chaos tests.
EXIT_CODE = 86

KINDS = ("crash", "slow", "error", "nan", "corrupt")

#: Kinds that :func:`trip` executes itself; ``nan``/``corrupt`` are
#: returned for the call site to act on.
_BUILTIN_KINDS = ("crash", "slow", "error")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic trigger: fire ``kind`` at hits ``at`` through
    ``at + count - 1`` of ``site``."""

    site: str
    kind: str
    at: int = 1
    count: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.at < 1:
            raise ValueError("FaultSpec.at is 1-based and must be >= 1")
        if self.count < 1:
            raise ValueError("FaultSpec.count must be >= 1")

    def matches(self, hit: int) -> bool:
        return self.at <= hit < self.at + self.count


@dataclass
class FaultPlan:
    """An ordered set of fault specs plus a bookkeeping seed."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "specs": [vars(s) for s in self.specs],
        }, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        specs = [FaultSpec(**spec) for spec in data.get("specs", [])]
        return cls(specs=specs, seed=int(data.get("seed", 0)))

    def sites(self) -> List[str]:
        return sorted({s.site for s in self.specs})


# ---------------------------------------------------------------------------
# Module state.  ``_PLAN is None`` is THE fast path: every guarded
# production site reads it once and moves on.

_PLAN: Optional[FaultPlan] = None
_HITS: Dict[str, int] = {}


def active() -> bool:
    """True when a fault plan is armed in this process."""
    return _PLAN is not None


def installed_plan() -> Optional[FaultPlan]:
    return _PLAN


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` and reset all site hit counters."""
    global _PLAN
    _PLAN = plan
    _HITS.clear()
    log.warning("fault plan armed: %d spec(s) at sites %s",
                len(plan.specs), plan.sites())


def uninstall() -> None:
    global _PLAN
    _PLAN = None
    _HITS.clear()


def install_from_env(environ: Optional[Dict[str, str]] = None) -> bool:
    """Arm the plan serialized in ``$REPRO_FAULTS``, if present.

    Returns True when a plan was installed.  Called from the CLI entry
    point and from pool workers, so a chaos harness can fault a whole
    process tree by exporting one variable.
    """
    raw = (environ if environ is not None else os.environ).get(ENV_VAR)
    if not raw:
        return False
    try:
        install(FaultPlan.from_json(raw))
    except (ValueError, TypeError, KeyError) as exc:
        raise ValueError(f"malformed {ENV_VAR}: {exc}") from exc
    return True


def trip(site: str) -> Optional[FaultSpec]:
    """Advance ``site``'s hit counter and fire any armed fault.

    ``crash``/``slow``/``error`` faults are executed here;  a ``nan``
    or ``corrupt`` spec is *returned* so the call site can poison the
    artefact only it knows how to damage.  Returns None when nothing
    fires -- including always when no plan is armed.
    """
    plan = _PLAN
    if plan is None:
        return None
    hit = _HITS.get(site, 0) + 1
    _HITS[site] = hit
    for spec in plan.specs:
        if spec.site != site or not spec.matches(hit):
            continue
        _fire_counter(site, spec.kind)
        if spec.kind == "crash":
            log.error("fault[crash] at %s hit %d: exiting %d",
                      site, hit, EXIT_CODE)
            os._exit(EXIT_CODE)
        if spec.kind == "slow":
            log.warning("fault[slow] at %s hit %d: sleeping %.3fs",
                        site, hit, spec.delay_s)
            time.sleep(spec.delay_s)
            return spec
        if spec.kind == "error":
            log.warning("fault[error] at %s hit %d", site, hit)
            raise FaultInjected(f"injected error at {site} (hit {hit})")
        log.warning("fault[%s] at %s hit %d", spec.kind, site, hit)
        return spec
    return None


def site_hits(site: str) -> int:
    """Hit counter for ``site`` (diagnostics/tests)."""
    return _HITS.get(site, 0)


def _fire_counter(site: str, kind: str) -> None:
    from ..obs import flight
    flight.record("fault", site=site, fault=kind)
    from .. import obs
    if obs.enabled():
        obs.counter("resilience.fault_injected").inc()
        obs.counter(f"resilience.fault_injected.{kind}").inc()
