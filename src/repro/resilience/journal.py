"""Write-ahead job journal for crash-safe sweep resume.

The executor appends one JSONL record *before* a job attempt starts
(``start``) and one after its outcome is known (``done``), flushing
each record to the OS so a ``kill -9`` loses at most the record being
typed.  On ``python -m repro sweep --resume`` the journal is replayed
first:

* a key with a ``done`` record completed -- its result is already in
  the write-through result cache, so the executor serves it as a hit
  and never re-executes it;
* a key with a ``start`` but no ``done`` was **interrupted** mid-run
  -- it is re-executed (its solver restarts, from its last checkpoint
  when one was configured);
* unknown keys are ordinary new work.

The journal is advisory bookkeeping, not a second result store: job
*values* live only in the result cache.  Records are append-only, one
JSON object per line; a truncated final line (the in-flight record at
kill time) is ignored on replay.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, TextIO

from .. import obs
from ..errors import ReproError

__all__ = ["JobJournal", "JournalState", "read_journal"]

EVENT_START = "start"
EVENT_DONE = "done"


@dataclass
class JournalState:
    """Replayed view of a journal file."""

    records: int = 0
    #: key -> final status ("ok"/"failed"/...) of journalled-complete jobs.
    completed: Dict[str, str] = field(default_factory=dict)
    #: keys with a start but no done record (killed mid-execution).
    interrupted: Set[str] = field(default_factory=set)
    #: key -> label, for reporting.
    labels: Dict[str, str] = field(default_factory=dict)
    #: key -> latest full ``start`` record.  Writers that journal the
    #: job descriptor itself (ref/params/timeout, as the cluster
    #: coordinator does) can requeue interrupted work from here.
    start_records: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def summary(self) -> str:
        return (f"{len(self.completed)} completed, "
                f"{len(self.interrupted)} interrupted "
                f"({self.records} record(s))")


def read_journal(path: str) -> JournalState:
    """Replay ``path`` (missing file -> empty state)."""
    state = JournalState()
    try:
        handle = open(path, "r", encoding="utf-8")
    except OSError:
        return state
    with handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn final record from a kill mid-write
            key = record.get("key")
            event = record.get("event")
            if not key or event not in (EVENT_START, EVENT_DONE):
                continue
            state.records += 1
            if record.get("label"):
                state.labels[key] = record["label"]
            if event == EVENT_START:
                state.interrupted.add(key)
                state.start_records[key] = record
            else:
                state.interrupted.discard(key)
                state.completed[key] = str(record.get("status", "ok"))
    return state


class JobJournal:
    """Append-only write-ahead journal bound to one file.

    Parameters
    ----------
    path:
        Journal file; parent directories are created.
    resume:
        When True, replay the existing file into :attr:`state` and
        append to it; when False, start a fresh (truncated) journal.
    """

    def __init__(self, path: str, resume: bool = False):
        self.path = str(path)
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        self.state = read_journal(self.path) if resume else JournalState()
        self._handle: Optional[TextIO] = open(
            self.path, "a" if resume else "w", encoding="utf-8")

    # -- replayed view ------------------------------------------------------

    def completed_status(self, key: str) -> Optional[str]:
        """Status of a journalled-complete job, or None."""
        return self.state.completed.get(key)

    def was_interrupted(self, key: str) -> bool:
        return key in self.state.interrupted

    # -- write-ahead records ------------------------------------------------

    def start(self, key: str, label: str = "", **extra: Any) -> None:
        record = {"event": EVENT_START, "key": key, "label": label}
        record.update(extra)
        self._append(record)

    def done(self, key: str, status: str, **extra: Any) -> None:
        record = {"event": EVENT_DONE, "key": key, "status": status}
        record.update(extra)
        self._append(record)
        self.state.completed[key] = status
        self.state.interrupted.discard(key)

    def _append(self, record: Dict[str, Any]) -> None:
        handle = self._handle
        if handle is None:
            raise ReproError(f"journal {self.path} is closed")
        from ..runtime.report import utc_now_iso  # lazy: import cycle

        record["ts"] = utc_now_iso()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush through to the OS so a SIGKILL right after a record is
        # written cannot lose it -- that is the write-ahead guarantee.
        handle.flush()
        os.fsync(handle.fileno())
        self.state.records += 1
        if obs.enabled():
            obs.counter("resilience.journal_records").inc()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
