"""Per-job-family circuit breaker for the serving tier.

Classic three-state breaker:

* **closed** -- requests flow; consecutive failures are counted.
* **open** -- after ``fail_threshold`` consecutive failures the
  breaker rejects immediately with
  :class:`repro.errors.CircuitOpen` (mapped to HTTP 503 +
  ``Retry-After`` by the service) instead of queueing more work onto
  a job family that keeps blowing up the executor.
* **half-open** -- once ``reset_timeout`` has elapsed, a single probe
  request is admitted; success closes the breaker, failure re-opens
  it for another timeout.

Cache hits bypass the breaker entirely (the pipeline checks it only
on the compute path), so an open breaker degrades the service to
cached-results-only rather than taking it down -- which is exactly
what ``/healthz`` reports as ``"degraded"``.

The breaker is synchronous and lock-free by design: the serving
pipeline drives it from a single asyncio event loop.  ``clock`` is
injectable for deterministic tests.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from .. import obs
from ..errors import CircuitOpen

__all__ = ["CircuitBreaker"]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker guarding one job family.

    Parameters
    ----------
    name:
        Family label, carried into :class:`CircuitOpen` and metrics.
    fail_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout:
        Seconds an open breaker waits before admitting a probe.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(self, name: str, fail_threshold: int = 5,
                 reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.name = name
        self.fail_threshold = int(fail_threshold)
        self.reset_timeout = float(reset_timeout)
        self.clock = clock
        self.state = STATE_CLOSED
        self.failures = 0
        self.opened_at: Optional[float] = None
        self.trips = 0

    def allow(self) -> None:
        """Admit a request or raise :class:`CircuitOpen`.

        An open breaker past its reset timeout transitions to
        half-open and admits this request as the probe.
        """
        if self.state == STATE_CLOSED:
            return
        if self.state == STATE_OPEN:
            elapsed = self.clock() - (self.opened_at or 0.0)
            if elapsed < self.reset_timeout:
                if obs.enabled():
                    obs.counter("resilience.circuit_rejected").inc()
                raise CircuitOpen(self.name,
                                  retry_after=self.reset_timeout - elapsed)
            self.state = STATE_HALF_OPEN
            obs.flight.record("breaker", name=self.name,
                              state=STATE_HALF_OPEN)
            return  # this request is the probe
        # Half-open with a probe already in flight: reject further work
        # until the probe reports back.
        if obs.enabled():
            obs.counter("resilience.circuit_rejected").inc()
        raise CircuitOpen(self.name, retry_after=self.reset_timeout)

    def record_success(self) -> None:
        if self.state != STATE_CLOSED:
            obs.flight.record("breaker", name=self.name,
                              state=STATE_CLOSED)
            if obs.enabled():
                obs.counter("resilience.circuit_closed").inc()
        self.state = STATE_CLOSED
        self.failures = 0
        self.opened_at = None

    def trip_probe(self) -> None:
        """Open the breaker with its reset timeout *already elapsed*.

        For failures that indicate an unreachable dependency rather
        than a poisoned job family -- e.g. the serving tier's cluster
        coordinator restarting under supervision.  The very next
        request is admitted as a half-open probe (instead of everyone
        waiting out ``reset_timeout``), while the requests behind it
        are shed until the probe reports back; success snaps the
        breaker closed.  Compare :meth:`record_failure`, which opens
        for the full timeout.
        """
        if self.state != STATE_OPEN:
            self.trips += 1
            obs.flight.record("breaker", name=self.name,
                              state=STATE_OPEN, failures=self.failures,
                              probe=True)
            if obs.enabled():
                obs.counter("resilience.circuit_probe_tripped").inc()
        self.failures = max(self.failures, self.fail_threshold)
        self.state = STATE_OPEN
        self.opened_at = self.clock() - self.reset_timeout

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == STATE_HALF_OPEN or \
                self.failures >= self.fail_threshold:
            if self.state != STATE_OPEN:
                self.trips += 1
                obs.flight.record("breaker", name=self.name,
                                  state=STATE_OPEN,
                                  failures=self.failures)
                if obs.enabled():
                    obs.counter("resilience.circuit_opened").inc()
            self.state = STATE_OPEN
            self.opened_at = self.clock()

    @property
    def is_open(self) -> bool:
        return self.state == STATE_OPEN

    def snapshot(self) -> Dict[str, object]:
        return {"state": self.state, "failures": self.failures,
                "trips": self.trips}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CircuitBreaker({self.name!r}, state={self.state}, "
                f"failures={self.failures}/{self.fail_threshold})")
