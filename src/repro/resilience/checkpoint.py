"""Atomic solver checkpoints.

A checkpoint is a single ``.npz`` file holding the solver's state
arrays plus one JSON metadata blob (step count, simulation time,
solver tag) stored under the reserved ``__meta__`` entry.  Writes go
through a temp file + ``os.replace`` (the same discipline as the disk
cache), so a checkpoint on disk is always either the complete previous
snapshot or the complete new one -- a crash mid-write can never leave
a half-written file behind for resume to trip over.

:class:`CheckpointManager` is the solver-facing handle: constructed
with a path and a period, it asks the solver for its state only on the
steps it actually persists, so the hot loop pays one modulo per step.
Both :class:`~repro.fdtd.ScalarWaveSimulator` and
:class:`~repro.micromag.Simulation` accept a manager and expose
``state_dict()`` / ``load_state()`` / ``restore_checkpoint()``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from .. import obs
from ..errors import CheckpointError

__all__ = [
    "CheckpointManager",
    "load_checkpoint",
    "save_checkpoint",
]

_META_KEY = "__meta__"

#: ``state_dict`` contract: (arrays, metadata).
StateDict = Tuple[Dict[str, np.ndarray], Dict[str, Any]]


def save_checkpoint(path: str, arrays: Dict[str, np.ndarray],
                    meta: Dict[str, Any]) -> None:
    """Atomically persist ``arrays`` + JSON-compatible ``meta``."""
    if _META_KEY in arrays:
        raise ValueError(f"{_META_KEY!r} is reserved for metadata")
    from ..runtime.cache import atomic_write  # lazy: avoids an import cycle

    blob = np.frombuffer(json.dumps(meta, sort_keys=True).encode("utf-8"),
                         dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    atomic_write(path, lambda fh: np.savez(
        fh, **dict(arrays, **{_META_KEY: blob})))
    if obs.enabled():
        obs.counter("resilience.checkpoint_saved").inc()
        obs.counter("resilience.checkpoint_bytes").inc(
            os.path.getsize(path))


def load_checkpoint(path: str) -> StateDict:
    """Read a checkpoint; raises :class:`CheckpointError` when the file
    is missing, unreadable or lacks its metadata record."""
    try:
        with np.load(path) as npz:
            if _META_KEY not in npz.files:
                raise CheckpointError(
                    f"checkpoint {path} has no {_META_KEY} record")
            meta = json.loads(bytes(npz[_META_KEY]).decode("utf-8"))
            arrays = {name: npz[name] for name in npz.files
                      if name != _META_KEY}
    except CheckpointError:
        raise
    except (OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"cannot read checkpoint {path}: "
            f"{type(exc).__name__}: {exc}") from exc
    if obs.enabled():
        obs.counter("resilience.checkpoint_loaded").inc()
    return arrays, meta


class CheckpointManager:
    """Periodic checkpointing policy bound to one file path.

    Parameters
    ----------
    path:
        Checkpoint file (``.npz``); overwritten atomically each save.
    every_steps:
        Persist every this many solver steps.  The solver calls
        :meth:`maybe_save` each step with a zero-argument state
        provider, which is only invoked on persisting steps.
    """

    def __init__(self, path: str, every_steps: int = 1000):
        if every_steps < 1:
            raise ValueError("checkpoint period must be >= 1 step")
        self.path = str(path)
        self.every_steps = int(every_steps)
        self.saves = 0
        self.last_step: Optional[int] = None

    def maybe_save(self, step: int,
                   state: Callable[[], StateDict]) -> bool:
        """Persist when ``step`` hits the period; returns True on save."""
        if step % self.every_steps:
            return False
        self.save(state, step=step)
        return True

    def save(self, state: Callable[[], StateDict],
             step: Optional[int] = None) -> None:
        arrays, meta = state()
        save_checkpoint(self.path, arrays, meta)
        self.saves += 1
        self.last_step = step if step is not None else meta.get("step")

    def load(self) -> StateDict:
        return load_checkpoint(self.path)

    def exists(self) -> bool:
        return os.path.exists(self.path)
