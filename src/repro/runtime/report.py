"""Run telemetry: per-job records and sweep-level aggregates.

Every :meth:`Executor.run` produces a :class:`RunReport` holding one
:class:`JobRecord` per submitted spec -- status (cache hit / computed /
failed), execution mode (cached / pool / serial), attempt count, wall
time and the final error text if any.  The report prints as an ASCII
table (same renderer as the paper-table benches) and dumps as JSON for
CI artifacts.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional

from ..io.tables import format_table


def utc_now_iso() -> str:
    """Current UTC time as ISO-8601 (the ``started_at`` format)."""
    return datetime.now(timezone.utc).isoformat(timespec="microseconds")

#: JobRecord.status values.
STATUS_HIT = "hit"        # served from the result cache
STATUS_OK = "ok"          # computed successfully
STATUS_FAILED = "failed"  # all attempts exhausted

#: JobRecord.mode values.
MODE_CACHED = "cached"
MODE_POOL = "pool"
MODE_SERIAL = "serial"
MODE_CLUSTER = "cluster"  # executed remotely via repro.cluster


@dataclass
class JobRecord:
    """Telemetry for one job."""

    label: str
    key: str
    status: str
    mode: str
    attempts: int = 1
    wall_time: float = 0.0
    error: Optional[str] = None
    #: ISO-8601 UTC timestamp of when the executor first touched the
    #: job (cache lookup or first attempt) -- makes CI artifacts
    #: orderable across runs.
    started_at: Optional[str] = None
    #: Trace id of the observability trace active during the run
    #: (None when tracing was disabled) -- correlates JobRecords with
    #: span logs.
    trace_id: Optional[str] = None
    #: Resilience annotations ("resumed-after-interrupt",
    #: "degraded_from=llg", ...); None for an uneventful job.
    notes: Optional[str] = None
    #: CPU seconds (user+system) the job consumed, measured by
    #: ``resource.getrusage`` in whichever process ran it (pool
    #: workers ship it back with the result).  None when the observer
    #: was off or the platform lacks ``resource``.
    cpu_s: Optional[float] = None
    #: Process max-RSS high-water mark [kB] at job end (monotone per
    #: process: a reused pool worker reports its largest job so far).
    max_rss_kb: Optional[int] = None
    #: Python-heap peak [kB] during the job, only under the opt-in
    #: ``REPRO_TRACEMALLOC`` environment switch.
    py_peak_kb: Optional[int] = None

    def set_resources(self, resources: Optional[Dict[str, Any]]) -> None:
        """Attach a :meth:`repro.obs.ResourceProbe.finish` payload."""
        if not resources:
            return
        self.cpu_s = resources.get("cpu_s")
        self.max_rss_kb = resources.get("max_rss_kb")
        self.py_peak_kb = resources.get("py_peak_kb")

    @property
    def retries(self) -> int:
        """Attempts beyond the first (0 for hits and first-try wins)."""
        return max(0, self.attempts - 1)

    def as_dict(self) -> Dict[str, Any]:
        data = {"label": self.label, "key": self.key, "status": self.status,
                "mode": self.mode, "attempts": self.attempts,
                "retries": self.retries,
                "wall_time_s": round(self.wall_time, 6),
                "started_at": self.started_at,
                "trace_id": self.trace_id,
                "notes": self.notes,
                "error": self.error}
        if self.cpu_s is not None:
            data["cpu_s"] = self.cpu_s
        if self.max_rss_kb is not None:
            data["max_rss_kb"] = self.max_rss_kb
        if self.py_peak_kb is not None:
            data["py_peak_kb"] = self.py_peak_kb
        return data


@dataclass
class RunReport:
    """Aggregated telemetry for one executor run."""

    records: List[JobRecord] = field(default_factory=list)
    elapsed: float = 0.0
    workers: int = 1
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    def add(self, record: JobRecord) -> None:
        self.records.append(record)

    def finish(self) -> "RunReport":
        self.elapsed = time.perf_counter() - self._t0
        return self

    # -- aggregates ---------------------------------------------------------

    @property
    def n_jobs(self) -> int:
        return len(self.records)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_HIT)

    @property
    def cache_misses(self) -> int:
        return self.n_jobs - self.cache_hits

    @property
    def hit_rate(self) -> float:
        if not self.records:
            return 0.0
        return self.cache_hits / self.n_jobs

    @property
    def n_computed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_OK)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_FAILED)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.records)

    @property
    def total_wall_time(self) -> float:
        """Sum of per-job wall times (> elapsed when jobs ran in
        parallel -- their ratio is the achieved speed-up)."""
        return sum(r.wall_time for r in self.records)

    @property
    def total_cpu_time(self) -> float:
        """Sum of the per-job CPU seconds that were measured (0.0 when
        resource accounting was off for the whole run)."""
        return sum(r.cpu_s for r in self.records if r.cpu_s is not None)

    @property
    def max_rss_kb(self) -> Optional[int]:
        """Largest per-job RSS high-water mark seen, or None."""
        values = [r.max_rss_kb for r in self.records
                  if r.max_rss_kb is not None]
        return max(values) if values else None

    # -- rendering ----------------------------------------------------------

    def format_table(self) -> str:
        """Per-job ASCII telemetry table."""
        rows = []
        for r in self.records:
            rows.append([r.label, r.status, r.mode, str(r.attempts),
                         f"{r.wall_time * 1e3:.1f}",
                         (r.error or r.notes or "")[:40]])
        return format_table(
            ["job", "status", "mode", "attempts", "wall (ms)", "notes"],
            rows, title="run telemetry")

    def summary(self) -> str:
        """Two-line human summary of the run."""
        line1 = (f"{self.n_jobs} jobs: {self.cache_hits} cached "
                 f"({self.hit_rate * 100:.0f} % hits), "
                 f"{self.n_computed} computed, {self.n_failed} failed, "
                 f"{self.total_retries} retries")
        line2 = (f"elapsed {self.elapsed:.2f} s, "
                 f"busy {self.total_wall_time:.2f} s, "
                 f"workers {self.workers}")
        return line1 + "\n" + line2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": {
                "n_jobs": self.n_jobs,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "hit_rate": self.hit_rate,
                "computed": self.n_computed,
                "failed": self.n_failed,
                "retries": self.total_retries,
                "elapsed_s": round(self.elapsed, 6),
                "total_wall_time_s": round(self.total_wall_time, 6),
                "total_cpu_s": round(self.total_cpu_time, 6),
                "max_rss_kb": self.max_rss_kb,
                "workers": self.workers,
            },
            "jobs": [r.as_dict() for r in self.records],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def dump_json(self, path: str) -> None:
        """Write the report as JSON (the CI smoke-sweep artifact).

        The write is atomic (temp file + ``os.replace``, the same path
        the disk cache uses): a run killed mid-dump can truncate
        neither a fresh artifact nor the previous one, and the payload
        is fully serialised before the target is touched.
        """
        from .cache import atomic_write

        data = (self.to_json() + "\n").encode("utf-8")
        atomic_write(path, lambda handle: handle.write(data))
