"""Parallel job execution with caching, timeouts, retries and fallback.

The :class:`Executor` takes a batch of :class:`~repro.runtime.spec.JobSpec`
objects and returns a :class:`RunResult` whose values align with the
submitted specs.  Per job it:

1. looks the content key up in the :class:`ResultCache` (if any);
2. on a miss, hands the job to its
   :class:`~repro.runtime.backend.ExecutorBackend` -- by default the
   :class:`~repro.runtime.backend.LocalPoolBackend`, which uses a
   ``ProcessPoolExecutor`` when ``workers > 1`` and the spec is
   portable (addressable by ``module:qualname``), otherwise runs
   in-process; a ``tcp://`` backend ships it to a
   :mod:`repro.cluster` coordinator instead;
3. enforces an optional per-job ``timeout`` and retries failures up to
   ``retries`` times with exponential backoff;
4. records everything in a :class:`RunReport`.

Degradation is always graceful: if worker processes cannot be spawned
(sandboxes, restricted platforms), if the pool breaks mid-run, or if a
job or its result does not pickle, the affected jobs fall back to
serial in-process execution and the telemetry says so
(``mode="serial"``).

A job that exhausts its attempts yields ``value=None`` and a
``status="failed"`` record; :meth:`RunResult.raise_on_failure` turns
that into an exception for callers that need all results.

Timeout caveat: neither a busy worker process nor a busy thread can be
killed portably, so a timed-out attempt is *abandoned* (and retried)
while the stray worker finishes in the background; the executor then
shuts its pool down without waiting.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import pickle
import random
import time
import traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import JobFailed, JobTimeout
from ..resilience import faults
from ..resilience.journal import JobJournal
from .backend import ExecutorBackend, LocalPoolBackend
from .cache import ResultCache
from .report import (
    MODE_CACHED,
    MODE_POOL,
    MODE_SERIAL,
    STATUS_FAILED,
    STATUS_HIT,
    STATUS_OK,
    JobRecord,
    RunReport,
    utc_now_iso,
)
from .spec import JobSpec, resolve_ref

_LOG = obs.get_logger("runtime.executor")


def backoff_delay(base: float, retry_index: int,
                  cap: Optional[float] = None,
                  jitter: float = 0.0) -> float:
    """Exponential backoff before the ``retry_index``-th retry (1-based).

    ``base * 2**(retry_index - 1)`` seconds -- the executor's retry
    policy, shared by :class:`repro.serve.client.ServeClient` so a
    client backing off from an overloaded server paces itself the same
    way the engine paces failing jobs.

    ``cap`` bounds the delay (reconnect loops must not back off into
    minutes); ``jitter`` spreads it uniformly by ``+/- jitter``
    fraction so a fleet of workers orphaned by one coordinator death
    does not redial in lockstep (thundering herd).  Both default off,
    keeping retry pacing deterministic where it always was.
    """
    delay = base * 2 ** max(0, retry_index - 1)
    if cap is not None:
        delay = min(delay, cap)
    if jitter > 0.0:
        delay *= 1.0 + random.uniform(-jitter, jitter)
    return max(0.0, delay)


# JobTimeout / JobFailed historically lived here; they now sit in the
# typed hierarchy of :mod:`repro.errors` and are re-exported above for
# backward compatibility.

#: (index into the submitted batch, spec, content key).
_Job = Tuple[int, JobSpec, str]


@dataclass
class _ShippedResult:
    """A worker's return value bundled with the telemetry it collected.

    Workers run in their own process, so spans they record and the
    CPU/RSS their job consumed cannot reach the parent directly --
    they ride back with the result (standard distributed-tracing span
    shipping) and the executor unbundles them via :func:`_unship`.
    """

    value: Any
    spans: List[Dict[str, Any]]
    resources: Optional[Dict[str, Any]] = None


def _invoke(ref: str, params: Dict[str, Any],
            ctx: Optional[obs.TraceContext] = None,
            fault_plan: Optional[str] = None) -> Any:
    """Worker-side entry point: resolve the callable and run it.

    Module-level (not a closure) so it pickles to worker processes.
    Every pool job is bracketed with a
    :class:`~repro.obs.ResourceProbe` (CPU seconds, max RSS, opt-in
    tracemalloc peak) -- two ``getrusage`` calls, noise next to the
    process round-trip -- so run reports carry per-job resource
    accounting even with tracing off.  When a
    :class:`~repro.obs.TraceContext` is shipped along, the worker
    additionally collects spans under the parent's trace id and
    returns them bundled with the value.  A serialized fault plan (or
    the ``REPRO_FAULTS`` environment variable, which worker processes
    inherit) is armed once per worker so chaos tests reach pool
    workers too; hit counters persist across jobs within one worker.
    """
    if fault_plan is not None and not faults.active():
        faults.install(faults.FaultPlan.from_json(fault_plan))
    elif not faults.active():
        faults.install_from_env()
    if faults.active():
        faults.trip("executor.invoke")
    probe = obs.ResourceProbe()
    if ctx is None:
        value = resolve_ref(ref)(**params)
        return _ShippedResult(value, [], probe.finish())
    obs.activate(ctx)
    try:
        with obs.span("executor.job", ref=ref, mode="pool"):
            value = resolve_ref(ref)(**params)
    finally:
        shipped_spans = obs.deactivate()
    return _ShippedResult(value, shipped_spans, probe.finish())


def _unship(value: Any) -> Tuple[Any, Optional[Dict[str, Any]]]:
    """Merge spans shipped back from a worker; return the bare value
    and the worker-side resource accounting (None when not shipped)."""
    if isinstance(value, _ShippedResult):
        obs.ingest(value.spans)
        return value.value, value.resources
    return value, None


def _call_with_timeout(fn: Callable, params: Dict[str, Any],
                       timeout: Optional[float]) -> Any:
    """Run ``fn(**params)``, bounding wall time with a worker thread."""
    if timeout is None:
        return fn(**params)
    pool = cf.ThreadPoolExecutor(max_workers=1)
    future = pool.submit(fn, **params)
    try:
        value = future.result(timeout=timeout)
    except cf.TimeoutError:
        future.cancel()
        pool.shutdown(wait=False)
        raise JobTimeout(f"job exceeded timeout of {timeout} s")
    pool.shutdown(wait=False)
    return value


def _is_pickle_error(exc: BaseException) -> bool:
    return isinstance(exc, (pickle.PicklingError, pickle.UnpicklingError,
                            TypeError)) and "pickle" in str(exc).lower()


@dataclass
class JobOutcome:
    """One spec's result paired with its telemetry record."""

    spec: JobSpec
    key: str
    value: Any
    record: JobRecord

    @property
    def ok(self) -> bool:
        return self.record.status != STATUS_FAILED


class RunResult:
    """Ordered outcomes of one :meth:`Executor.run` call."""

    def __init__(self, outcomes: List[JobOutcome], report: RunReport):
        self.outcomes = outcomes
        self.report = report

    @property
    def values(self) -> List[Any]:
        """Job return values, aligned with the submitted specs
        (``None`` for failed jobs)."""
        return [o.value for o in self.outcomes]

    @property
    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_failure(self) -> "RunResult":
        failures = self.failures
        if failures:
            details = "; ".join(
                f"{o.record.label}: {o.record.error}" for o in failures[:5])
            raise JobFailed(
                f"{len(failures)} of {len(self.outcomes)} jobs failed "
                f"after retries: {details}")
        return self

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


class Executor:
    """Fan jobs out over processes, with caching and bounded retries.

    Parameters
    ----------
    workers:
        Process count.  ``None`` or 1 means serial in-process
        execution; ``0`` means one per CPU.
    cache:
        A :class:`ResultCache`, or None to always recompute.
    timeout:
        Per-job attempt wall-time bound [s]; None disables it.
    retries:
        Extra attempts after the first failure (``retries=2`` means at
        most 3 attempts per job).
    backoff:
        Base of the exponential backoff slept before retry round *n*:
        ``backoff * 2**(n - 1)`` seconds.
    salt:
        Cache-key salt override; defaults to the package version salt.
    journal:
        Optional :class:`~repro.resilience.journal.JobJournal`.  When
        set, every job writes a ``start`` record before executing and
        a ``done`` record at its outcome, and jobs the replayed
        journal marks interrupted are flagged in their telemetry
        (``python -m repro sweep --resume`` builds on this).
    backend:
        An :class:`~repro.runtime.backend.ExecutorBackend` that runs
        the cache misses, or None for the default
        :class:`~repro.runtime.backend.LocalPoolBackend` (the
        pool/serial behaviour described above).  Pass a
        :class:`repro.cluster.TcpClusterBackend` (or use
        :func:`~repro.runtime.backend.create_backend` with a
        ``tcp://host:port`` URL) to shard the batch across worker
        processes on any number of hosts.
    """

    def __init__(self, workers: Optional[int] = None,
                 cache: Optional[ResultCache] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 backoff: float = 0.1,
                 salt: Optional[str] = None,
                 journal: Optional[JobJournal] = None,
                 backend: Optional[ExecutorBackend] = None):
        if workers == 0:
            workers = os.cpu_count() or 1
        self.workers = max(1, int(workers or 1))
        self.cache = cache
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.salt = salt
        self.journal = journal
        self.backend = backend if backend is not None else LocalPoolBackend()
        self._interrupted_now: set = set()

    # -- public API ---------------------------------------------------------

    def run(self, specs: Sequence[JobSpec]) -> RunResult:
        """Execute a batch of specs; returns outcomes in input order."""
        with obs.span("executor.run", n_jobs=len(specs),
                      workers=self.workers):
            return self._run(specs)

    def _run(self, specs: Sequence[JobSpec]) -> RunResult:
        report = RunReport(workers=self.workers)
        outcomes: List[Optional[JobOutcome]] = [None] * len(specs)
        pending: List[_Job] = []
        trace_id = obs.current_trace_id()
        self._interrupted_now = set()
        if obs.enabled():
            obs.counter("executor.jobs").inc(len(specs))

        for index, spec in enumerate(specs):
            key = spec.key(self.salt)
            started = utc_now_iso()
            t0 = time.perf_counter()
            if self.cache is not None:
                found, value = self.cache.get(key)
                if found:
                    record = JobRecord(
                        label=spec.display_label, key=key,
                        status=STATUS_HIT, mode=MODE_CACHED, attempts=0,
                        wall_time=time.perf_counter() - t0,
                        started_at=started, trace_id=trace_id)
                    if (self.journal is not None
                            and self.journal.completed_status(key) is not None
                            and obs.enabled()):
                        obs.counter("resilience.resumed_skipped").inc()
                    outcomes[index] = JobOutcome(spec, key, value, record)
                    self._commit(outcomes[index])
                    continue
            if (self.journal is not None
                    and self.journal.was_interrupted(key)):
                self._interrupted_now.add(key)
                _LOG.warning("job %s was interrupted in a previous run; "
                             "re-executing", spec.display_label)
                if obs.enabled():
                    obs.counter("resilience.resumed_interrupted").inc()
            pending.append((index, spec, key))

        if pending:
            self.backend.execute(self, pending, outcomes)

        for outcome in outcomes:
            assert outcome is not None
            report.add(outcome.record)
        finished = report.finish()
        _LOG.info("run finished: %s", finished.summary().replace("\n", "; "))
        return RunResult(list(outcomes), finished)

    def _commit(self, outcome: JobOutcome) -> None:
        """Durably commit one outcome the moment it is known.

        Write-through semantics: the result cache entry and the
        journal ``done`` record land as each job finishes, not when
        the whole batch does -- a run killed mid-batch keeps every
        completed result, which is what makes ``--resume`` cheap.
        """
        if outcome.key in self._interrupted_now:
            outcome.record.notes = "resumed-after-interrupt"
        if (self.cache is not None
                and outcome.record.status == STATUS_OK):
            self.cache.put(outcome.key, outcome.value)
        if (self.journal is not None
                and outcome.record.status != STATUS_HIT):
            self.journal.done(outcome.key, outcome.record.status,
                              attempts=outcome.record.attempts)

    def map(self, fn: Any, params_list: Sequence[Dict[str, Any]],
            label: str = "") -> RunResult:
        """Convenience: one spec per params dict over a shared callable."""
        name = label or getattr(fn, "__name__", "job")
        specs = [JobSpec(fn=fn, params=params, label=f"{name}[{i}]")
                 for i, params in enumerate(params_list)]
        return self.run(specs)

    # -- pool path ----------------------------------------------------------

    def _run_pool(self, jobs: List[_Job],
                  outcomes: List[Optional[JobOutcome]]) -> List[_Job]:
        """Run portable jobs on a process pool.

        Fills ``outcomes`` in place; returns the jobs that must degrade
        to the serial path (pool unavailable, pool broke mid-run, or a
        result refused to pickle).
        """
        if not jobs:
            return []
        try:
            pool = cf.ProcessPoolExecutor(
                max_workers=min(self.workers, len(jobs)))
        except (OSError, PermissionError, NotImplementedError, ValueError) \
                as exc:
            _LOG.warning("cannot spawn worker processes (%s); running "
                         "serially", self._describe(exc))
            return jobs

        attempts = {index: 0 for index, _spec, _key in jobs}
        spent = {index: 0.0 for index, _spec, _key in jobs}
        started: Dict[int, str] = {}
        errors: Dict[int, str] = {}
        degraded: List[_Job] = []
        remaining = list(jobs)
        abandoned = False
        round_number = 0
        trace_id = obs.current_trace_id()
        ctx = obs.current_context()
        plan = faults.installed_plan()
        plan_json = plan.to_json() if plan is not None else None

        try:
            while remaining:
                round_number += 1
                if round_number > 1:
                    delay = backoff_delay(self.backoff, round_number - 1)
                    with obs.span("executor.backoff", round=round_number,
                                  delay_s=delay, jobs=len(remaining)):
                        time.sleep(delay)
                submitted: List[Tuple[cf.Future, _Job]] = []
                for job in remaining:
                    index, spec, key = job
                    attempts[index] += 1
                    if attempts[index] == 1:
                        if self.journal is not None:
                            self.journal.start(key, spec.display_label)
                        if obs.enabled():
                            obs.counter("executor.executed").inc()
                    started.setdefault(index, utc_now_iso())
                    submitted.append(
                        (pool.submit(_invoke, spec.ref, spec.param_dict(),
                                     ctx, plan_json),
                         job))
                retry_round: List[_Job] = []
                for future, job in submitted:
                    index, spec, key = job
                    t0 = time.perf_counter()
                    try:
                        value, resources = _unship(
                            future.result(timeout=self.timeout))
                    except BrokenProcessPool:
                        raise  # the outer handler degrades survivors
                    except cf.TimeoutError:
                        future.cancel()
                        abandoned = True
                        spent[index] += time.perf_counter() - t0
                        errors[index] = (f"timeout after {self.timeout} s "
                                         f"(attempt {attempts[index]})")
                        _LOG.warning("job %s: %s", spec.display_label,
                                     errors[index])
                        if obs.enabled():
                            obs.counter("executor.timeout").inc()
                        self._retry_or_fail(job, attempts, spent, errors,
                                            outcomes, retry_round, MODE_POOL,
                                            started)
                    except Exception as exc:
                        spent[index] += time.perf_counter() - t0
                        if _is_pickle_error(exc):
                            degraded.append(job)
                            continue
                        errors[index] = self._describe(exc)
                        _LOG.warning("job %s attempt %d failed: %s",
                                     spec.display_label, attempts[index],
                                     errors[index])
                        self._retry_or_fail(job, attempts, spent, errors,
                                            outcomes, retry_round, MODE_POOL,
                                            started)
                    else:
                        spent[index] += time.perf_counter() - t0
                        record = JobRecord(
                            label=spec.display_label, key=key,
                            status=STATUS_OK, mode=MODE_POOL,
                            attempts=attempts[index],
                            wall_time=spent[index],
                            started_at=started.get(index),
                            trace_id=trace_id)
                        record.set_resources(resources)
                        outcomes[index] = JobOutcome(spec, key, value,
                                                     record)
                        self._commit(outcomes[index])
                remaining = retry_round
        except BrokenProcessPool:
            _LOG.warning("worker pool broke mid-run; surviving jobs "
                         "degrade to serial execution")
        finally:
            try:
                pool.shutdown(wait=not abandoned, cancel_futures=True)
            except (OSError, RuntimeError):
                pass  # a broken pool may refuse a clean shutdown

        return [job for job in jobs
                if outcomes[job[0]] is None
                and not any(job[0] == d[0] for d in degraded)] + \
               [job for job in degraded if outcomes[job[0]] is None]

    def _retry_or_fail(self, job: _Job, attempts: Dict[int, int],
                       spent: Dict[int, float], errors: Dict[int, str],
                       outcomes: List[Optional[JobOutcome]],
                       retry_round: List[_Job], mode: str,
                       started: Optional[Dict[int, str]] = None) -> None:
        index, spec, key = job
        if attempts[index] <= self.retries:
            if obs.enabled():
                obs.counter("executor.retry").inc()
            retry_round.append(job)
        else:
            if obs.enabled():
                obs.counter("executor.failed").inc()
            obs.flight.record("job.failed", label=spec.display_label,
                              mode=mode, attempts=attempts[index],
                              error=errors.get(index))
            obs.flight.auto_dump(reason="job.failed")
            outcomes[index] = JobOutcome(
                spec, key, None,
                JobRecord(label=spec.display_label, key=key,
                          status=STATUS_FAILED, mode=mode,
                          attempts=attempts[index],
                          wall_time=spent[index], error=errors.get(index),
                          started_at=(started or {}).get(index),
                          trace_id=obs.current_trace_id()))
            self._commit(outcomes[index])

    # -- serial path --------------------------------------------------------

    def _run_serial(self, spec: JobSpec, key: str) -> JobOutcome:
        fn = spec.resolve()
        params = spec.param_dict()
        spent = 0.0
        error: Optional[str] = None
        started = utc_now_iso()
        trace_id = obs.current_trace_id()
        if self.journal is not None:
            self.journal.start(key, spec.display_label)
        if obs.enabled():
            obs.counter("executor.executed").inc()
        with obs.span("executor.job", label=spec.display_label,
                      mode="serial"):
            for attempt in range(1, self.retries + 2):
                if attempt > 1:
                    delay = backoff_delay(self.backoff, attempt - 1)
                    with obs.span("executor.backoff", attempt=attempt,
                                  delay_s=delay):
                        time.sleep(delay)
                    if obs.enabled():
                        obs.counter("executor.retry").inc()
                t0 = time.perf_counter()
                probe = obs.ResourceProbe() if obs.enabled() else None
                try:
                    if faults.active():
                        faults.trip("executor.invoke")
                    with obs.span("executor.attempt", attempt=attempt):
                        value = _call_with_timeout(fn, params, self.timeout)
                except Exception as exc:
                    spent += time.perf_counter() - t0
                    error = self._describe(exc)
                    if isinstance(exc, JobTimeout) and obs.enabled():
                        obs.counter("executor.timeout").inc()
                    _LOG.warning("job %s attempt %d failed: %s",
                                 spec.display_label, attempt, error)
                else:
                    spent += time.perf_counter() - t0
                    record = JobRecord(label=spec.display_label, key=key,
                                       status=STATUS_OK, mode=MODE_SERIAL,
                                       attempts=attempt, wall_time=spent,
                                       started_at=started,
                                       trace_id=trace_id)
                    if probe is not None:
                        record.set_resources(probe.finish())
                    return JobOutcome(spec, key, value, record)
        if obs.enabled():
            obs.counter("executor.failed").inc()
        obs.flight.record("job.failed", label=spec.display_label,
                          mode=MODE_SERIAL, attempts=self.retries + 1,
                          error=error)
        obs.flight.auto_dump(reason="job.failed")
        return JobOutcome(
            spec, key, None,
            JobRecord(label=spec.display_label, key=key,
                      status=STATUS_FAILED, mode=MODE_SERIAL,
                      attempts=self.retries + 1, wall_time=spent,
                      error=error, started_at=started, trace_id=trace_id))

    @staticmethod
    def _describe(exc: BaseException) -> str:
        text = f"{type(exc).__name__}: {exc}"
        return text.strip() or traceback.format_exception_only(
            type(exc), exc)[-1].strip()
