"""Pluggable result caches keyed by :meth:`JobSpec.key` digests.

Two stores are provided:

* :class:`MemoryCache` -- a per-process dict, for benches and tests;
* :class:`DiskCache` -- an on-disk store under ``.repro_cache/`` that
  survives processes.  Each value is a JSON document; numpy arrays are
  split out into an ``.npz`` sidecar so large fields stay binary.

Both count hits, misses and writes (:class:`CacheStats`), which the
:class:`~repro.runtime.report.RunReport` telemetry surfaces.

Disk layout::

    .repro_cache/
      <salt>/                 # one namespace per code-version salt
        ab/                   # first two hex digits of the key
          <key>.json          # tagged-JSON payload
          <key>.npz           # ndarray sidecar (only when needed)

Corrupt or half-written entries are treated as misses, never errors:
writes go through a temp file + ``os.replace`` so concurrent sweeps on
the same cache directory are safe.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs

DEFAULT_CACHE_ROOT = ".repro_cache"

_LOG = obs.get_logger("runtime.cache")


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "hit_rate": self.hit_rate}


class ResultCache:
    """Interface: ``get`` -> (found, value), ``put``, ``stats``."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> Tuple[bool, Any]:
        found, value = self._load(key)
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        if obs.enabled():
            obs.counter("cache.hit" if found else "cache.miss").inc()
        return found, value

    def put(self, key: str, value: Any) -> None:
        self._store(key, value)
        self.stats.writes += 1
        if obs.enabled():
            obs.counter("cache.write").inc()

    def __contains__(self, key: str) -> bool:
        found, _ = self._load(key)
        return found

    # Subclass surface ------------------------------------------------------

    def _load(self, key: str) -> Tuple[bool, Any]:
        raise NotImplementedError

    def _store(self, key: str, value: Any) -> None:
        raise NotImplementedError


class MemoryCache(ResultCache):
    """In-process dict cache.

    Values are returned by reference -- treat cached results as
    immutable.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._data)

    def _load(self, key: str) -> Tuple[bool, Any]:
        if key in self._data:
            return True, self._data[key]
        return False, None

    def _store(self, key: str, value: Any) -> None:
        self._data[key] = value


# -- tagged JSON <-> value codec (ndarrays split into the npz sidecar) ------

def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, complex):
        return {"__complex__": [value.real, value.imag]}
    if isinstance(value, np.generic):
        return _encode(value.item(), arrays)
    if isinstance(value, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = value
        return {"__npz__": name}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v, arrays) for v in value]}
    if isinstance(value, (list,)):
        return [_encode(v, arrays) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: _encode(v, arrays) for k, v in value.items()}
        return {"__items__": [[_encode(k, arrays), _encode(v, arrays)]
                              for k, v in value.items()]}
    raise TypeError(f"cannot persist value of type {type(value).__name__!r} "
                    "to the disk cache; return JSON-compatible structures, "
                    "tuples, complex numbers or numpy arrays")


def _decode(node: Any, arrays: Optional[Any]) -> Any:
    if isinstance(node, list):
        return [_decode(v, arrays) for v in node]
    if isinstance(node, dict):
        if "__complex__" in node and len(node) == 1:
            real, imag = node["__complex__"]
            return complex(real, imag)
        if "__tuple__" in node and len(node) == 1:
            return tuple(_decode(v, arrays) for v in node["__tuple__"])
        if "__items__" in node and len(node) == 1:
            return {_freeze(_decode(k, arrays)): _decode(v, arrays)
                    for k, v in node["__items__"]}
        if "__npz__" in node and len(node) == 1:
            if arrays is None:
                raise KeyError("ndarray payload without npz sidecar")
            return np.asarray(arrays[node["__npz__"]])
        return {k: _decode(v, arrays) for k, v in node.items()}
    return node


def _freeze(key: Any) -> Any:
    """Dict keys must be hashable: lists decoded from JSON -> tuples."""
    if isinstance(key, list):
        return tuple(_freeze(k) for k in key)
    return key


class DiskCache(ResultCache):
    """Persistent cache under ``root`` (default ``.repro_cache/``).

    Parameters
    ----------
    root:
        Cache directory; created on first write.
    salt:
        Namespace sub-directory.  Defaults to the package code-version
        salt so results cached by one version of the code are never
        served to another.
    """

    _KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")

    def __init__(self, root: str = DEFAULT_CACHE_ROOT,
                 salt: Optional[str] = None) -> None:
        super().__init__()
        if salt is None:
            from .spec import default_salt

            salt = default_salt()
        self.root = root
        self.salt = salt
        safe_salt = re.sub(r"[^A-Za-z0-9._-]", "_", salt)
        self.directory = os.path.join(root, safe_salt)

    def _paths(self, key: str) -> Tuple[str, str]:
        if not self._KEY_RE.match(key):
            raise ValueError(f"malformed cache key {key!r}")
        shard = os.path.join(self.directory, key[:2])
        return (os.path.join(shard, key + ".json"),
                os.path.join(shard, key + ".npz"))

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.directory):
            count += sum(1 for f in filenames if f.endswith(".json"))
        return count

    def _load(self, key: str) -> Tuple[bool, Any]:
        json_path, npz_path = self._paths(key)
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return False, None  # no entry: a plain miss
        bytes_read = len(text)
        try:
            document = json.loads(text)
            arrays = None
            if document.get("arrays"):
                bytes_read += os.path.getsize(npz_path)
                with np.load(npz_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = _decode(document["value"], arrays)
        except (OSError, ValueError, KeyError) as exc:
            # Corrupt or half-written entry: a miss, not an error.
            _LOG.warning("corrupt cache entry %s: %s: %s", key,
                         type(exc).__name__, exc)
            if obs.enabled():
                obs.counter("cache.corrupt").inc()
            return False, None
        if obs.enabled():
            obs.counter("cache.bytes_read").inc(bytes_read)
        return True, value

    def _store(self, key: str, value: Any) -> None:
        json_path, npz_path = self._paths(key)
        arrays: Dict[str, np.ndarray] = {}
        payload = _encode(value, arrays)
        document = {"key": key, "salt": self.salt,
                    "arrays": sorted(arrays), "value": payload}
        os.makedirs(os.path.dirname(json_path), exist_ok=True)
        if arrays:
            self._atomic_write(npz_path, lambda fh: np.savez(fh, **arrays))
        self._atomic_write(
            json_path,
            lambda fh: fh.write(json.dumps(document).encode("utf-8")))
        if obs.enabled():
            written = os.path.getsize(json_path)
            if arrays:
                written += os.path.getsize(npz_path)
            obs.counter("cache.bytes_written").inc(written)

    @staticmethod
    def _atomic_write(path: str, writer) -> None:
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   prefix=".tmp-", suffix=".part")
        try:
            with os.fdopen(fd, "wb") as handle:
                writer(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
