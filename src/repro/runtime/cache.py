"""Pluggable result caches keyed by :meth:`JobSpec.key` digests.

Two stores are provided:

* :class:`MemoryCache` -- a per-process dict, for benches and tests;
* :class:`DiskCache` -- an on-disk store under ``.repro_cache/`` that
  survives processes.  Each value is a JSON document; numpy arrays are
  split out into an ``.npz`` sidecar so large fields stay binary.

Both count hits, misses and writes (:class:`CacheStats`), which the
:class:`~repro.runtime.report.RunReport` telemetry surfaces.

Disk layout::

    .repro_cache/
      <salt>/                 # one namespace per code-version salt
        ab/                   # first two hex digits of the key
          <key>.json          # tagged-JSON payload
          <key>.npz           # ndarray sidecar (only when needed)

Corrupt or half-written entries are treated as misses, never errors:
writes go through a temp file + ``os.replace`` (:func:`atomic_write`)
so concurrent sweeps on the same cache directory are safe.

Long-lived consumers (``python -m repro serve``) keep the store from
growing unboundedly with :func:`prune_cache` / :meth:`DiskCache.prune`
-- mtime-LRU eviction down to a byte budget; reads touch the entry's
mtime so recently-served results survive a prune.  ``python -m repro
cache stats|prune`` exposes both from the command line.
"""

from __future__ import annotations

import contextlib
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: store() falls back to rename-only safety
    fcntl = None  # type: ignore[assignment]

import numpy as np

from .. import obs
from ..errors import CacheCorrupt
from ..resilience import faults

DEFAULT_CACHE_ROOT = ".repro_cache"

#: Namespace directory (under the cache root) holding quarantined
#: corrupt entries; excluded from scans, stats and pruning.
QUARANTINE_DIR = "quarantine"

_LOG = obs.get_logger("runtime.cache")


def atomic_write(path: str, writer: Callable[[Any], Any]) -> None:
    """Write a file atomically: temp file in the same directory, then
    ``os.replace``.  A reader never sees a half-written file and a
    killed writer leaves at worst an orphaned ``.tmp-*.part``."""
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(os.path.abspath(path)),
                               prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Corrupt entries moved aside (DiskCache only).
    quarantined: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> Dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "quarantined": self.quarantined,
                "hit_rate": self.hit_rate}


class ResultCache:
    """Interface: ``get`` -> (found, value), ``put``, ``stats``."""

    def __init__(self) -> None:
        self.stats = CacheStats()

    def get(self, key: str) -> Tuple[bool, Any]:
        found, value = self._load(key)
        if found:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        if obs.enabled():
            obs.counter("cache.hit" if found else "cache.miss").inc()
        return found, value

    def put(self, key: str, value: Any) -> None:
        self._store(key, value)
        self.stats.writes += 1
        if obs.enabled():
            obs.counter("cache.write").inc()

    def __contains__(self, key: str) -> bool:
        found, _ = self._load(key)
        return found

    # Subclass surface ------------------------------------------------------

    def _load(self, key: str) -> Tuple[bool, Any]:
        raise NotImplementedError

    def _store(self, key: str, value: Any) -> None:
        raise NotImplementedError


class MemoryCache(ResultCache):
    """In-process dict cache.

    Values are returned by reference -- treat cached results as
    immutable.
    """

    def __init__(self) -> None:
        super().__init__()
        self._data: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._data)

    def _load(self, key: str) -> Tuple[bool, Any]:
        if key in self._data:
            return True, self._data[key]
        return False, None

    def _store(self, key: str, value: Any) -> None:
        self._data[key] = value


# -- tagged JSON <-> value codec (ndarrays split into the npz sidecar) ------

def _encode(value: Any, arrays: Dict[str, np.ndarray]) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, complex):
        return {"__complex__": [value.real, value.imag]}
    if isinstance(value, np.generic):
        return _encode(value.item(), arrays)
    if isinstance(value, np.ndarray):
        name = f"a{len(arrays)}"
        arrays[name] = value
        return {"__npz__": name}
    if isinstance(value, tuple):
        return {"__tuple__": [_encode(v, arrays) for v in value]}
    if isinstance(value, (list,)):
        return [_encode(v, arrays) for v in value]
    if isinstance(value, dict):
        if all(isinstance(k, str) for k in value):
            return {k: _encode(v, arrays) for k, v in value.items()}
        return {"__items__": [[_encode(k, arrays), _encode(v, arrays)]
                              for k, v in value.items()]}
    raise TypeError(f"cannot persist value of type {type(value).__name__!r} "
                    "to the disk cache; return JSON-compatible structures, "
                    "tuples, complex numbers or numpy arrays")


def _decode(node: Any, arrays: Optional[Any]) -> Any:
    if isinstance(node, list):
        return [_decode(v, arrays) for v in node]
    if isinstance(node, dict):
        if "__complex__" in node and len(node) == 1:
            real, imag = node["__complex__"]
            return complex(real, imag)
        if "__tuple__" in node and len(node) == 1:
            return tuple(_decode(v, arrays) for v in node["__tuple__"])
        if "__items__" in node and len(node) == 1:
            return {_freeze(_decode(k, arrays)): _decode(v, arrays)
                    for k, v in node["__items__"]}
        if "__npz__" in node and len(node) == 1:
            if arrays is None:
                raise KeyError("ndarray payload without npz sidecar")
            return np.asarray(arrays[node["__npz__"]])
        return {k: _decode(v, arrays) for k, v in node.items()}
    return node


def _freeze(key: Any) -> Any:
    """Dict keys must be hashable: lists decoded from JSON -> tuples."""
    if isinstance(key, list):
        return tuple(_freeze(k) for k in key)
    return key


class DiskCache(ResultCache):
    """Persistent cache under ``root`` (default ``.repro_cache/``).

    Parameters
    ----------
    root:
        Cache directory; created on first write.
    salt:
        Namespace sub-directory.  Defaults to the package code-version
        salt so results cached by one version of the code are never
        served to another.
    """

    _KEY_RE = re.compile(r"^[0-9a-f]{8,64}$")

    def __init__(self, root: str = DEFAULT_CACHE_ROOT,
                 salt: Optional[str] = None) -> None:
        super().__init__()
        if salt is None:
            from .spec import default_salt

            salt = default_salt()
        self.root = root
        self.salt = salt
        safe_salt = re.sub(r"[^A-Za-z0-9._-]", "_", salt)
        self.directory = os.path.join(root, safe_salt)
        self.quarantine_directory = os.path.join(
            root, QUARANTINE_DIR, safe_salt)

    def _paths(self, key: str) -> Tuple[str, str]:
        if not self._KEY_RE.match(key):
            raise ValueError(f"malformed cache key {key!r}")
        shard = os.path.join(self.directory, key[:2])
        return (os.path.join(shard, key + ".json"),
                os.path.join(shard, key + ".npz"))

    def __len__(self) -> int:
        count = 0
        for _dirpath, _dirnames, filenames in os.walk(self.directory):
            count += sum(1 for f in filenames if f.endswith(".json"))
        return count

    def _load(self, key: str) -> Tuple[bool, Any]:
        json_path, npz_path = self._paths(key)
        if faults.active():
            faults.trip("cache.load")
        try:
            with open(json_path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            return False, None  # no entry: a plain miss
        bytes_read = len(text)
        try:
            document = json.loads(text)
            arrays = None
            if document.get("arrays"):
                bytes_read += os.path.getsize(npz_path)
                with np.load(npz_path) as npz:
                    arrays = {name: npz[name] for name in npz.files}
            value = _decode(document["value"], arrays)
        except (OSError, ValueError, KeyError) as exc:
            # Corrupt or half-written entry: a miss for the caller, but
            # the damaged files are preserved under quarantine/ for
            # post-mortem instead of being recomputed over silently.
            corrupt = CacheCorrupt(key, f"{type(exc).__name__}: {exc}")
            _LOG.warning("%s; quarantining", corrupt)
            if obs.enabled():
                obs.counter("cache.corrupt").inc()
            self._quarantine(key, json_path, npz_path)
            return False, None
        try:
            # Touch the entry so mtime-LRU pruning keeps hot results.
            os.utime(json_path)
        except OSError:
            pass
        if obs.enabled():
            obs.counter("cache.bytes_read").inc(bytes_read)
        return True, value

    def _quarantine(self, key: str, json_path: str,
                    npz_path: str) -> None:
        """Move a corrupt entry's files into the quarantine namespace."""
        os.makedirs(self.quarantine_directory, exist_ok=True)
        moved = 0
        for path in (json_path, npz_path):
            target = os.path.join(self.quarantine_directory,
                                  os.path.basename(path))
            try:
                os.replace(path, target)
                moved += 1
            except OSError:
                pass  # sidecar absent, or a concurrent reader moved it
        if moved:
            self.stats.quarantined += 1
            if obs.enabled():
                obs.counter("cache.quarantined").inc()

    @contextlib.contextmanager
    def _store_lock(self, json_path: str) -> Iterator[None]:
        """Serialize writers of one key across *processes*.

        Two cluster workers (or prefork serve children) materialising
        the same key used to race: each wrote its own temp files and
        the renames interleaved, briefly pairing one writer's ``.json``
        with the other's ``.npz`` sidecar -- a decode failure the
        quarantine counted as a loss.  An ``fcntl.flock`` on a 0-byte
        ``<key>.lock`` beside the entry makes the whole
        npz-then-json sequence exclusive.  The lock file is invisible
        to :func:`scan_cache` (it only looks at ``.json``) and inert
        where ``fcntl`` does not exist (Windows), which degrades to
        the old rename-only behaviour.
        """
        if fcntl is None:
            yield
            return
        lock_path = json_path[:-len(".json")] + ".lock"
        handle = open(lock_path, "a+b")
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    def _store(self, key: str, value: Any) -> None:
        json_path, npz_path = self._paths(key)
        corrupt_fault = None
        if faults.active():
            corrupt_fault = faults.trip("cache.store")
        arrays: Dict[str, np.ndarray] = {}
        payload = _encode(value, arrays)
        document = {"key": key, "salt": self.salt,
                    "arrays": sorted(arrays), "value": payload}
        os.makedirs(os.path.dirname(json_path), exist_ok=True)
        text = json.dumps(document).encode("utf-8")
        if corrupt_fault is not None and corrupt_fault.kind == "corrupt":
            text = text[:max(1, len(text) // 2)]  # torn write
        with self._store_lock(json_path):
            if arrays:
                atomic_write(npz_path, lambda fh: np.savez(fh, **arrays))
            atomic_write(json_path, lambda fh: fh.write(text))
        if obs.enabled():
            written = os.path.getsize(json_path)
            if arrays:
                written += os.path.getsize(npz_path)
            obs.counter("cache.bytes_written").inc(written)

    # Kept as a method alias: external writers of cache-adjacent
    # artifacts used this before atomic_write became module-level.
    _atomic_write = staticmethod(atomic_write)

    def usage(self) -> "CacheUsage":
        """On-disk footprint of this cache's salt namespace."""
        return cache_stats(self.root, salts=[os.path.basename(
            self.directory)])

    def prune(self, max_bytes: int) -> "PruneResult":
        """mtime-LRU eviction of this salt namespace down to
        ``max_bytes`` (see :func:`prune_cache`)."""
        return prune_cache(self.root, max_bytes,
                           salts=[os.path.basename(self.directory)])


# -- maintenance: usage accounting and mtime-LRU pruning --------------------

@dataclass
class CacheEntry:
    """One on-disk result: the JSON document plus its npz sidecar."""

    key: str
    salt_dir: str               # namespace directory name under root
    json_path: str
    npz_path: Optional[str]     # None when the entry has no sidecar
    size_bytes: int             # json + sidecar
    mtime: float                # of the JSON document (touched on read)

    @property
    def paths(self) -> List[str]:
        return [self.json_path] + ([self.npz_path] if self.npz_path else [])


@dataclass
class CacheUsage:
    """Aggregate on-disk cache footprint (``repro cache stats``)."""

    root: str
    entries: int = 0
    total_bytes: int = 0
    by_salt: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: (entries, bytes) per salt namespace.
    quarantined: int = 0
    #: Corrupt entries parked under ``quarantine/`` (JSON documents).

    def as_dict(self) -> Dict[str, Any]:
        return {"root": self.root, "entries": self.entries,
                "total_bytes": self.total_bytes,
                "quarantined": self.quarantined,
                "by_salt": {salt: {"entries": n, "bytes": size}
                            for salt, (n, size) in
                            sorted(self.by_salt.items())}}


@dataclass
class PruneResult:
    """Outcome of one :func:`prune_cache` pass."""

    scanned: int = 0
    removed: int = 0
    freed_bytes: int = 0
    kept: int = 0
    kept_bytes: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"scanned": self.scanned, "removed": self.removed,
                "freed_bytes": self.freed_bytes, "kept": self.kept,
                "kept_bytes": self.kept_bytes}


def scan_cache(root: str = DEFAULT_CACHE_ROOT,
               salts: Optional[List[str]] = None) -> List[CacheEntry]:
    """Enumerate cache entries under ``root`` (all salt namespaces, or
    the named subset).  Orphaned temp files and sidecars without their
    JSON document are ignored; a vanished file mid-scan is skipped."""
    entries: List[CacheEntry] = []
    try:
        namespaces = sorted(os.listdir(root))
    except OSError:
        return entries
    for salt_dir in namespaces:
        if salt_dir == QUARANTINE_DIR:
            continue  # quarantined entries are not servable results
        if salts is not None and salt_dir not in salts:
            continue
        directory = os.path.join(root, salt_dir)
        if not os.path.isdir(directory):
            continue
        for dirpath, _dirnames, filenames in os.walk(directory):
            for name in filenames:
                if not name.endswith(".json"):
                    continue
                json_path = os.path.join(dirpath, name)
                npz_path: Optional[str] = os.path.join(
                    dirpath, name[:-len(".json")] + ".npz")
                try:
                    stat = os.stat(json_path)
                    size = stat.st_size
                    if os.path.exists(npz_path):
                        size += os.path.getsize(npz_path)
                    else:
                        npz_path = None
                except OSError:
                    continue  # deleted under us (concurrent prune)
                entries.append(CacheEntry(
                    key=name[:-len(".json")], salt_dir=salt_dir,
                    json_path=json_path, npz_path=npz_path,
                    size_bytes=size, mtime=stat.st_mtime))
    return entries


def cache_stats(root: str = DEFAULT_CACHE_ROOT,
                salts: Optional[List[str]] = None) -> CacheUsage:
    """Entry count and byte footprint of the on-disk cache."""
    usage = CacheUsage(root=root)
    for entry in scan_cache(root, salts=salts):
        usage.entries += 1
        usage.total_bytes += entry.size_bytes
        n, size = usage.by_salt.get(entry.salt_dir, (0, 0))
        usage.by_salt[entry.salt_dir] = (n + 1, size + entry.size_bytes)
    usage.quarantined = count_quarantined(root, salts=salts)
    return usage


def count_quarantined(root: str = DEFAULT_CACHE_ROOT,
                      salts: Optional[List[str]] = None) -> int:
    """Number of quarantined entries (JSON documents) under ``root``."""
    base = os.path.join(root, QUARANTINE_DIR)
    count = 0
    try:
        namespaces = sorted(os.listdir(base))
    except OSError:
        return 0
    for salt_dir in namespaces:
        if salts is not None and salt_dir not in salts:
            continue
        directory = os.path.join(base, salt_dir)
        if not os.path.isdir(directory):
            continue
        for _dirpath, _dirnames, filenames in os.walk(directory):
            count += sum(1 for f in filenames if f.endswith(".json"))
    return count


def prune_cache(root: str = DEFAULT_CACHE_ROOT,
                max_bytes: int = 0,
                salts: Optional[List[str]] = None) -> PruneResult:
    """Evict least-recently-used entries until ``root`` holds at most
    ``max_bytes``.

    "Recently used" is the JSON document's mtime: :class:`DiskCache`
    touches it on every hit, so the eviction order is true LRU, not
    insertion order.  ``max_bytes=0`` empties the cache.  Safe against
    concurrent readers (they treat a vanished entry as a miss) and
    concurrent pruners (already-deleted files are skipped).
    """
    entries = scan_cache(root, salts=salts)
    result = PruneResult(scanned=len(entries))
    total = sum(e.size_bytes for e in entries)
    for entry in sorted(entries, key=lambda e: e.mtime):
        if total <= max_bytes:
            break
        freed = 0
        for path in entry.paths:
            try:
                size = os.path.getsize(path)
                os.unlink(path)
                freed += size
            except OSError:
                pass  # concurrent prune got it first
        try:  # the 0-byte store-lock file, when one was ever taken
            os.unlink(entry.json_path[:-len(".json")] + ".lock")
        except OSError:
            pass
        total -= entry.size_bytes
        result.removed += 1
        result.freed_bytes += freed
    result.kept = result.scanned - result.removed
    result.kept_bytes = max(0, total)
    if obs.enabled() and result.removed:
        obs.counter("cache.pruned").inc(result.removed)
        obs.counter("cache.pruned_bytes").inc(result.freed_bytes)
    _LOG.info("pruned %d of %d entries (%d bytes freed)",
              result.removed, result.scanned, result.freed_bytes)
    return result
