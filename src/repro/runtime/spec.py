"""Declarative job specifications with content-addressed keys.

A :class:`JobSpec` names *what* to compute -- a callable reference plus
a parameter mapping -- without computing it.  Its :meth:`JobSpec.key`
is a deterministic SHA-256 digest of the canonicalised (function,
params, salt) triple, so the same experiment requested twice (in the
same process, another process, or another machine) maps to the same
cache entry, and any parameter change maps to a different one.

The salt defaults to the package version: bumping ``repro.__version__``
invalidates every cached result at once, which is the coarse but safe
answer to "the code changed under the cache".
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import numbers
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Union

import numpy as np


def default_salt() -> str:
    """Code-version salt mixed into every job key."""
    from .. import __version__

    return f"repro-{__version__}"


def callable_ref(fn: Callable) -> Optional[str]:
    """``"module:qualname"`` for a module-level callable, else None.

    Lambdas, closures (``<locals>`` in the qualname) and ``__main__``
    functions are not addressable by name from a worker process, so
    they get no reference -- the executor runs them in-process instead.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or module == "__main__":
        return None
    return f"{module}:{qualname}"


def resolve_ref(ref: str) -> Callable:
    """Import the callable named by a ``"module:qualname"`` reference."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise ValueError(f"malformed callable reference {ref!r}; "
                         "expected 'module:qualname'")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise TypeError(f"{ref!r} resolved to non-callable {obj!r}")
    return obj


def _canonicalize(obj: Any) -> Any:
    """Reduce a parameter value to deterministic pure-JSON structure.

    Tuples and lists collapse to lists, numpy scalars to Python
    scalars, arrays and complex numbers to tagged dicts, dataclasses to
    their field dict.  Anything else is rejected so an unhashable
    parameter fails loudly at submission instead of silently producing
    an unstable key.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, numbers.Integral):
        return int(obj)
    if isinstance(obj, numbers.Real):
        return float(obj)
    if isinstance(obj, numbers.Complex):
        return {"__complex__": [float(obj.real), float(obj.imag)]}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype),
                "shape": list(obj.shape)}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {"__dataclass__": type(obj).__qualname__,
                "fields": _canonicalize(dataclasses.asdict(obj))}
    if isinstance(obj, Mapping):
        if all(isinstance(k, str) for k in obj):
            return {k: _canonicalize(v) for k, v in obj.items()}
        items = [[_canonicalize(k), _canonicalize(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True,
                                             default=str))
        return {"__items__": items}
    if isinstance(obj, (list, tuple, set, frozenset)):
        seq = [_canonicalize(v) for v in obj]
        if isinstance(obj, (set, frozenset)):
            seq.sort(key=lambda v: json.dumps(v, sort_keys=True, default=str))
        return seq
    raise TypeError(
        f"job parameter of type {type(obj).__name__!r} is not "
        "canonicalisable; use JSON-compatible values, numpy arrays or "
        "dataclasses")


def canonical_json(obj: Any) -> str:
    """Canonical JSON text of a parameter structure (sorted, compact)."""
    return json.dumps(_canonicalize(obj), sort_keys=True,
                      separators=(",", ":"))


def job_key(ref: str, params: Mapping, salt: Optional[str] = None) -> str:
    """SHA-256 content key of a (callable ref, params, salt) triple."""
    if salt is None:
        salt = default_salt()
    payload = canonical_json({"fn": ref, "params": dict(params),
                              "salt": salt})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One unit of work: a callable reference plus keyword parameters.

    Parameters
    ----------
    fn:
        Either a ``"module:qualname"`` string or a callable.  A
        module-level callable is converted to its reference so the job
        can ship to a worker process; lambdas and closures stay
        in-process (the executor degrades them to serial execution).
    params:
        Keyword arguments for the callable.  Must canonicalise (see
        :func:`canonical_json`): plain JSON values, numpy scalars /
        arrays, tuples and dataclasses are all fine.
    label:
        Optional human-readable name used in telemetry.
    """

    fn: Union[str, Callable]
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    @property
    def ref(self) -> Optional[str]:
        """``"module:qualname"`` when addressable by name, else None."""
        if isinstance(self.fn, str):
            return self.fn
        return callable_ref(self.fn)

    @property
    def portable(self) -> bool:
        """True if the job can be shipped to another process.

        A string reference is trusted (it fails at execution time if
        wrong); a callable must round-trip through its reference.
        """
        if isinstance(self.fn, str):
            return True
        ref = self.ref
        if ref is None:
            return False
        try:
            return resolve_ref(ref) is self.fn
        except Exception:
            return False

    def resolve(self) -> Callable:
        """The concrete callable to invoke."""
        if callable(self.fn):
            return self.fn
        return resolve_ref(self.fn)

    @property
    def _key_ref(self) -> str:
        """Identity string used inside the key, defined for any fn."""
        ref = self.ref
        if ref is not None:
            return ref
        return (f"{getattr(self.fn, '__module__', '?')}:"
                f"{getattr(self.fn, '__qualname__', repr(self.fn))}")

    def key(self, salt: Optional[str] = None) -> str:
        """Deterministic content-addressed cache key."""
        return job_key(self._key_ref, self.params, salt)

    def seed(self, salt: Optional[str] = None, stream: int = 0) -> int:
        """A 64-bit RNG seed derived from the job key.

        Jobs with stochastic physics (thermal field, edge roughness)
        should seed their generators from this so a cached result and a
        recomputed one are bit-identical across processes.  See
        :func:`repro.micromag.fields.thermal.seed_from_key`.
        """
        from ..micromag.fields.thermal import seed_from_key

        return seed_from_key(self.key(salt), stream=stream)

    @property
    def display_label(self) -> str:
        """Telemetry name: explicit label, else the callable reference."""
        return self.label or self._key_ref

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)
