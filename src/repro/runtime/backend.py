"""Pluggable execution backends for the :class:`Executor`.

The executor owns the *policy* around a batch of jobs -- cache lookups,
write-through commits, journalling, retries, telemetry -- while an
:class:`ExecutorBackend` owns the *mechanism* that actually runs the
cache misses.  Two backends ship with the package:

* :class:`LocalPoolBackend` -- the reference implementation and the
  default: a ``ProcessPoolExecutor`` on this machine for portable
  jobs, with graceful degradation to serial in-process execution
  (exactly the behaviour the executor had before the protocol was
  extracted);
* :class:`repro.cluster.TcpClusterBackend` -- ships jobs to a
  coordinator over TCP, which shards them across ``python -m repro
  worker`` processes on any number of hosts (see ``docs/CLUSTER.md``).

Any future backend (asyncio in-process, subprocess-over-ssh, a batch
scheduler) plugs in by implementing :meth:`ExecutorBackend.execute`
and passing the backend-conformance suite in
``tests/test_cluster.py::BackendContract``: same sweep, bit-identical
results, identical cache-hit accounting.

:func:`create_backend` resolves a backend *description* -- ``None`` or
``"local"`` for the pool, a ``tcp://host:port`` URL for the cluster --
which is how ``python -m repro sweep --backend ...`` and
``repro serve --backend ...`` pick theirs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .. import obs
from ..errors import ClusterConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .executor import Executor, JobOutcome
    from .spec import JobSpec

_LOG = obs.get_logger("runtime.backend")

#: (index into the submitted batch, spec, content key) -- the unit of
#: work a backend receives after the executor's cache pass.
PendingJob = Tuple[int, "JobSpec", str]


class ExecutorBackend:
    """Interface every execution backend implements.

    A backend receives the batch's cache *misses* and must fill
    ``outcomes[index]`` with a :class:`~repro.runtime.executor.JobOutcome`
    for every pending job -- successful, failed-after-retries, or
    degraded, but never missing -- committing each one through
    ``executor._commit`` the moment it is known so write-through
    caching and journalling hold under any backend.
    """

    #: Telemetry name ("local-pool", "tcp", ...).
    name = "backend"

    def execute(self, executor: "Executor", pending: List[PendingJob],
                outcomes: List[Optional["JobOutcome"]]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (connections, pools); idempotent."""

    def describe(self) -> str:
        """Human-readable identity for logs and ``RunReport``s."""
        return self.name


class LocalPoolBackend(ExecutorBackend):
    """The single-host reference backend: process pool + serial fallback.

    Portable jobs fan out over a ``ProcessPoolExecutor`` sized by
    ``executor.workers``; non-portable jobs (lambdas, closures) and any
    jobs the pool cannot take (spawn failure, broken pool, unpicklable
    results) run serially in-process.  Retries, timeouts and backoff
    are handled inside the executor's pool/serial paths.
    """

    name = "local-pool"

    def execute(self, executor: "Executor", pending: List[PendingJob],
                outcomes: List[Optional["JobOutcome"]]) -> None:
        serial_jobs = pending
        if executor.workers > 1:
            pool_jobs = [job for job in pending if job[1].portable]
            serial_jobs = [job for job in pending if not job[1].portable]
            if serial_jobs:
                _LOG.debug("%d non-portable job(s) stay in-process",
                           len(serial_jobs))
            degraded = executor._run_pool(pool_jobs, outcomes)
            if degraded:
                _LOG.warning("pool degraded: %d job(s) fall back to "
                             "serial execution", len(degraded))
                if obs.enabled():
                    obs.counter("executor.fallback_serial").inc(
                        len(degraded))
            serial_jobs += degraded

        for index, spec, key in serial_jobs:
            outcomes[index] = executor._run_serial(spec, key)
            executor._commit(outcomes[index])


def create_backend(description: Optional[str] = None,
                   secret: Optional[str] = None,
                   tls: Optional[object] = None) -> ExecutorBackend:
    """Resolve a backend description into a backend instance.

    ``None`` or ``"local"`` build the :class:`LocalPoolBackend`; a
    ``tcp://host:port`` URL builds a
    :class:`repro.cluster.TcpClusterBackend` against that coordinator
    (``secret`` overrides the shared-secret resolution, ``tls`` is an
    optional :class:`repro.cluster.TlsConfig`; see
    ``docs/CLUSTER.md``).  Anything else raises
    :class:`~repro.errors.ClusterConfigError` -- a typed error, not a
    socket traceback.
    """
    if description is None or description == "local":
        return LocalPoolBackend()
    if description.startswith("tcp://"):
        from ..cluster import TcpClusterBackend

        return TcpClusterBackend(description, secret=secret, tls=tls)
    raise ClusterConfigError(
        f"unknown executor backend {description!r}; expected 'local' "
        "or a 'tcp://host:port' coordinator URL")
