"""Asyncio bridge onto the blocking :class:`Executor`.

The orchestration engine is deliberately synchronous -- ``Executor.run``
blocks until the batch is done, which is the right shape for sweeps and
benches.  A long-lived asyncio application (the gate-evaluation service
in :mod:`repro.serve`) must not block its event loop on a solver run,
so these helpers hand the call to a thread and suspend the coroutine
until it returns.

Thread-safety notes: each ``Executor.run`` call builds its own report
and (if needed) its own process pool, so concurrent calls from several
bridge threads are independent.  The caches are shared and safe --
``DiskCache`` writes are atomic (temp file + ``os.replace``) and
``MemoryCache`` is a plain dict under the GIL.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, Sequence

from .executor import Executor, JobOutcome, RunResult
from .spec import JobSpec

__all__ = ["run_async", "submit_async"]


async def run_async(executor: Executor, specs: Sequence[JobSpec],
                    pool: Optional[Any] = None) -> RunResult:
    """Run a batch on ``executor`` without blocking the event loop.

    The blocking :meth:`Executor.run` is dispatched to ``pool`` (a
    ``concurrent.futures.Executor``; None means the loop's default
    thread pool) and awaited.  Cancelling the coroutine abandons the
    wait but cannot abort the already-running batch -- the same
    semantics as the executor's own timeout handling.
    """
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(pool, executor.run, list(specs))


async def submit_async(executor: Executor, spec: JobSpec,
                       pool: Optional[Any] = None) -> JobOutcome:
    """Run a single spec through the bridge; returns its outcome."""
    result = await run_async(executor, [spec], pool=pool)
    return result.outcomes[0]
