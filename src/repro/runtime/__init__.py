"""repro.runtime: parallel experiment orchestration with caching.

Every validation tier of this reproduction -- the analytic network
gates, the FDTD field maps, the micromagnetic LLG runs, the circuit
sweeps -- ultimately evaluates grids of independent cases (the paper's
Tables I and II are literally one MuMax3 run per input combination).
This subsystem turns such grids into declarative jobs:

* :class:`JobSpec` -- a callable reference plus parameters, hashed to
  a deterministic content-addressed key;
* :class:`ResultCache` / :class:`MemoryCache` / :class:`DiskCache` --
  pluggable result stores (the disk store lives under
  ``.repro_cache/``, namespaced by a code-version salt) with hit/miss
  accounting;
* :class:`Executor` -- fans jobs out over a process pool with per-job
  timeouts, bounded retries with backoff, and graceful degradation to
  serial in-process execution;
* :class:`RunReport` -- per-job telemetry (wall time, cache hits,
  retries, failures), printable as a table or dumpable as JSON.

Quickstart
----------
>>> from repro.runtime import Executor, JobSpec, MemoryCache
>>> from repro.runtime.jobs import gate_design_point
>>> ex = Executor(workers=4, cache=MemoryCache())
>>> result = ex.map(gate_design_point,
...                 [{"wavelength_nm": w} for w in (40, 55, 80)])
>>> [v["logic_ok"] for v in result.values]
[True, True, True]
>>> result.report.hit_rate            # second run would be 1.0
0.0

See ``docs/RUNTIME.md`` for the job model and the cache layout.
"""

from .aio import run_async, submit_async
from .backend import ExecutorBackend, LocalPoolBackend, create_backend
from .cache import (
    DEFAULT_CACHE_ROOT,
    QUARANTINE_DIR,
    CacheStats,
    CacheUsage,
    DiskCache,
    MemoryCache,
    PruneResult,
    ResultCache,
    atomic_write,
    cache_stats,
    count_quarantined,
    prune_cache,
    scan_cache,
)
from .executor import (
    Executor,
    JobFailed,
    JobOutcome,
    JobTimeout,
    RunResult,
    backoff_delay,
)
from .report import JobRecord, RunReport
from .spec import JobSpec, callable_ref, canonical_json, job_key, resolve_ref

__all__ = [
    "CacheStats",
    "CacheUsage",
    "DEFAULT_CACHE_ROOT",
    "DiskCache",
    "Executor",
    "ExecutorBackend",
    "JobFailed",
    "JobOutcome",
    "JobRecord",
    "JobSpec",
    "JobTimeout",
    "LocalPoolBackend",
    "MemoryCache",
    "PruneResult",
    "QUARANTINE_DIR",
    "ResultCache",
    "RunReport",
    "RunResult",
    "atomic_write",
    "backoff_delay",
    "cache_stats",
    "count_quarantined",
    "callable_ref",
    "canonical_json",
    "create_backend",
    "job_key",
    "prune_cache",
    "resolve_ref",
    "run_async",
    "scan_cache",
    "submit_async",
]
