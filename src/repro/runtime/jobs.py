"""Portable job functions for the orchestration engine.

Jobs submitted to worker processes must be module-level callables with
JSON-canonicalisable parameters and picklable (ideally JSON-shaped)
return values.  This module collects the reusable ones behind the CLI,
the benchmarks and the examples; gate truth-table jobs live next to
the experiments they drive
(:func:`repro.micromag.experiments.run_gate_case`).
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

__all__ = ["gate_design_point", "phase_noise_error_rate"]


def gate_design_point(wavelength_nm: float) -> Dict[str, Any]:
    """Evaluate one triangle-MAJ3 design point on the paper's film.

    Derives the full dimension set, the dispersion operating point and
    the loss margin at ``wavelength_nm``, then runs the 8-pattern truth
    table through the damping-calibrated network model.  One job per
    candidate wavelength makes the design-space sweep embarrassingly
    parallel (``examples/design_explorer.py``).
    """
    from ..core import TriangleMajorityGate, paper_maj3_dimensions
    from ..core.logic import input_patterns
    from ..physics import FECOB, DispersionRelation, FilmStack, from_dispersion

    lam = wavelength_nm * 1e-9
    film = FilmStack(material=FECOB, thickness=1e-9)
    dispersion = DispersionRelation(film)
    k = 2.0 * math.pi / lam
    frequency = float(dispersion.frequency(k))
    v_g = float(dispersion.group_velocity(k))
    l_att = float(dispersion.attenuation_length(k))
    dims = paper_maj3_dimensions(wavelength=lam, width=0.9 * lam)
    # Longest path: I1 -> M -> C -> K -> B -> O.
    longest = dims.d1 + dims.stem + dims.d1 + dims.d3 + dims.d4
    attenuation = from_dispersion(dispersion, frequency)
    gate = TriangleMajorityGate(dimensions=dims, frequency=frequency,
                                attenuation=attenuation)
    logic_ok = all(gate.evaluate(bits).correct
                   for bits in input_patterns(3))
    return {
        "wavelength_nm": float(wavelength_nm),
        "frequency_ghz": frequency / 1e9,
        "group_velocity_m_s": v_g,
        "attenuation_length_um": l_att * 1e6,
        "d2_nm": dims.d2 * 1e9,
        "longest_path_nm": longest * 1e9,
        "path_over_l_att": longest / l_att,
        "logic_ok": logic_ok,
    }


def phase_noise_error_rate(sigma: float, n_trials: int = 200,
                           seed: Optional[int] = None) -> Dict[str, Any]:
    """Monte-Carlo MAJ3 decode error rate under input phase jitter.

    Bits are encoded as {0, pi} input phases with Gaussian noise of
    standard deviation ``sigma`` [rad]; every pattern is decoded
    ``n_trials`` times through the triangle network and the fraction of
    wrong O1 decisions is returned.

    The default seed is derived deterministically from the job's own
    parameters (:func:`repro.micromag.fields.thermal.seed_from_key`),
    so a cached result and a recomputation in another process are
    bit-identical.
    """
    import numpy as np

    from ..core import PhaseDetector, TriangleMajorityGate
    from ..core.logic import input_patterns, majority
    from ..micromag.fields.thermal import seed_from_key
    from ..physics import Wave

    if seed is None:
        seed = seed_from_key(f"phase-noise:sigma={sigma!r}:n={n_trials}")
    rng = np.random.default_rng(seed)
    gate = TriangleMajorityGate()
    detector = PhaseDetector()
    errors = 0
    total = 0
    for bits in input_patterns(3):
        expected = majority(*bits)
        for _ in range(n_trials):
            injections = {}
            for name, bit in zip(("I1", "I2", "I3"), bits):
                phase = (math.pi if bit else 0.0) + rng.normal(0.0, sigma)
                injections[name] = Wave(1.0, phase,
                                        gate.frequency).envelope
            env = gate.network.propagate(injections)
            decoded = detector.detect_envelope(env["O1"], gate.frequency)
            errors += decoded.logic_value != expected
            total += 1
    return {"sigma": float(sigma), "n_trials": int(n_trials),
            "seed": int(seed), "error_rate": errors / total}
