"""Magnetic material parameter sets.

The paper simulates a Fe60Co20B20 waveguide with perpendicular magnetic
anisotropy (PMA); the parameters below (``FECOB``) are quoted directly
from Section IV-A of the paper (originally from Devolder et al.,
Phys. Rev. B 93, 024420 (2016)).  A couple of other standard magnonic
materials are included for the examples and for cross-checks of the
dispersion module against literature values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..constants import GAMMA_LL, MU0


@dataclass(frozen=True)
class Material:
    """Continuum micromagnetic parameters of a ferromagnet.

    Attributes
    ----------
    name:
        Human readable identifier.
    ms:
        Saturation magnetisation [A/m].
    aex:
        Exchange stiffness [J/m].
    alpha:
        Dimensionless Gilbert damping.
    ku:
        First-order uniaxial anisotropy constant [J/m^3].  Positive with
        ``anisotropy_axis = (0, 0, 1)`` means perpendicular (out-of-plane)
        easy axis, as for the CoFeB/MgO system in the paper.
    anisotropy_axis:
        Unit vector of the uniaxial easy axis.
    gamma:
        Gyromagnetic ratio [rad/(T s)].
    """

    name: str
    ms: float
    aex: float
    alpha: float
    ku: float = 0.0
    anisotropy_axis: Tuple[float, float, float] = (0.0, 0.0, 1.0)
    gamma: float = GAMMA_LL

    def __post_init__(self) -> None:
        if self.ms <= 0:
            raise ValueError(f"saturation magnetisation must be > 0, got {self.ms}")
        if self.aex <= 0:
            raise ValueError(f"exchange stiffness must be > 0, got {self.aex}")
        if self.alpha < 0:
            raise ValueError(f"Gilbert damping must be >= 0, got {self.alpha}")
        norm = math.sqrt(sum(c * c for c in self.anisotropy_axis))
        if not math.isclose(norm, 1.0, rel_tol=1e-9):
            raise ValueError("anisotropy_axis must be a unit vector")

    # -- derived quantities -------------------------------------------------

    @property
    def exchange_length(self) -> float:
        """Magnetostatic exchange length ``sqrt(2 A / (mu0 Ms^2))`` [m].

        Finite-difference cells should not be (much) larger than this for
        the exchange field to be resolved; for the paper's CoFeB it is
        about 4.9 nm.
        """
        return math.sqrt(2.0 * self.aex / (MU0 * self.ms ** 2))

    @property
    def anisotropy_field(self) -> float:
        """Uniaxial anisotropy field ``2 Ku / (mu0 Ms)`` [A/m]."""
        return 2.0 * self.ku / (MU0 * self.ms)

    @property
    def effective_pma_field(self) -> float:
        """Net internal field for out-of-plane magnetisation [A/m].

        For a thin film magnetised out of plane the demagnetising field is
        ``-Ms``; the film stays perpendicular without external bias when
        ``anisotropy_field > Ms``, i.e. this quantity is positive.  The
        paper's FeCoB satisfies this (approximately +104 kA/m).
        """
        return self.anisotropy_field - self.ms

    @property
    def is_perpendicular(self) -> bool:
        """True if the film self-stabilises out of plane (PMA wins demag)."""
        return self.effective_pma_field > 0.0

    def with_damping(self, alpha: float) -> "Material":
        """Return a copy with a different Gilbert damping."""
        return replace(self, alpha=alpha)

    def with_ms(self, ms: float) -> "Material":
        """Return a copy with a different saturation magnetisation."""
        return replace(self, ms=ms)


#: Fe60Co20B20 parameters used in the paper (Section IV-A).
FECOB = Material(
    name="Fe60Co20B20",
    ms=1100e3,            # 1100 kA/m
    aex=18.5e-12,         # 18.5 pJ/m
    alpha=0.004,
    ku=0.832e6,           # 0.832 MJ/m^3 perpendicular anisotropy
)

#: Yttrium iron garnet -- the workhorse low-damping magnonic insulator.
YIG = Material(
    name="YIG",
    ms=140e3,
    aex=3.5e-12,
    alpha=2e-4,
)

#: Ni80Fe20 (permalloy), the classic metallic test material.
PERMALLOY = Material(
    name="Permalloy",
    ms=800e3,
    aex=13e-12,
    alpha=0.008,
)

_REGISTRY: Dict[str, Material] = {
    "fecob": FECOB,
    "fe60co20b20": FECOB,
    "yig": YIG,
    "permalloy": PERMALLOY,
    "py": PERMALLOY,
}


def get_material(name: str) -> Material:
    """Look up a material by (case-insensitive) name.

    Raises
    ------
    KeyError
        With a helpful message listing the available materials.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        available = ", ".join(sorted(set(m.name for m in _REGISTRY.values())))
        raise KeyError(f"unknown material {name!r}; available: {available}")
    return _REGISTRY[key]


def register_material(material: Material, *aliases: str) -> None:
    """Add a custom material to the registry under its name and aliases."""
    _REGISTRY[material.name.strip().lower()] = material
    for alias in aliases:
        _REGISTRY[alias.strip().lower()] = material
