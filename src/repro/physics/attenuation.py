"""Propagation-loss models for spin waves in waveguides.

The paper's energy model neglects propagation loss relative to
transducer loss (assumption (iv) of Section IV-D), but the Table I
output magnitudes clearly contain it -- minority-input cases arrive at
0.08...0.16 instead of the lossless 1/3.  This module provides the
damping-limited attenuation used by the network tier both to honour the
paper's assumption (losses off) and to calibrate the Table I band
(losses on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .dispersion import DispersionRelation


@dataclass(frozen=True)
class AttenuationModel:
    """Exponential amplitude decay plus fixed per-junction insertion loss.

    Attributes
    ----------
    decay_length:
        1/e amplitude decay length [m]; ``inf`` disables viscous loss.
    junction_loss:
        Multiplicative amplitude factor applied at each waveguide
        junction/bend (scattering into the third arm, mode mismatch).
        1.0 means lossless junctions.
    """

    decay_length: float = math.inf
    junction_loss: float = 1.0

    def __post_init__(self) -> None:
        if self.decay_length <= 0:
            raise ValueError("decay length must be positive (use inf to disable)")
        if not 0.0 < self.junction_loss <= 1.0:
            raise ValueError("junction loss factor must be in (0, 1]")

    def path_factor(self, distance: float) -> float:
        """Amplitude factor after propagating ``distance`` [m]."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        if math.isinf(self.decay_length):
            return 1.0
        return math.exp(-distance / self.decay_length)

    def through_junctions(self, count: int) -> float:
        """Amplitude factor after crossing ``count`` junctions."""
        if count < 0:
            raise ValueError("junction count must be non-negative")
        return self.junction_loss ** count


#: Lossless model -- the paper's explicit energy-evaluation assumption (iv).
LOSSLESS = AttenuationModel()


def from_dispersion(dispersion: DispersionRelation, frequency: float,
                    junction_loss: float = 1.0) -> AttenuationModel:
    """Build an attenuation model from the material's Gilbert damping.

    The decay length is ``v_g * tau`` evaluated at the operating point.
    """
    k = dispersion.wavenumber(frequency)
    return AttenuationModel(
        decay_length=float(dispersion.attenuation_length(k)),
        junction_loss=junction_loss,
    )


def calibrated_paper_model(wavelength: float = 55e-9,
                           junction_loss: Optional[float] = None) -> AttenuationModel:
    """Attenuation calibrated so the network tier lands in Table I's band.

    Table I reports minority-case outputs of 0.083-0.164 where the
    lossless three-wave superposition gives 1/3, while the unanimous
    cases stay at 1.0 after normalisation.  A per-junction amplitude
    factor of ~0.62 reproduces the paper's mid-band (two junctions
    between the farthest input and the outputs); see
    EXPERIMENTS.md for the calibration derivation.
    """
    loss = 0.62 if junction_loss is None else junction_loss
    return AttenuationModel(decay_length=math.inf, junction_loss=loss)
