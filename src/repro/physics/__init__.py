"""Analytic spin-wave physics: materials, dispersion, wave algebra, losses."""

from .materials import FECOB, PERMALLOY, YIG, Material, get_material, register_material
from .dispersion import (
    DispersionRelation,
    FilmStack,
    SpinWaveGeometry,
    dipole_form_factor,
    paper_operating_point,
)
from .waves import (
    PHASE_TOLERANCE,
    Wave,
    interference_kind,
    phase_distance,
    standing_pattern,
    superpose,
    wrap_phase,
)
from .attenuation import LOSSLESS, AttenuationModel, calibrated_paper_model, from_dispersion

__all__ = [
    "FECOB",
    "PERMALLOY",
    "YIG",
    "Material",
    "get_material",
    "register_material",
    "DispersionRelation",
    "FilmStack",
    "SpinWaveGeometry",
    "dipole_form_factor",
    "paper_operating_point",
    "PHASE_TOLERANCE",
    "Wave",
    "interference_kind",
    "phase_distance",
    "standing_pattern",
    "superpose",
    "wrap_phase",
    "LOSSLESS",
    "AttenuationModel",
    "calibrated_paper_model",
    "from_dispersion",
]
