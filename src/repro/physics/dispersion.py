"""Dipole-exchange spin-wave dispersion for thin films.

Implements the lowest-mode Kalinikos-Slavin dispersion (J. Phys. C 19,
7013 (1986)) for the three canonical geometries; the paper's triangle
gates operate with **forward volume spin waves** (FVSW, static
magnetisation out of plane) because their in-plane propagation is
isotropic -- the property the triangle layout relies on (Section II-A).

The dispersion is
``omega(k) = sqrt(Omega_a(k) * Omega_b(k))`` with

* FVSW:   ``Omega_a = omega_H + omega_M lam^2 k^2``,
          ``Omega_b = Omega_a + omega_M (1 - F(kd))`` ... NOTE below
* BVSW (backward volume, k parallel to in-plane M) and
* DE (Damon-Eshbach surface waves, k perpendicular to in-plane M)

where ``omega_H = gamma mu0 H_i`` (internal field), ``omega_M = gamma mu0
Ms``, ``lam`` the exchange length and ``F(kd) = 1 - (1 - exp(-kd))/(kd)``
the thin-film dipole form factor for the lowest thickness mode.

For FVSW the standard lowest-mode result is
``omega^2 = (omega_H + omega_M lam^2 k^2)
            (omega_H + omega_M lam^2 k^2 + omega_M F(kd))``
with ``omega_H`` built from the *internal* perpendicular field
``H_i = H_ext + H_ani - Ms`` (demag of the out-of-plane film included).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Optional

import numpy as np

from ..constants import MU0
from .materials import Material


class SpinWaveGeometry(Enum):
    """Relative orientation of wave vector and static magnetisation."""

    #: Forward volume: M out of plane, propagation isotropic in plane.
    FORWARD_VOLUME = "fvsw"
    #: Backward volume: M in plane, k parallel to M.
    BACKWARD_VOLUME = "bvsw"
    #: Damon-Eshbach surface wave: M in plane, k perpendicular to M.
    SURFACE = "de"


def dipole_form_factor(k: np.ndarray, thickness: float) -> np.ndarray:
    """Lowest-mode thin-film dipole form factor ``F(kd)``.

    ``F(kd) = 1 - (1 - exp(-|k| d)) / (|k| d)``, with the ``k -> 0``
    limit ``F -> kd/2`` handled via a series expansion to stay accurate
    and non-singular for tiny arguments.
    """
    kd = np.abs(np.asarray(k, dtype=float)) * thickness
    out = np.empty_like(kd)
    small = kd < 1e-6
    # Series: 1-(1-e^-x)/x = x/2 - x^2/6 + O(x^3)
    out[small] = kd[small] / 2.0 - kd[small] ** 2 / 6.0
    x = kd[~small]
    out[~small] = 1.0 - (1.0 - np.exp(-x)) / x
    return out


@dataclass(frozen=True)
class FilmStack:
    """A magnetic thin film with the fields needed by the dispersion.

    Attributes
    ----------
    material:
        Magnetic parameters.
    thickness:
        Film thickness [m] (1 nm in the paper).
    external_field:
        Out-of-plane (FVSW) or in-plane (BVSW/DE) bias field [A/m].
    """

    material: Material
    thickness: float
    external_field: float = 0.0

    def __post_init__(self) -> None:
        if self.thickness <= 0:
            raise ValueError("film thickness must be positive")

    @property
    def internal_field_fvsw(self) -> float:
        """Internal perpendicular field H_i = H_ext + H_ani - Ms [A/m]."""
        m = self.material
        return self.external_field + m.anisotropy_field - m.ms

    @property
    def omega_h(self) -> float:
        """gamma * mu0 * H_i [rad/s] for the FVSW configuration."""
        return self.material.gamma * MU0 * self.internal_field_fvsw

    @property
    def omega_m(self) -> float:
        """gamma * mu0 * Ms [rad/s]."""
        return self.material.gamma * MU0 * self.material.ms


class DispersionRelation:
    """Kalinikos-Slavin lowest-mode dispersion ``f(k)`` and inverses.

    Parameters
    ----------
    film:
        The film stack (material + thickness + bias).
    geometry:
        Which canonical spin-wave geometry to evaluate.

    Notes
    -----
    For the paper's PMA FeCoB film with no external field the FVSW branch
    has a positive gap (the film is perpendicular without bias), and the
    dispersion is monotonically increasing in ``|k|``, so ``k(f)`` is
    solved by bisection on a bracketed interval.
    """

    def __init__(self, film: FilmStack,
                 geometry: SpinWaveGeometry = SpinWaveGeometry.FORWARD_VOLUME):
        if geometry is SpinWaveGeometry.FORWARD_VOLUME \
                and film.internal_field_fvsw <= 0.0:
            raise ValueError(
                "FVSW requires a positive internal perpendicular field "
                f"(H_ani - Ms + H_ext = {film.internal_field_fvsw:.3g} A/m); "
                "increase the external field or pick a PMA material")
        self.film = film
        self.geometry = geometry

    # -- frequency from wavenumber ------------------------------------------

    def omega(self, k) -> np.ndarray:
        """Angular frequency [rad/s] at wavenumber ``k`` [rad/m]."""
        k = np.asarray(k, dtype=float)
        film = self.film
        lam2 = film.material.exchange_length ** 2
        wh = film.omega_h
        wm = film.omega_m
        wex = wm * lam2 * k ** 2
        f_kd = dipole_form_factor(k, film.thickness)
        if self.geometry is SpinWaveGeometry.FORWARD_VOLUME:
            a = wh + wex
            b = wh + wex + wm * f_kd
        elif self.geometry is SpinWaveGeometry.BACKWARD_VOLUME:
            # In-plane M, k || M; internal field is just the applied field.
            wh_ip = film.material.gamma * MU0 * film.external_field
            a = wh_ip + wex
            b = wh_ip + wex + wm * (1.0 - f_kd)
        elif self.geometry is SpinWaveGeometry.SURFACE:
            # Damon-Eshbach with exchange:
            # omega^2 = (wH+wex)(wH+wex+wM) + (wM/2)^2 (1 - exp(-2kd)).
            wh_ip = film.material.gamma * MU0 * film.external_field
            a = wh_ip + wex
            kd = np.abs(k) * film.thickness
            return np.sqrt(np.maximum(
                a * (a + wm) + 0.25 * wm ** 2 * (1.0 - np.exp(-2.0 * kd)),
                0.0))
        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown geometry {self.geometry}")
        return np.sqrt(np.maximum(a * b, 0.0))

    def frequency(self, k) -> np.ndarray:
        """Linear frequency f(k) [Hz]."""
        return self.omega(k) / (2.0 * math.pi)

    def frequency_at_wavelength(self, wavelength: float) -> float:
        """f for a given wavelength [m]."""
        if wavelength <= 0:
            raise ValueError("wavelength must be positive")
        return float(self.frequency(2.0 * math.pi / wavelength))

    # -- group velocity -------------------------------------------------------

    def group_velocity(self, k, dk: Optional[float] = None) -> np.ndarray:
        """``d omega / d k`` [m/s] via central differences.

        A relative step of 1e-6 of ``k`` (floored at 1 rad/m) gives ~9
        significant digits, plenty for delay estimates.
        """
        k = np.asarray(k, dtype=float)
        step = dk if dk is not None else np.maximum(np.abs(k) * 1e-6, 1.0)
        return (self.omega(k + step) - self.omega(k - step)) / (2.0 * step)

    # -- wavenumber from frequency --------------------------------------------

    def gap_frequency(self) -> float:
        """Lowest propagating frequency f(k=0) [Hz]."""
        return float(self.frequency(0.0))

    def wavenumber(self, frequency: float,
                   k_max: float = 1e10, tolerance: float = 1e-6) -> float:
        """Solve ``f(k) = frequency`` for ``k >= 0`` by bisection.

        Parameters
        ----------
        frequency:
            Target linear frequency [Hz]; must exceed the band gap.
        k_max:
            Upper bracket for the search [rad/m].
        tolerance:
            Relative tolerance on the returned wavenumber.

        Raises
        ------
        ValueError
            If the frequency is below the gap or above ``f(k_max)``.
        """
        if frequency <= self.gap_frequency():
            raise ValueError(
                f"frequency {frequency:.4g} Hz is below the spin-wave gap "
                f"{self.gap_frequency():.4g} Hz; no propagating mode")
        lo, hi = 0.0, float(k_max)
        if self.frequency(hi) < frequency:
            raise ValueError(
                f"frequency {frequency:.4g} Hz above f(k_max); raise k_max")
        while (hi - lo) > tolerance * max(hi, 1.0):
            mid = 0.5 * (lo + hi)
            if float(self.frequency(mid)) < frequency:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    def wavelength(self, frequency: float) -> float:
        """Wavelength [m] of the mode at ``frequency`` [Hz]."""
        return 2.0 * math.pi / self.wavenumber(frequency)

    # -- damping-related ------------------------------------------------------

    def lifetime(self, k) -> np.ndarray:
        """Spin-wave lifetime ``tau = 1 / (alpha omega d omega/d omega_H)``.

        We use the standard estimate ``tau ~ (alpha omega)^-1 *
        (d omega / d omega_H)^-1`` approximated by the common simplification
        ``tau = 1 / (2 pi alpha f (Omega_a + Omega_b)/(2 omega))``; for
        design purposes the leading behaviour ``tau ≈ 1/(alpha omega)``
        scaled by the ellipticity factor is sufficient.
        """
        k = np.asarray(k, dtype=float)
        w = self.omega(k)
        # d omega / d omega_H = (Omega_a + Omega_b) / (2 omega)
        film = self.film
        lam2 = film.material.exchange_length ** 2
        wex = film.omega_m * lam2 * k ** 2
        f_kd = dipole_form_factor(k, film.thickness)
        a = film.omega_h + wex
        b = a + film.omega_m * f_kd
        with np.errstate(divide="ignore"):
            deriv = (a + b) / (2.0 * np.maximum(w, 1e-30))
            tau = 1.0 / (film.material.alpha * np.maximum(w, 1e-30) * deriv)
        return tau

    def attenuation_length(self, k) -> np.ndarray:
        """Exponential amplitude decay length ``v_g * tau`` [m]."""
        return self.group_velocity(k) * self.lifetime(k)


def paper_operating_point(material: Optional[Material] = None,
                          thickness: float = 1e-9,
                          wavelength: float = 55e-9) -> dict:
    """Return the paper's design point with dispersion-derived quantities.

    The paper designs for lambda = 55 nm and quotes f = 10 GHz together
    with k = 50 rad/um; those three numbers are mutually inconsistent
    (2 pi / 55 nm = 114 rad/um).  We therefore keep the *geometric*
    wavelength of 55 nm as the ground truth for layout and report the
    dispersion-implied frequency alongside the paper's quoted one.

    Returns
    -------
    dict
        Keys: ``wavelength``, ``wavenumber``, ``frequency`` (dispersion
        implied), ``paper_frequency`` (10 GHz), ``group_velocity``,
        ``attenuation_length``, ``gap_frequency``.
    """
    from .materials import FECOB

    mat = material if material is not None else FECOB
    film = FilmStack(material=mat, thickness=thickness)
    disp = DispersionRelation(film)
    k = 2.0 * math.pi / wavelength
    return {
        "wavelength": wavelength,
        "wavenumber": k,
        "frequency": float(disp.frequency(k)),
        "paper_frequency": 10e9,
        "group_velocity": float(disp.group_velocity(k)),
        "attenuation_length": float(disp.attenuation_length(k)),
        "gap_frequency": disp.gap_frequency(),
    }
