"""Plane-wave algebra: the linear-superposition backbone of SW logic.

Spin-wave computing encodes logic values in the *phase* of coherent
waves (phase 0 -> logic 0, phase pi -> logic 1) and evaluates functions
through interference (Section II-B of the paper).  This module gives a
small, exact complex-amplitude representation of monochromatic waves on
which the gate network model (:mod:`repro.core.network`) is built.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

import numpy as np

#: Two waves are "in phase" / "out of phase" within this tolerance [rad].
PHASE_TOLERANCE = 1e-9


def wrap_phase(phase: float) -> float:
    """Wrap a phase into the half-open interval ``(-pi, pi]``.

    >>> wrap_phase(3 * math.pi)
    3.141592653589793
    """
    wrapped = math.remainder(phase, 2.0 * math.pi)
    # math.remainder returns values in [-pi, pi]; map -pi to +pi so the
    # representative of "logic 1" is unique.
    if wrapped <= -math.pi + PHASE_TOLERANCE:
        wrapped = math.pi
    return wrapped


def phase_distance(a: float, b: float) -> float:
    """Smallest absolute angular distance between two phases [rad]."""
    return abs(math.remainder(a - b, 2.0 * math.pi))


@dataclass(frozen=True)
class Wave:
    """A monochromatic spin wave at a fixed point of the circuit.

    The full space-time field is ``A cos(2 pi f t - k x + phi)``; the
    network model only ever needs the complex envelope at discrete
    reference planes, so a wave is ``(amplitude, phase, frequency)`` with
    the propagation handled by :meth:`propagate`.

    Attributes
    ----------
    amplitude:
        Non-negative envelope amplitude (normalised units).
    phase:
        Phase [rad], wrapped to ``(-pi, pi]``.
    frequency:
        Linear frequency [Hz].  Superposition requires equal frequencies.
    """

    amplitude: float
    phase: float
    frequency: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative; flip the phase "
                             "by pi instead of using a negative amplitude")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        object.__setattr__(self, "phase", wrap_phase(self.phase))

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_complex(cls, envelope: complex, frequency: float) -> "Wave":
        """Build a wave from its complex envelope."""
        return cls(amplitude=abs(envelope),
                   phase=cmath.phase(envelope) if envelope != 0 else 0.0,
                   frequency=frequency)

    @classmethod
    def logic(cls, value: int, frequency: float, amplitude: float = 1.0) -> "Wave":
        """Encode a logic value: phase 0 for 0, phase pi for 1."""
        if value not in (0, 1):
            raise ValueError(f"logic value must be 0 or 1, got {value!r}")
        return cls(amplitude=amplitude,
                   phase=math.pi if value else 0.0,
                   frequency=frequency)

    # -- representation --------------------------------------------------------

    @property
    def envelope(self) -> complex:
        """Complex envelope ``A exp(i phi)``."""
        return self.amplitude * cmath.exp(1j * self.phase)

    @property
    def wavelength_in(self) -> None:
        raise AttributeError("a Wave does not know the medium; use "
                             "DispersionRelation.wavelength(frequency)")

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Real field ``A cos(2 pi f t + phi)`` at the given times [s]."""
        t = np.asarray(times, dtype=float)
        return self.amplitude * np.cos(
            2.0 * math.pi * self.frequency * t + self.phase)

    # -- transformations --------------------------------------------------------

    def propagate(self, distance: float, wavenumber: float,
                  attenuation_length: float = math.inf) -> "Wave":
        """Advance the wave by ``distance`` [m] along a waveguide.

        Accumulates phase ``-k * distance`` (the paper's convention that a
        path of n lambda preserves phase and (n+1/2) lambda inverts it) and
        attenuates the amplitude by ``exp(-distance / L_att)``.
        """
        if distance < 0:
            raise ValueError("propagation distance must be non-negative")
        decay = math.exp(-distance / attenuation_length) \
            if math.isfinite(attenuation_length) else 1.0
        return Wave(amplitude=self.amplitude * decay,
                    phase=wrap_phase(self.phase - wavenumber * distance),
                    frequency=self.frequency)

    def attenuate(self, factor: float) -> "Wave":
        """Scale the amplitude by ``factor`` in [0, 1] (insertion loss)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("attenuation factor must lie in [0, 1]")
        return replace(self, amplitude=self.amplitude * factor)

    def shifted(self, phase_shift: float) -> "Wave":
        """Return a copy with ``phase_shift`` added."""
        return Wave(self.amplitude, self.phase + phase_shift, self.frequency)

    def split(self, n_arms: int) -> "Wave":
        """Power-split into ``n_arms`` equal arms (amplitude / sqrt(n)).

        Models an ideal directional coupler used to extend fan-out beyond
        2 (Section III-A, last paragraph).
        """
        if n_arms < 1:
            raise ValueError("need at least one arm")
        return replace(self, amplitude=self.amplitude / math.sqrt(n_arms))

    # -- queries ----------------------------------------------------------------

    def is_in_phase_with(self, other: "Wave",
                         tolerance: float = 1e-6) -> bool:
        """True if the phase difference is ~0 (mod 2 pi)."""
        return phase_distance(self.phase, other.phase) < tolerance

    def is_out_of_phase_with(self, other: "Wave",
                             tolerance: float = 1e-6) -> bool:
        """True if the phase difference is ~pi (mod 2 pi)."""
        return abs(phase_distance(self.phase, other.phase) - math.pi) < tolerance


def superpose(waves: Sequence[Wave]) -> Wave:
    """Coherently sum equal-frequency waves (constructive/destructive).

    This is the physical interference of Section II-B: the complex
    envelopes add.  Same-phase waves add amplitudes; opposite-phase waves
    cancel.

    Raises
    ------
    ValueError
        If the list is empty or the frequencies differ.
    """
    if not waves:
        raise ValueError("cannot superpose zero waves")
    f0 = waves[0].frequency
    for wave in waves[1:]:
        if not math.isclose(wave.frequency, f0, rel_tol=1e-12):
            raise ValueError(
                "interference-based SW logic requires equal frequencies; "
                f"got {wave.frequency} Hz vs {f0} Hz")
    total = sum((w.envelope for w in waves), 0j)
    return Wave.from_complex(total, f0)


def interference_kind(a: Wave, b: Wave, tolerance: float = 1e-6) -> str:
    """Classify two-wave interference: 'constructive', 'destructive', 'partial'.

    Matches Figure 2b of the paper: equal-amplitude in-phase waves double,
    opposite-phase waves cancel.
    """
    if a.is_in_phase_with(b, tolerance):
        return "constructive"
    if a.is_out_of_phase_with(b, tolerance):
        return "destructive"
    return "partial"


def standing_pattern(waves: Iterable[Wave], times: np.ndarray) -> np.ndarray:
    """Time-domain sum of several waves at one point (for plotting)."""
    t = np.asarray(times, dtype=float)
    total = np.zeros_like(t)
    for wave in waves:
        total += wave.sample(t)
    return total
