"""Fast linear-wave tier: 2-D damped scalar FDTD on gate geometry masks."""

from .scalar import ScalarWaveSimulator, WaveSource, run_steady_state
from .calibration import (
    CalibrationResult,
    calibrate_wavelength,
    measure_guide_wavelength,
)

__all__ = [
    "ScalarWaveSimulator",
    "WaveSource",
    "run_steady_state",
    "CalibrationResult",
    "calibrate_wavelength",
    "measure_guide_wavelength",
]
