"""Numerical-dispersion calibration of the scalar-wave tier.

The leapfrog stencil propagates waves slightly slower than the nominal
speed (about 1 % at 11 cells per wavelength and Courant 0.5), so the
simulated wavelength is correspondingly short of the design value.
Gate geometries are dimensioned in *design* wavelengths; a 1 % error
over the ~20-wavelength longest path is ~0.2 lambda of phase slip --
tolerable, but easy to correct.  This module measures the simulated
wavelength on a reference strip and returns the compensated input
wavelength that makes the *propagated* wavelength hit the target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .scalar import ScalarWaveSimulator, WaveSource, run_steady_state


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a numerical-dispersion measurement."""

    target_wavelength: float
    measured_wavelength: float
    compensated_wavelength: float

    @property
    def relative_error(self) -> float:
        """(measured - target) / target before compensation."""
        return (self.measured_wavelength - self.target_wavelength) \
            / self.target_wavelength


def measure_guide_wavelength(wavelength: float, frequency: float,
                             dx: Optional[float] = None,
                             courant: float = 0.5) -> float:
    """Propagated wavelength of a fundamental mode on a reference strip.

    A full-width line source launches a pure fundamental mode in a
    straight guide; the phase gradient of the steady-state envelope
    along the axis gives the numerical wavelength.
    """
    cell = dx if dx is not None else wavelength / 16.0
    nx = int(round(28 * wavelength / cell))
    ny = max(6, int(round(0.45 * wavelength / cell)))
    mask = np.ones((ny, nx), dtype=bool)
    sim = ScalarWaveSimulator(mask, dx=cell, wavelength=wavelength,
                              frequency=frequency,
                              absorber_width=3 * wavelength,
                              absorber_sides=("left", "right"),
                              courant=courant)
    src = np.zeros_like(mask)
    src[:, int(4 * wavelength / cell):int(4 * wavelength / cell) + 2] = True
    sim.add_source(WaveSource(mask=src))
    envelope = run_steady_state(sim, settle_periods=45)
    row = envelope[ny // 2,
                   int(7 * wavelength / cell):int(22 * wavelength / cell)]
    phase = np.unwrap(np.angle(row))
    slope = np.polyfit(np.arange(len(phase)) * cell, phase, 1)[0]
    return 2.0 * math.pi / abs(slope)


def calibrate_wavelength(target_wavelength: float, frequency: float,
                         dx: Optional[float] = None,
                         courant: float = 0.5,
                         iterations: int = 2) -> CalibrationResult:
    """Find the input wavelength whose propagated wavelength matches
    the target.

    Fixed-point iteration on the (nearly linear) numerical-dispersion
    map; two iterations reach well below 0.1 %.
    """
    if iterations < 1:
        raise ValueError("need at least one iteration")
    # Fix the grid once (from the target) so the iteration converges on
    # one discretisation rather than chasing a moving mesh.
    cell = dx if dx is not None else target_wavelength / 16.0
    measured_first = measure_guide_wavelength(target_wavelength,
                                              frequency, cell, courant)
    compensated = target_wavelength
    for _ in range(iterations):
        measured = measure_guide_wavelength(compensated, frequency,
                                            cell, courant)
        compensated *= target_wavelength / measured
    return CalibrationResult(target_wavelength=target_wavelength,
                             measured_wavelength=measured_first,
                             compensated_wavelength=compensated)
