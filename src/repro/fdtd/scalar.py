"""2-D damped scalar-wave FDTD on a geometry mask.

The linearised magnetisation dynamics of a forward-volume film support
isotropic in-plane propagation with a well-defined phase velocity at the
operating frequency.  For *gate-scale* field maps (Figure 5 of the
paper) the full LLG model is information overkill: the interference
pattern is a linear-wave phenomenon set by the geometry in units of
lambda.  This solver integrates

``u_tt = c^2 (u_xx + u_yy) - 2 G(x, y) u_t``

on the waveguide mask with phase-coherent point/patch sources and
damping ramps G at the open ends, using the standard second-order
leapfrog stencil.  ``c`` is chosen as ``f * lambda`` of the operating
point so the simulated wavelength matches the design wavelength; the
weak dispersion of the true magnon branch around the operating point is
irrelevant for monochromatic steady states.

Outputs: space-time fields, steady-state complex envelopes (lock-in
demodulated per cell) from which amplitude and phase maps are read.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..errors import CheckpointError
from ..resilience import faults
from ..resilience.checkpoint import CheckpointManager
from ..resilience.guardrails import Watchdog


@dataclass
class WaveSource:
    """A phase-coherent drive applied to a set of cells.

    Attributes
    ----------
    mask:
        Boolean ``(ny, nx)`` cell mask of the source region.
    amplitude:
        Drive amplitude (arbitrary units; logic only uses ratios).
    phase:
        Drive phase [rad] -- logic 0 -> 0, logic 1 -> pi.
    start, stop:
        Activity window [s]; CW by default.
    hard:
        If True the source cells are *clamped* to the drive value
        (Dirichlet).  Default False: the drive is added as a forcing
        term (soft source), which is transparent to waves passing
        through -- required whenever reflected waves travel back across
        the source region (every interferometric gate does this).
    """

    mask: np.ndarray
    amplitude: float = 1.0
    phase: float = 0.0
    start: float = 0.0
    stop: float = math.inf
    hard: bool = False

    def __post_init__(self) -> None:
        self.mask = np.asarray(self.mask, dtype=bool)
        if not self.mask.any():
            raise ValueError("wave source region is empty")

    @classmethod
    def logic(cls, mask: np.ndarray, value: int,
              amplitude: float = 1.0) -> "WaveSource":
        """Phase-encode a logic value (Section III-A step (i))."""
        if value not in (0, 1):
            raise ValueError(f"logic value must be 0 or 1, got {value!r}")
        return cls(mask=mask, amplitude=amplitude,
                   phase=math.pi if value else 0.0)


class ScalarWaveSimulator:
    """Leapfrog FDTD for the damped 2-D wave equation on a mask.

    Parameters
    ----------
    mask:
        Boolean ``(ny, nx)`` waveguide geometry (True = propagating).
    dx:
        Cell size [m] (isotropic).
    wavelength:
        Design wavelength [m] -- 55 nm in the paper.
    frequency:
        Operating frequency [Hz] -- 10 GHz in the paper.  Together with
        the wavelength this sets the phase velocity c = f * lambda.
    damping_time:
        Bulk amplitude decay time [s]; ``inf`` for lossless propagation.
    absorber_width:
        Absorbing ramp width [m] applied along the mask boundary cells
        near the outer mesh edges (prevents end reflections).
    courant:
        Courant number (<= ~0.7 for 2-D stability).
    progress:
        Optional heartbeat callback ``progress(step_count, t)`` invoked
        every ``progress_every`` leapfrog steps -- lets long solves
        report liveness without any tracing machinery.
    progress_every:
        Heartbeat period in steps (default 200).
    watchdog:
        Optional :class:`~repro.resilience.guardrails.FieldWatchdog`
        observing the field after each step (self-throttled to its own
        ``every`` period); raises
        :class:`~repro.errors.NumericalDivergenceError` on blow-up.
    checkpoint:
        Optional :class:`~repro.resilience.CheckpointManager`
        persisting :meth:`state_dict` every ``every_steps`` steps;
        :meth:`restore_checkpoint` resumes from the last snapshot.
    """

    def __init__(self, mask: np.ndarray, dx: float, wavelength: float,
                 frequency: float, damping_time: float = math.inf,
                 absorber_width: float = 0.0, courant: float = 0.5,
                 absorber_sides: Tuple[str, ...] = ("left", "right",
                                                    "top", "bottom"),
                 progress: Optional[Callable[[int, float], None]] = None,
                 progress_every: int = 200,
                 watchdog: Optional[Watchdog] = None,
                 checkpoint: Optional[CheckpointManager] = None):
        mask = np.asarray(mask, dtype=bool)
        if mask.ndim != 2:
            raise ValueError("mask must be 2-D (ny, nx)")
        if not mask.any():
            raise ValueError("geometry mask is empty")
        if dx <= 0 or wavelength <= 0 or frequency <= 0:
            raise ValueError("dx, wavelength and frequency must be positive")
        if wavelength < 4.0 * dx:
            raise ValueError(
                f"wavelength {wavelength:.3g} m under-resolved by cells of "
                f"{dx:.3g} m; need >= 4 cells/lambda (>= 10 recommended)")
        if not 0.0 < courant <= 0.7071:
            raise ValueError("courant must be in (0, 1/sqrt(2)]")
        self.mask = mask
        self.ny, self.nx = mask.shape
        self.dx = dx
        self.wavelength = wavelength
        self.frequency = frequency
        self.speed = frequency * wavelength
        self.dt = courant * dx / self.speed
        self.sources: List[WaveSource] = []

        gamma_bulk = 0.0 if math.isinf(damping_time) else 1.0 / damping_time
        self.gamma = np.full(mask.shape, gamma_bulk)
        if absorber_width > 0.0:
            self._add_absorbers(absorber_width, absorber_sides)
        self.gamma[~mask] = 0.0

        self.u = np.zeros(mask.shape)
        self.u_prev = np.zeros(mask.shape)
        self.t = 0.0
        self.step_count = 0
        self.progress = progress
        self.progress_every = max(1, int(progress_every))
        self.watchdog = watchdog
        self.checkpoint = checkpoint
        self._n_cells = int(mask.sum())
        self._laplacian_scale = (self.speed * self.dt / dx) ** 2
        # Shifted neighbour masks with wrap-around explicitly forbidden
        # (np.roll alone would couple opposite canvas edges).
        self._neighbour_masks = {}
        for axis, shift in ((0, 1), (0, -1), (1, 1), (1, -1)):
            shifted = np.roll(self.mask, shift, axis=axis)
            edge_index = [slice(None)] * 2
            edge_index[axis] = 0 if shift == 1 else -1
            shifted[tuple(edge_index)] = False
            self._neighbour_masks[(axis, shift)] = shifted
        masks = self._neighbour_masks
        self._neighbour_count = (masks[(0, 1)].astype(float)
                                 + masks[(0, -1)] + masks[(1, 1)]
                                 + masks[(1, -1)])

    # -- construction helpers -----------------------------------------------------

    def _add_absorbers(self, width: float,
                       sides: Tuple[str, ...]) -> None:
        """Quadratic damping ramps within ``width`` of selected mesh edges.

        Absorbers belong only where waveguides *terminate* at the mesh
        frame -- the transverse side walls of a guide must stay
        reflective (that is the confinement).  Gate builders pad the
        canvas so that nothing but open waveguide ends comes within
        ``width`` of an absorbing side.
        """
        valid = {"left", "right", "top", "bottom"}
        unknown = set(sides) - valid
        if unknown:
            raise ValueError(f"unknown absorber sides {sorted(unknown)}; "
                             f"choose from {sorted(valid)}")
        n_cells = max(1, int(round(width / self.dx)))
        # Strong enough to kill a wave crossing the ramp twice.
        gamma_max = 4.0 * self.speed / width
        iy = np.arange(self.ny)[:, None]
        ix = np.arange(self.nx)[None, :]
        big = float(self.nx + self.ny)
        distances = []
        if "left" in sides:
            distances.append(np.broadcast_to(ix, self.mask.shape))
        if "right" in sides:
            distances.append(np.broadcast_to(self.nx - 1 - ix, self.mask.shape))
        if "top" in sides:
            distances.append(np.broadcast_to(iy, self.mask.shape))
        if "bottom" in sides:
            distances.append(np.broadcast_to(self.ny - 1 - iy, self.mask.shape))
        if not distances:
            return
        dist_edge = np.full(self.mask.shape, big)
        for d in distances:
            dist_edge = np.minimum(dist_edge, d.astype(float))
        ramp = np.clip(1.0 - dist_edge / n_cells, 0.0, 1.0) ** 2
        self.gamma = np.maximum(self.gamma, gamma_max * ramp)

    def add_source(self, source: WaveSource) -> None:
        """Register a drive; source cells are forced additively."""
        if source.mask.shape != self.mask.shape:
            raise ValueError("source mask shape mismatch")
        self.sources.append(source)

    def point_source_mask(self, x: float, y: float,
                          radius: float = None) -> np.ndarray:
        """Circular source mask at physical position ``(x, y)`` [m]."""
        r = radius if radius is not None else 1.5 * self.dx
        ix = (np.arange(self.nx) + 0.5) * self.dx
        iy = (np.arange(self.ny) + 0.5) * self.dx
        gx, gy = np.meshgrid(ix, iy)
        region = ((gx - x) ** 2 + (gy - y) ** 2) <= r ** 2
        region &= self.mask
        if not region.any():
            raise ValueError(f"source at ({x:.3g}, {y:.3g}) hits no mask cells")
        return region

    # -- integration ---------------------------------------------------------------

    def _apply_sources(self, t: float, field: np.ndarray) -> None:
        """Inject the drives: soft sources add, hard sources clamp.

        Soft sources radiate symmetrically and are transparent to
        passing waves; the absolute launched amplitude depends on the
        patch geometry, but every logic-level quantity in the library
        is normalised to a reference pattern, so only the (identical)
        relative coupling matters.
        """
        omega = 2.0 * math.pi * self.frequency
        dt2 = self.dt * self.dt
        for src in self.sources:
            if src.start <= t <= src.stop:
                # Smooth turn-on over 3 periods limits transient ringing.
                ramp_time = 3.0 / self.frequency
                envelope = min(1.0, (t - src.start) / ramp_time)
                envelope = 0.5 * (1.0 - math.cos(math.pi * envelope))
                value = (src.amplitude * envelope
                         * math.cos(omega * t + src.phase))
                if src.hard:
                    field[src.mask] = value
                else:
                    field[src.mask] += dt2 * omega * omega * value

    def step(self, n_steps: int = 1) -> None:
        """Advance the field ``n_steps`` leapfrog steps.

        When the observer is attached (:func:`repro.obs.enable`) the
        call is wrapped in an ``fdtd.step`` span, takes the
        phase-profiled loop (per-step wall time split into
        ``fdtd.phase.stencil_ms`` / ``boundary_ms`` / ``source_ms``
        histograms), and updates the ``fdtd.steps`` /
        ``fdtd.cell_updates`` counters plus the ``fdtd.steps_per_s``
        and ``fdtd.cell_updates_per_s`` throughput gauges; disabled,
        the instrumentation is a single flag check and the bare
        :meth:`_advance` loop runs untouched.  Likewise the resilience
        hooks: with no watchdog, no checkpoint manager and no armed
        fault plan the guarded loop is skipped entirely.
        """
        guarded = (self.watchdog is not None or self.checkpoint is not None
                   or faults.active())
        if not obs.enabled():
            advance = self._advance_guarded if guarded else self._advance
            return advance(n_steps)
        timer = obs.PhaseTimer("fdtd")
        t0 = time.perf_counter()
        with obs.span("fdtd.step", steps=int(n_steps),
                      cells=self._n_cells):
            if guarded:
                self._advance_guarded(n_steps, profile_timer=timer)
            else:
                self._advance_profiled(n_steps, timer)
        elapsed = time.perf_counter() - t0
        obs.counter("fdtd.steps").inc(int(n_steps))
        obs.counter("fdtd.cell_updates").inc(int(n_steps) * self._n_cells)
        if elapsed > 0:
            obs.gauge("fdtd.steps_per_s").set(n_steps / elapsed)
            obs.gauge("fdtd.cell_updates_per_s").set(
                n_steps * self._n_cells / elapsed)
        timer.flush()

    def _advance(self, n_steps: int) -> None:
        """The uninstrumented leapfrog loop."""
        c2 = self._laplacian_scale
        dt = self.dt
        masks = self._neighbour_masks
        neighbours = self._neighbour_count
        heartbeat = self.progress
        every = self.progress_every
        count = self.step_count
        for _ in range(n_steps):
            lap = (
                np.roll(self.u, 1, axis=0) * masks[(0, 1)]
                + np.roll(self.u, -1, axis=0) * masks[(0, -1)]
                + np.roll(self.u, 1, axis=1) * masks[(1, 1)]
                + np.roll(self.u, -1, axis=1) * masks[(1, -1)]
            )
            lap -= neighbours * self.u
            damp = self.gamma * dt
            new = ((2.0 * self.u - (1.0 - damp) * self.u_prev + c2 * lap)
                   / (1.0 + damp))
            new *= self.mask
            self.u_prev = self.u
            self.u = new
            self.t += dt
            self._apply_sources(self.t, self.u)
            count += 1
            if heartbeat is not None and count % every == 0:
                heartbeat(count, self.t)
        self.step_count = count

    def _advance_profiled(self, n_steps: int, timer) -> None:
        """The leapfrog loop with per-phase wall-time attribution.

        Same update as :meth:`_advance` with one clock read between
        phases, charging the Laplacian stencil, the damping/boundary
        update and the source injection separately -- the breakdown
        the batched-kernel optimisation needs.  Only ever taken when
        the observer is attached.
        """
        c2 = self._laplacian_scale
        dt = self.dt
        masks = self._neighbour_masks
        neighbours = self._neighbour_count
        heartbeat = self.progress
        every = self.progress_every
        count = self.step_count
        for _ in range(n_steps):
            t0 = timer.stamp()
            lap = (
                np.roll(self.u, 1, axis=0) * masks[(0, 1)]
                + np.roll(self.u, -1, axis=0) * masks[(0, -1)]
                + np.roll(self.u, 1, axis=1) * masks[(1, 1)]
                + np.roll(self.u, -1, axis=1) * masks[(1, -1)]
            )
            lap -= neighbours * self.u
            t0 = timer.lap("stencil", t0)
            damp = self.gamma * dt
            new = ((2.0 * self.u - (1.0 - damp) * self.u_prev + c2 * lap)
                   / (1.0 + damp))
            new *= self.mask
            self.u_prev = self.u
            self.u = new
            self.t += dt
            t0 = timer.lap("boundary", t0)
            self._apply_sources(self.t, self.u)
            timer.lap("source", t0)
            count += 1
            if heartbeat is not None and count % every == 0:
                heartbeat(count, self.t)
        self.step_count = count

    def _advance_guarded(self, n_steps: int, profile_timer=None) -> None:
        """Leapfrog loop with per-step resilience hooks.

        Taken only when a watchdog, a checkpoint manager or an armed
        fault plan is present; the bare :meth:`_advance` hot path is
        untouched otherwise.  ``profile_timer`` routes the inner step
        through :meth:`_advance_profiled` when the observer is on.
        """
        watchdog = self.watchdog
        manager = self.checkpoint
        for _ in range(n_steps):
            if profile_timer is not None:
                self._advance_profiled(1, profile_timer)
            else:
                self._advance(1)
            if faults.active():
                spec = faults.trip("fdtd.step")
                if spec is not None and spec.kind == "nan":
                    iy, ix = np.argwhere(self.mask)[0]
                    self.u[iy, ix] = np.nan
            if watchdog is not None:
                watchdog.observe(self.t, step=self.step_count, u=self.u)
            if manager is not None:
                manager.maybe_save(self.step_count, self.state_dict)

    # -- checkpoint/resume ---------------------------------------------------

    def state_dict(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Solver state in :class:`CheckpointManager` format: the two
        leapfrog field planes plus scalar bookkeeping."""
        return ({"u": self.u, "u_prev": self.u_prev},
                {"solver": "fdtd", "t": self.t,
                 "step_count": self.step_count,
                 "shape": [self.ny, self.nx]})

    def load_state(self, arrays: Dict[str, np.ndarray],
                   meta: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (shape-checked)."""
        if tuple(meta.get("shape", ())) != (self.ny, self.nx):
            raise CheckpointError(
                f"checkpoint grid {meta.get('shape')} does not match "
                f"simulator grid {[self.ny, self.nx]}")
        self.u = np.array(arrays["u"], dtype=float)
        self.u_prev = np.array(arrays["u_prev"], dtype=float)
        self.t = float(meta["t"])
        self.step_count = int(meta["step_count"])

    def restore_checkpoint(self) -> bool:
        """Resume from the attached manager's last snapshot.

        Returns True when a snapshot was restored, False when no
        checkpoint file exists yet (fresh run).
        """
        if self.checkpoint is None:
            raise CheckpointError("no CheckpointManager attached")
        if not self.checkpoint.exists():
            return False
        arrays, meta = self.checkpoint.load()
        self.load_state(arrays, meta)
        return True

    def run_until(self, t_end: float) -> None:
        """Advance to (at least) physical time ``t_end`` [s]."""
        remaining = t_end - self.t
        if remaining <= 0:
            return
        n_steps = int(math.ceil(remaining / self.dt))
        if not obs.enabled():
            self.step(n_steps)
            return
        with obs.span("fdtd.run_until", t_end=float(t_end),
                      steps=n_steps):
            self.step(n_steps)

    # -- measurement -----------------------------------------------------------------

    def steady_state_envelope(self, n_periods: int = 4) -> np.ndarray:
        """Per-cell complex envelope via lock-in over ``n_periods``.

        Must be called after reaching steady state (``settle_periods``
        of :func:`run_steady_state` handles this).  Returns a complex
        ``(ny, nx)`` array: ``|.|`` is the local amplitude, ``angle(.)``
        the local phase relative to the drive.
        """
        omega = 2.0 * math.pi * self.frequency
        steps_per_period = max(8, int(round(1.0 / (self.frequency * self.dt))))
        n_samples = n_periods * steps_per_period
        acc = np.zeros(self.mask.shape, dtype=complex)
        # The lock-in accumulation is the "detector readout" phase of
        # the profile; stepping itself is charged by step().
        timer = obs.PhaseTimer("fdtd") if obs.enabled() else None
        for _ in range(n_samples):
            self.step(1)
            if timer is None:
                acc += self.u * np.exp(-1j * omega * self.t)
            else:
                t0 = timer.stamp()
                acc += self.u * np.exp(-1j * omega * self.t)
                timer.lap("detector", t0)
        if timer is not None:
            timer.flush()
        return 2.0 * acc / n_samples

    def amplitude_map(self, envelope: np.ndarray = None) -> np.ndarray:
        """|envelope| (computes a fresh envelope when not supplied)."""
        env = envelope if envelope is not None else self.steady_state_envelope()
        return np.abs(env)

    def region_envelope(self, region: np.ndarray,
                        envelope: np.ndarray) -> complex:
        """Coherent (complex) average of the envelope over ``region``."""
        region = np.asarray(region, dtype=bool) & self.mask
        if not region.any():
            raise ValueError("detection region covers no propagating cells")
        return complex(np.sum(envelope[region]) / region.sum())


def run_steady_state(simulator: ScalarWaveSimulator,
                     settle_periods: int = 30,
                     average_periods: int = 4) -> np.ndarray:
    """Run to steady state and return the complex envelope map.

    ``settle_periods`` must exceed the longest path length in the device
    divided by the wavelength (so every wavefront has arrived) plus the
    source ramp; 30 periods covers the paper's triangle gates, whose
    longest path is ~22 lambda.
    """
    simulator.run_until(settle_periods / simulator.frequency)
    return simulator.steady_state_envelope(average_periods)
