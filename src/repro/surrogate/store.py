"""Versioned, content-addressed on-disk characterization datasets.

A dataset is one characterization sweep of one gate through one tier
over a named axis grid.  Its identity is the SHA-256 of the canonical
(gate, tier, axes, n_trials, salt) tuple, so the same sweep requested
twice lands in the same directory and a changed grid (or a version
bump, via the salt) lands in a new one.  On disk:

.. code-block:: text

    .repro_characterization/
        maj3-network-<id>/
            manifest.json      # axes, grid, tier, commit, repro version
            records.jsonl      # one characterized corner per line
        maj3.surrogate.npz     # fitted model (repro.surrogate.model)

``records.jsonl`` is append-only: :func:`characterize` computes only
the corners missing from it (and the runtime's content-addressed cache
deduplicates across datasets that share corners), so growing a grid is
incremental.  The manifest is rewritten atomically after every append.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import subprocess
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .. import obs
from ..runtime.cache import atomic_write
from ..runtime.spec import canonical_json, default_salt
from .jobs import AXIS_NAMES

SCHEMA_VERSION = 1
DEFAULT_ROOT = ".repro_characterization"

_LOG = obs.get_logger("surrogate.store")


@dataclass(frozen=True)
class AxisSpec:
    """One characterization axis: a name and its grid values."""

    name: str
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.name not in AXIS_NAMES:
            raise ValueError(f"unknown axis {self.name!r}; choose from "
                             f"{list(AXIS_NAMES)}")
        values = tuple(sorted({float(v) for v in self.values}))
        if not values:
            raise ValueError(f"axis {self.name!r} needs at least one value")
        object.__setattr__(self, "values", values)


#: The default corner grid: small enough to characterize from the
#: network tier in seconds, wide enough to cover the ablation benches'
#: operating ranges.
DEFAULT_AXES: Tuple[AxisSpec, ...] = (
    AxisSpec("phase_noise", (0.0, 0.15, 0.3)),
    AxisSpec("frequency_detune", (-0.02, 0.0, 0.02)),
    AxisSpec("geometry_jitter", (-0.02, 0.0, 0.02)),
    AxisSpec("temperature", (0.0, 300.0)),
)


def repo_commit() -> str:
    """Commit stamped into manifests: ``REPRO_COMMIT`` (CI) or git."""
    commit = os.environ.get("REPRO_COMMIT")
    if commit:
        return commit
    try:
        result = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10)
        if result.returncode == 0 and result.stdout.strip():
            return result.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def point_key(point: Mapping[str, float]) -> str:
    """Canonical identity of one grid corner (sorted compact JSON)."""
    return canonical_json({name: float(value)
                           for name, value in point.items()})


def dataset_id(gate: str, tier: str, axes: Iterable[AxisSpec],
               n_trials: int, salt: str) -> str:
    """Content hash identifying a dataset (16 hex chars)."""
    payload = canonical_json({
        "schema": SCHEMA_VERSION, "gate": gate, "tier": tier,
        "axes": [[axis.name, list(axis.values)] for axis in axes],
        "n_trials": int(n_trials), "salt": salt})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class CharacterizationDataset:
    """One sweep's on-disk home: manifest + append-only records."""

    def __init__(self, root: str, gate: str, tier: str,
                 axes: Iterable[AxisSpec], n_trials: int = 64,
                 salt: Optional[str] = None):
        self.root = root
        self.gate = gate
        self.tier = tier
        self.axes: Tuple[AxisSpec, ...] = tuple(
            sorted(axes, key=lambda a: AXIS_NAMES.index(a.name)))
        names = [axis.name for axis in self.axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axes: {names}")
        self.n_trials = int(n_trials)
        self.salt = salt if salt is not None else default_salt()
        self.id = dataset_id(gate, tier, self.axes, self.n_trials,
                             self.salt)
        self.directory = os.path.join(root, f"{gate}-{tier}-{self.id}")
        self.manifest_path = os.path.join(self.directory, "manifest.json")
        self.records_path = os.path.join(self.directory, "records.jsonl")

    # -- grid ---------------------------------------------------------------

    def grid_points(self) -> List[Dict[str, float]]:
        """Every corner of the axis grid (cartesian product)."""
        names = [axis.name for axis in self.axes]
        return [dict(zip(names, combo)) for combo in itertools.product(
            *(axis.values for axis in self.axes))]

    @property
    def grid_size(self) -> int:
        size = 1
        for axis in self.axes:
            size *= len(axis.values)
        return size

    # -- persistence --------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.manifest_path)

    def load_manifest(self) -> Dict[str, Any]:
        with open(self.manifest_path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def records(self) -> Dict[str, Dict[str, Any]]:
        """All characterized corners, keyed by :func:`point_key`.

        Duplicate keys resolve last-wins, so re-characterizing a corner
        (e.g. after a physics fix, by appending) supersedes cleanly.
        Torn trailing lines (a killed writer) are ignored.
        """
        records: Dict[str, Dict[str, Any]] = {}
        try:
            handle = open(self.records_path, "r", encoding="utf-8")
        except OSError:
            return records
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    _LOG.warning("skipping torn record line in %s",
                                 self.records_path)
                    continue
                records[entry["key"]] = entry["record"]
        return records

    def append(self, new_records: Iterable[Dict[str, Any]]) -> int:
        """Append characterized corners; returns how many were new.

        Corners already present (by point key) are skipped, keeping the
        file append-only and idempotent.  The manifest is rewritten
        atomically afterwards.
        """
        existing = set(self.records())
        os.makedirs(self.directory, exist_ok=True)
        appended = 0
        with open(self.records_path, "a", encoding="utf-8") as handle:
            for record in new_records:
                key = point_key(record["point"])
                if key in existing:
                    continue
                handle.write(json.dumps({"key": key, "record": record},
                                        sort_keys=True) + "\n")
                existing.add(key)
                appended += 1
            handle.flush()
            os.fsync(handle.fileno())
        self._write_manifest(len(existing))
        return appended

    def _write_manifest(self, n_records: int) -> None:
        created = time.time()
        if self.exists():
            try:
                created = self.load_manifest().get("created", created)
            except (OSError, ValueError):
                pass
        from .. import __version__

        manifest = {
            "schema": SCHEMA_VERSION,
            "dataset_id": self.id,
            "gate": self.gate,
            "tier": self.tier,
            "axes": [{"name": axis.name, "values": list(axis.values)}
                     for axis in self.axes],
            "grid_size": self.grid_size,
            "n_trials": self.n_trials,
            "salt": self.salt,
            "repro_version": __version__,
            "commit": repo_commit(),
            "created": created,
            "updated": time.time(),
            "n_records": n_records,
        }
        atomic_write(self.manifest_path, lambda fh: fh.write(
            json.dumps(manifest, indent=2, sort_keys=True)
            .encode("utf-8")))


class CharacterizationStore:
    """Root directory of characterization datasets and fitted models."""

    def __init__(self, root: str = DEFAULT_ROOT):
        self.root = root

    def dataset(self, gate: str, tier: str = "network",
                axes: Optional[Iterable[AxisSpec]] = None,
                n_trials: int = 64,
                salt: Optional[str] = None) -> CharacterizationDataset:
        return CharacterizationDataset(
            self.root, gate, tier,
            DEFAULT_AXES if axes is None else axes,
            n_trials=n_trials, salt=salt)

    def model_path(self, gate: str) -> str:
        """Where the fitted surrogate for ``gate`` lives (the path the
        tier registry loads by default)."""
        return os.path.join(self.root, f"{gate}.surrogate.npz")

    def manifests(self) -> List[Dict[str, Any]]:
        """Manifests of every dataset under the root."""
        found = []
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return found
        for name in names:
            path = os.path.join(self.root, name, "manifest.json")
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    found.append(json.load(handle))
            except (OSError, ValueError):
                continue
        return found


def characterize(dataset: CharacterizationDataset,
                 executor: Optional[Any] = None,
                 workers: Optional[int] = None,
                 cache: Optional[Any] = None) -> Dict[str, Dict[str, Any]]:
    """Fill a dataset's grid through the runtime engine.

    Builds one :func:`repro.surrogate.jobs.characterize_point` JobSpec
    per *missing* grid corner and fans them through an
    :class:`repro.runtime.Executor` -- parallel across corners,
    content-addressed-cached across invocations.  Returns all records
    (existing + new), keyed by :func:`point_key`.
    """
    from ..runtime import Executor, JobSpec

    existing = dataset.records()
    pending = [point for point in dataset.grid_points()
               if point_key(point) not in existing]
    if not pending:
        return existing
    if executor is None:
        executor = Executor(workers=workers, cache=cache)
    specs = []
    for index, point in enumerate(pending):
        params: Dict[str, Any] = {"gate": dataset.gate,
                                  "tier": dataset.tier,
                                  "n_trials": dataset.n_trials}
        params.update(point)
        specs.append(JobSpec(
            fn="repro.surrogate.jobs:characterize_point", params=params,
            label=f"char:{dataset.gate}@{dataset.tier}:{index}"))
    with obs.span("characterize", gate=dataset.gate, tier=dataset.tier,
                  n_jobs=len(specs)):
        result = executor.run(specs)
    result.raise_on_failure()
    appended = dataset.append(outcome.value for outcome in result
                              if outcome.ok)
    _LOG.info("characterized %d new corner(s) of %s@%s into %s",
              appended, dataset.gate, dataset.tier, dataset.directory)
    return dataset.records()
