"""Portable characterization jobs for the surrogate tier.

One job = one corner of the characterization grid: a triangle gate
perturbed along the ablation axes (phase noise, frequency detuning,
geometry jitter, temperature) is evaluated deterministically for every
input pattern, then Monte-Carlo decoded under the combined phase-noise
sigma.  The job is module-level with JSON-canonicalisable parameters
and a JSON-shaped return, so :class:`repro.runtime.JobSpec` ships it to
worker processes and caches it content-addressed -- re-running a
characterization sweep recomputes only the corners that changed.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Tuple

#: The characterization axes, in canonical order.  They mirror the
#: ablation benches: input phase jitter [rad], relative frequency
#: detuning from the paper's 10 GHz point, relative geometry error on
#: the phase-critical d1/d2/d3 segments, and temperature [K].
AXIS_NAMES = ("phase_noise", "frequency_detune", "geometry_jitter",
              "temperature")

#: Thermal phase jitter at 300 K [rad].  Thermal magnons add phase
#: noise growing with the magnon occupation, sigma ~ sqrt(T); the
#: 300 K anchor is chosen well inside the margin observed by the
#: thermal ablation bench (drift << pi/2 at room temperature).
THERMAL_SIGMA_300K = 0.05


def thermal_phase_sigma(temperature: float) -> float:
    """Phase jitter proxy for finite temperature: sigma ~ sqrt(T)."""
    return THERMAL_SIGMA_300K * math.sqrt(max(float(temperature), 0.0)
                                          / 300.0)


def build_gate(gate: str, frequency_detune: float = 0.0,
               geometry_jitter: float = 0.0) -> Tuple[Any, float]:
    """Construct the perturbed gate instance for one grid corner.

    ``geometry_jitter`` scales the phase-critical d1/d2/d3 segments by
    ``1 + jitter`` (a systematic fabrication length error); the output
    buffer d4 and the stem keep their nominal lambda-multiples.
    Returns ``(instance, frequency)``.
    """
    from ..core.gates import TriangleMajorityGate, TriangleXorGate
    from ..core.layout import (
        PAPER_FREQUENCY,
        GateDimensions,
        paper_maj3_dimensions,
        paper_xor_dimensions,
    )

    frequency = PAPER_FREQUENCY * (1.0 + float(frequency_detune))
    scale = 1.0 + float(geometry_jitter)
    if gate == "maj3":
        base = paper_maj3_dimensions()
        dims = GateDimensions(
            wavelength=base.wavelength, width=base.width,
            d1=base.d1 * scale, d2=base.d2 * scale, d3=base.d3 * scale,
            d4=base.d4, stem=base.stem)
        return TriangleMajorityGate(dimensions=dims,
                                    frequency=frequency), frequency
    base = paper_xor_dimensions()
    dims = GateDimensions(
        wavelength=base.wavelength, width=base.width,
        d1=base.d1 * scale, d2_xor=base.d2_xor * scale,
        stem=base.stem)
    return TriangleXorGate(dimensions=dims, frequency=frequency), frequency


def characterize_point(gate: str, tier: str = "network",
                       phase_noise: float = 0.0,
                       frequency_detune: float = 0.0,
                       geometry_jitter: float = 0.0,
                       temperature: float = 0.0,
                       n_trials: int = 64,
                       seed: Optional[int] = None) -> Dict[str, Any]:
    """Characterize one grid corner of a triangle gate.

    Deterministic part: every input pattern is evaluated through the
    requested backend (``network`` or ``fdtd``) of the perturbed gate;
    per output the complex envelope (re/im -- interpolation-safe, no
    phase wrapping), the decision margin and the decoded logic value
    are recorded.  Detectors are calibrated on the perturbed gate's own
    all-zeros pattern, exactly as the real tiers do.

    Stochastic part: the truth-table error rate under the combined
    phase-noise sigma ``hypot(phase_noise, thermal_phase_sigma(T))``,
    Monte-Carlo decoded through the analytic network graph (the only
    tier fast enough for per-corner trials) with a seed derived
    deterministically from the corner's own parameters.
    """
    import numpy as np

    from ..core.detection import PhaseDetector, ThresholdDetector
    from ..core.logic import input_patterns, majority, xor as xor_fn
    from ..micromag.experiments import GATE_ARITY
    from ..micromag.fields.thermal import seed_from_key
    from ..physics import Wave

    if gate not in GATE_ARITY:
        raise ValueError(f"unknown gate {gate!r}; choose from "
                         f"{sorted(GATE_ARITY)}")
    if tier not in ("network", "fdtd"):
        raise ValueError(f"characterization tier must be 'network' or "
                         f"'fdtd', got {tier!r} (llg corners are minutes "
                         "each; characterize from a faster tier)")
    arity = GATE_ARITY[gate]
    instance, frequency = build_gate(gate, frequency_detune,
                                     geometry_jitter)
    if seed is None:
        seed = seed_from_key(
            f"characterize:{gate}:{tier}:pn={phase_noise!r}"
            f":fd={frequency_detune!r}:gj={geometry_jitter!r}"
            f":T={temperature!r}:n={int(n_trials)}")
    rng = np.random.default_rng(seed)

    zeros = instance.output_envelopes((0,) * arity, tier)
    names = sorted(zeros)
    detectors: Dict[str, Any] = {}
    for name in names:
        if gate == "maj3":
            detectors[name] = PhaseDetector(
                reference_phase=float(np.angle(zeros[name])))
        else:
            detectors[name] = ThresholdDetector(
                reference_amplitude=abs(zeros[name]))
    expected_fn = majority if gate == "maj3" else xor_fn

    patterns: Dict[str, Dict[str, Any]] = {}
    margins = []
    for bits in input_patterns(arity):
        envs = instance.output_envelopes(bits, tier)
        expected = expected_fn(*bits)
        row: Dict[str, Any] = {}
        for name in names:
            env = complex(envs[name])
            det = detectors[name].detect_envelope(env, frequency)
            row[name] = {"re": env.real, "im": env.imag,
                         "margin": float(det.margin),
                         "logic": int(det.logic_value)}
            margins.append(float(det.margin))
        row["correct"] = all(row[name]["logic"] == expected
                             for name in names)
        patterns["".join(map(str, bits))] = row

    sigma = math.hypot(float(phase_noise), thermal_phase_sigma(temperature))
    errors = 0
    total = 0
    for bits in input_patterns(arity):
        expected = expected_fn(*bits)
        for _ in range(max(0, int(n_trials))):
            injections = {}
            for name, bit in zip(instance.input_names, bits):
                phase = (math.pi if bit else 0.0) + rng.normal(0.0, sigma)
                injections[name] = Wave(1.0, phase, frequency).envelope
            env = instance.network.propagate(injections)
            for out in names:
                det = detectors[out].detect_envelope(env[out], frequency)
                errors += det.logic_value != expected
                total += 1
    if total:
        error_rate = errors / total
    else:  # n_trials = 0: fall back to the noiseless decodes
        error_rate = 0.0 if all(row["correct"]
                                for row in patterns.values()) else 1.0

    return {"gate": gate, "tier": tier,
            "point": {"phase_noise": float(phase_noise),
                      "frequency_detune": float(frequency_detune),
                      "geometry_jitter": float(geometry_jitter),
                      "temperature": float(temperature)},
            "frequency": float(frequency), "sigma": float(sigma),
            "patterns": patterns,
            "min_margin": float(min(margins)),
            "error_rate": float(error_rate),
            "n_trials": int(n_trials), "seed": int(seed)}
