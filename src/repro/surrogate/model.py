"""Pure-NumPy interpolating surrogates over characterization records.

Two model kinds, one interface:

* :class:`MultilinearSurrogate` -- RegularGridInterpolator-style
  multilinear interpolation on the full axis grid.  Queries cost a few
  microseconds (bisect per axis + a 2^d-corner weighted sum), which is
  what makes the surrogate an "instant" tier.
* :class:`RbfSurrogate` -- Gaussian radial-basis ridge regression for
  scattered (non-grid) records, with exact leave-one-out residuals via
  the ridge hat matrix.

Responses interpolated per record: the complex output envelope per
(pattern, output) as re/im components (no phase-wrap artefacts -- the
phase is reconstructed with atan2 at query time), the decision margin,
and the dataset-level truth-table ``error_rate`` / ``min_margin``.

Accuracy guardrails (:class:`repro.errors.SurrogateDomainError`):

* **bounds** -- the query point leaves the characterized axis ranges
  (grid bounding box; the convex hull of a full grid);
* **residual** -- the fit's leave-one-out residual around the query
  exceeds ``residual_threshold``.  For the multilinear fit the LOO
  residual at a grid sample is the interpolation from its axis
  neighbours with the sample removed (exact for this model class,
  computed per grid point at fit time); for the RBF fit it is the
  ridge-regression LOO error per center;
* **sparse** (RBF only) -- no characterized sample lies near the
  query, so the kernel sum would extrapolate through a data hole.

``save``/``load`` round-trip through a single ``.npz`` written
atomically.
"""

from __future__ import annotations

import bisect
import json
import math
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .. import obs
from ..errors import SurrogateDomainError
from ..runtime.cache import atomic_write
from .jobs import AXIS_NAMES

_TWO_PI = 2.0 * math.pi

#: Responses appended after the per-(pattern, output) triples.
_SCALAR_RESPONSES = ("error_rate", "min_margin")

#: Relative slack on the grid bounds check: queries numerically *on*
#: the boundary must not be rejected.
_BOUNDS_RTOL = 1e-9


def response_names(record: Mapping[str, Any]) -> List[str]:
    """Deterministic response layout of one characterization record."""
    names = []
    for pattern in sorted(record["patterns"]):
        row = record["patterns"][pattern]
        for output in sorted(k for k in row if k != "correct"):
            for quantity in ("re", "im", "margin"):
                names.append(f"{pattern}.{output}.{quantity}")
    names.extend(_SCALAR_RESPONSES)
    return names


def response_vector(record: Mapping[str, Any],
                    names: Sequence[str]) -> np.ndarray:
    """Flatten one record into the response vector."""
    vector = np.empty(len(names))
    for i, name in enumerate(names):
        if name in _SCALAR_RESPONSES:
            vector[i] = float(record[name])
            continue
        pattern, output, quantity = name.split(".")
        vector[i] = float(record["patterns"][pattern][output][quantity])
    return vector


class _SurrogateBase:
    """Shared query-side surface of both model kinds."""

    kind = "base"

    def __init__(self, gate: str, tier: str, axis_names: Sequence[str],
                 resp_names: Sequence[str],
                 residual_threshold: float,
                 meta: Optional[Dict[str, Any]] = None):
        self.gate = gate
        self.tier = tier
        self.axis_names = list(axis_names)
        self.response_names = list(resp_names)
        self.residual_threshold = float(residual_threshold)
        self.meta: Dict[str, Any] = dict(meta or {})
        self._index = {name: i for i, name in enumerate(self.response_names)}
        self._build_case_slots()

    # -- decoding -----------------------------------------------------------

    def _build_case_slots(self) -> None:
        """Precompute response indices per (pattern, output) so the hot
        :meth:`query_case` path does no string work."""
        patterns: Dict[str, List[str]] = {}
        for name in self.response_names:
            if name in _SCALAR_RESPONSES:
                continue
            pattern, output, _ = name.split(".")
            outputs = patterns.setdefault(pattern, [])
            if output not in outputs:
                outputs.append(output)
        self._arity = len(next(iter(patterns))) if patterns else 0
        zeros_key = "0" * self._arity
        idx = self._index
        self._case_slots: Dict[str, List[tuple]] = {}
        for pattern, outputs in patterns.items():
            slots = []
            for output in sorted(outputs):
                slots.append((
                    output,
                    idx[f"{pattern}.{output}.re"],
                    idx[f"{pattern}.{output}.im"],
                    idx[f"{pattern}.{output}.margin"],
                    idx[f"{zeros_key}.{output}.re"],
                    idx[f"{zeros_key}.{output}.im"],
                ))
            self._case_slots[pattern] = slots
        self._error_rate_idx = idx["error_rate"]
        self._min_margin_idx = idx["min_margin"]

    def query(self, point: Mapping[str, float]) -> np.ndarray:
        raise NotImplementedError

    def query_responses(self, point: Mapping[str, float]
                        ) -> Dict[str, float]:
        """Named response values at a point (diagnostics-friendly)."""
        vector = self.query(point)
        return {name: float(vector[i])
                for i, name in enumerate(self.response_names)}

    def query_case(self, bits: Sequence[int],
                   point: Optional[Mapping[str, float]] = None
                   ) -> Dict[str, Any]:
        """Answer one gate case in :func:`run_gate_case`'s result shape.

        The logic value is re-decoded from the interpolated envelope
        against the interpolated all-zeros reference -- the same
        detection semantics as the real tiers, so a surrogate answer
        and a network answer agree wherever the fit is faithful.
        """
        from ..core.logic import majority, xor as xor_fn

        key = "".join(str(int(b)) for b in bits)
        slots = self._case_slots.get(key)
        if slots is None:
            raise ValueError(f"pattern {key!r} is not part of the "
                             f"characterized truth table of {self.gate}")
        vector = self.query(point or {})
        is_maj = self.gate == "maj3"
        outputs: Dict[str, Dict[str, float]] = {}
        normalized: List[float] = []
        logic_values = []
        for name, i_re, i_im, i_margin, i_zre, i_zim in slots:
            re = float(vector[i_re])
            im = float(vector[i_im])
            amplitude = math.hypot(re, im)
            phase = math.atan2(im, re)
            ref_re = float(vector[i_zre])
            ref_im = float(vector[i_zim])
            ref_amplitude = math.hypot(ref_re, ref_im)
            level = amplitude / max(ref_amplitude, 1e-30)
            if is_maj:
                delta = (phase - math.atan2(ref_im, ref_re)) % _TWO_PI
                distance = min(delta, _TWO_PI - delta)
                logic = 0 if distance <= math.pi / 2.0 else 1
            else:
                # XOR convention: amplitude above threshold decodes 0.
                logic = 0 if level >= 0.5 else 1
            logic_values.append(logic)
            normalized.append(level)
            outputs[name] = {"logic": logic, "amplitude": amplitude,
                             "phase": phase,
                             "margin": float(vector[i_margin])}
        expected = majority(*bits) if is_maj else xor_fn(*bits)
        return {
            "gate": self.gate, "tier": "surrogate",
            "bits": [int(b) for b in bits],
            "outputs": outputs, "normalized": normalized,
            "expected": expected,
            "correct": all(v == expected for v in logic_values),
            "fanout_matched": len(set(logic_values)) == 1,
            "surrogate": {
                "source_tier": self.tier,
                "dataset": self.meta.get("dataset_id"),
                "error_rate": float(vector[self._error_rate_idx]),
                "min_margin": float(vector[self._min_margin_idx]),
            },
        }

    # -- persistence --------------------------------------------------------

    def _meta_payload(self) -> Dict[str, Any]:
        return {"kind": self.kind, "gate": self.gate, "tier": self.tier,
                "axis_names": self.axis_names,
                "response_names": self.response_names,
                "residual_threshold": self.residual_threshold,
                "meta": self.meta}

    def _arrays(self) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def save(self, path: str) -> None:
        """Atomic single-file ``.npz`` snapshot of the fitted model."""
        arrays = dict(self._arrays())
        arrays["meta"] = np.asarray(json.dumps(self._meta_payload()))
        atomic_write(path, lambda fh: np.savez(fh, **arrays))


class MultilinearSurrogate(_SurrogateBase):
    """Multilinear interpolation on the full characterization grid."""

    kind = "multilinear"

    def __init__(self, gate: str, tier: str, axis_names: Sequence[str],
                 axis_values: Sequence[np.ndarray], table: np.ndarray,
                 residual: np.ndarray, resp_names: Sequence[str],
                 residual_threshold: float = 0.25,
                 meta: Optional[Dict[str, Any]] = None):
        super().__init__(gate, tier, axis_names, resp_names,
                         residual_threshold, meta)
        self.axis_values = [np.asarray(v, dtype=float)
                            for v in axis_values]
        self.table = np.asarray(table, dtype=float)
        self.residual = np.asarray(residual, dtype=float)
        # Hot-path precomputation: python-scalar axis lists for bisect,
        # flat strides for corner addressing, python-float residuals.
        self._axes = [v.tolist() for v in self.axis_values]
        self._bounds = []
        for values in self._axes:
            lo, hi = values[0], values[-1]
            tol = _BOUNDS_RTOL * max(abs(lo), abs(hi), 1.0)
            self._bounds.append((lo - tol, hi + tol))
        shape = tuple(len(v) for v in self._axes)
        n_resp = len(self.response_names)
        if self.table.shape != shape + (n_resp,):
            raise ValueError(f"table shape {self.table.shape} does not "
                             f"match grid {shape} x {n_resp} responses")
        strides = []
        stride = 1
        for n in reversed(shape):
            strides.append(stride)
            stride *= n
        self._strides = list(reversed(strides))
        self._flat = np.ascontiguousarray(
            self.table.reshape(-1, n_resp))
        self._residual_flat = self.residual.reshape(-1).tolist()

    def query(self, point: Mapping[str, float]) -> np.ndarray:
        """Interpolated response vector at ``point``.

        Raises :class:`SurrogateDomainError` outside the grid bounds or
        where the leave-one-out residual of the enclosing cell exceeds
        the threshold.
        """
        base = 0
        active: List[tuple] = []
        for k, name in enumerate(self.axis_names):
            value = point.get(name)
            x = 0.0 if value is None else float(value)
            values = self._axes[k]
            lo, hi = self._bounds[k]
            if x < lo or x > hi:
                raise SurrogateDomainError(
                    self.gate, "bounds",
                    f"{name}={x:.6g} outside the characterized range "
                    f"[{values[0]:.6g}, {values[-1]:.6g}]",
                    point=dict(point))
            n = len(values)
            if n == 1:
                continue
            if x <= values[0]:
                i, t = 0, 0.0
            elif x >= values[-1]:
                i, t = n - 2, 1.0
            else:
                i = bisect.bisect_right(values, x) - 1
                if i > n - 2:
                    i = n - 2
                t = (x - values[i]) / (values[i + 1] - values[i])
            base += i * self._strides[k]
            if t > 0.0:
                active.append((self._strides[k], t))

        corners = [base]
        weights = [1.0]
        for stride, t in active:
            if t >= 1.0:
                corners = [c + stride for c in corners]
                continue
            corners = corners + [c + stride for c in corners]
            weights = [w * (1.0 - t) for w in weights] \
                + [w * t for w in weights]

        residual_flat = self._residual_flat
        worst = max(residual_flat[c] for c in corners)
        if worst > self.residual_threshold:
            raise SurrogateDomainError(
                self.gate, "residual",
                f"leave-one-out residual {worst:.3g} around the query "
                f"exceeds the threshold {self.residual_threshold:.3g}",
                point=dict(point))
        flat = self._flat
        if len(corners) == 1:
            return flat[corners[0]].copy()
        return np.asarray(weights) @ flat[corners]

    def _arrays(self) -> Dict[str, np.ndarray]:
        arrays = {"table": self.table, "residual": self.residual}
        for k, values in enumerate(self.axis_values):
            arrays[f"axis{k}"] = values
        return arrays


class RbfSurrogate(_SurrogateBase):
    """Gaussian RBF + ridge fit for scattered characterization points."""

    kind = "rbf"

    def __init__(self, gate: str, tier: str, axis_names: Sequence[str],
                 points: np.ndarray, weights: np.ndarray,
                 residual: np.ndarray, resp_names: Sequence[str],
                 scale_lo: np.ndarray, scale_hi: np.ndarray,
                 epsilon: float, neighbor_radius: float,
                 residual_threshold: float = 0.25,
                 meta: Optional[Dict[str, Any]] = None):
        super().__init__(gate, tier, axis_names, resp_names,
                         residual_threshold, meta)
        self.points = np.asarray(points, dtype=float)       # (N, d) unit box
        self.weights = np.asarray(weights, dtype=float)     # (N, R)
        self.residual = np.asarray(residual, dtype=float)   # (N,)
        self.scale_lo = np.asarray(scale_lo, dtype=float)   # (d,)
        self.scale_hi = np.asarray(scale_hi, dtype=float)
        self.epsilon = float(epsilon)
        self.neighbor_radius = float(neighbor_radius)
        span = self.scale_hi - self.scale_lo
        self._span = np.where(span > 0, span, 1.0)

    def _normalize(self, point: Mapping[str, float]) -> np.ndarray:
        x = np.empty(len(self.axis_names))
        for k, name in enumerate(self.axis_names):
            value = point.get(name)
            x[k] = 0.0 if value is None else float(value)
        lo, hi = self.scale_lo, self.scale_hi
        tol = _BOUNDS_RTOL * np.maximum(np.maximum(np.abs(lo),
                                                   np.abs(hi)), 1.0)
        if np.any(x < lo - tol) or np.any(x > hi + tol):
            k = int(np.argmax(np.maximum(lo - x, x - hi)))
            raise SurrogateDomainError(
                self.gate, "bounds",
                f"{self.axis_names[k]}={x[k]:.6g} outside the "
                f"characterized range [{lo[k]:.6g}, {hi[k]:.6g}]",
                point=dict(point))
        return (x - lo) / self._span

    def query(self, point: Mapping[str, float]) -> np.ndarray:
        u = self._normalize(point)
        delta = self.points - u
        dist_sq = np.einsum("ij,ij->i", delta, delta)
        nearest = int(np.argmin(dist_sq))
        if dist_sq[nearest] > self.neighbor_radius ** 2:
            raise SurrogateDomainError(
                self.gate, "sparse",
                f"no characterized sample within {self.neighbor_radius:.3g} "
                "(unit box) of the query", point=dict(point))
        if self.residual[nearest] > self.residual_threshold:
            raise SurrogateDomainError(
                self.gate, "residual",
                f"leave-one-out residual {self.residual[nearest]:.3g} at "
                "the nearest sample exceeds the threshold "
                f"{self.residual_threshold:.3g}", point=dict(point))
        phi = np.exp(-dist_sq / (self.epsilon ** 2))
        return phi @ self.weights

    def _arrays(self) -> Dict[str, np.ndarray]:
        return {"points": self.points, "weights": self.weights,
                "residual": self.residual, "scale_lo": self.scale_lo,
                "scale_hi": self.scale_hi,
                "epsilon": np.asarray(self.epsilon),
                "neighbor_radius": np.asarray(self.neighbor_radius)}


# -- fitting ----------------------------------------------------------------

def _normalized(values: np.ndarray) -> np.ndarray:
    """Column-normalised |values| scale (floor 1e-9) per response."""
    return np.maximum(np.abs(values).max(axis=0), 1e-9)


def _grid_loo_residual(table: np.ndarray,
                       axis_values: Sequence[np.ndarray]) -> np.ndarray:
    """Per-grid-point leave-one-out residual of the multilinear fit.

    Removing an interior grid sample, the multilinear model predicts
    it by linear interpolation between its two axis neighbours; the
    normalised worst-case mismatch over responses and axes is the
    sample's LOO residual.  Boundary samples inherit their nearest
    interior neighbour's residual (conservative: the boundary cannot
    be cross-validated).  Axes with < 3 samples contribute nothing.
    """
    n_resp = table.shape[-1]
    scale = _normalized(table.reshape(-1, n_resp))
    residual = np.zeros(table.shape[:-1])
    for k, values in enumerate(axis_values):
        n = len(values)
        if n < 3:
            continue
        v = np.moveaxis(table, k, 0)
        t = ((values[1:-1] - values[:-2])
             / (values[2:] - values[:-2]))
        t = t.reshape((n - 2,) + (1,) * (v.ndim - 1))
        predicted = v[:-2] * (1.0 - t) + v[2:] * t
        err = (np.abs(v[1:-1] - predicted) / scale).max(axis=-1)
        full = np.empty(v.shape[:-1])
        full[1:-1] = err
        full[0] = err[0]
        full[-1] = err[-1]
        residual = np.maximum(residual, np.moveaxis(full, 0, k))
    return residual


def fit_surrogate(records: Iterable[Mapping[str, Any]],
                  kind: str = "multilinear",
                  residual_threshold: float = 0.25,
                  ridge: float = 1e-8,
                  meta: Optional[Dict[str, Any]] = None) -> _SurrogateBase:
    """Fit a surrogate over characterization records.

    ``kind="multilinear"`` requires the records to cover the full axis
    grid (every combination of observed axis values); ``kind="rbf"``
    accepts any scattered point set.  Fit wall time lands in the
    ``surrogate.fit_ms`` gauge and the returned model's metadata.
    """
    t0 = time.perf_counter()
    records = list(records)
    if not records:
        raise ValueError("cannot fit a surrogate on zero records")
    first = records[0]
    gate = first["gate"]
    tier = first["tier"]
    names = response_names(first)
    axis_names = [name for name in AXIS_NAMES if name in first["point"]]
    points = np.array([[float(r["point"][a]) for a in axis_names]
                       for r in records])
    values = np.array([response_vector(r, names) for r in records])

    if kind == "multilinear":
        model = _fit_multilinear(gate, tier, axis_names, points, values,
                                 names, residual_threshold, meta)
    elif kind == "rbf":
        model = _fit_rbf(gate, tier, axis_names, points, values, names,
                         residual_threshold, ridge, meta)
    else:
        raise ValueError(f"unknown surrogate kind {kind!r}; choose "
                         "'multilinear' or 'rbf'")
    fit_ms = (time.perf_counter() - t0) * 1e3
    model.meta["fit_ms"] = round(fit_ms, 3)
    model.meta["n_records"] = len(records)
    if obs.enabled():
        obs.gauge("surrogate.fit_ms").set(round(fit_ms, 3))
        obs.counter("surrogate.fit").inc()
    return model


def _fit_multilinear(gate, tier, axis_names, points, values, names,
                     residual_threshold, meta) -> MultilinearSurrogate:
    axis_values = [np.unique(points[:, k])
                   for k in range(len(axis_names))]
    shape = tuple(len(v) for v in axis_values)
    expected = int(np.prod(shape))
    if len(points) != expected:
        raise ValueError(
            f"multilinear fit needs the full {shape} grid "
            f"({expected} points), got {len(points)}; use kind='rbf' "
            "for scattered records")
    table = np.full(shape + (values.shape[1],), np.nan)
    for row, vector in zip(points, values):
        idx = tuple(int(np.searchsorted(axis_values[k], row[k]))
                    for k in range(len(axis_names)))
        table[idx] = vector
    if np.isnan(table).any():
        raise ValueError("characterization grid has holes (duplicate "
                         "corners elsewhere?); use kind='rbf'")
    residual = _grid_loo_residual(table, axis_values)
    return MultilinearSurrogate(
        gate, tier, axis_names, axis_values, table, residual, names,
        residual_threshold=residual_threshold, meta=meta)


def _fit_rbf(gate, tier, axis_names, points, values, names,
             residual_threshold, ridge, meta) -> RbfSurrogate:
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    unit = (points - lo) / span
    n = len(unit)
    delta = unit[:, None, :] - unit[None, :, :]
    dist_sq = np.einsum("ijk,ijk->ij", delta, delta)
    # Nearest-neighbour spacing sets both the kernel width and the
    # sparse-domain radius.
    off_diag = dist_sq + np.eye(n) * 1e9
    nn = np.sqrt(off_diag.min(axis=1))
    spacing = float(np.median(nn)) if n > 1 else 1.0
    epsilon = max(2.0 * spacing, 1e-6)
    neighbor_radius = max(1.5 * float(nn.max()) if n > 1 else 1.0, 1e-6)
    kernel = np.exp(-dist_sq / (epsilon ** 2))
    a = kernel + ridge * np.eye(n)
    weights = np.linalg.solve(a, values)
    # Exact ridge leave-one-out residuals via the hat matrix.
    hat = kernel @ np.linalg.inv(a)
    fitted = kernel @ weights
    denom = np.maximum(1.0 - np.diag(hat), 1e-9)[:, None]
    loo = np.abs(values - fitted) / denom
    residual = (loo / _normalized(values)).max(axis=1)
    return RbfSurrogate(
        gate, tier, axis_names, unit, weights, residual, names,
        scale_lo=lo, scale_hi=hi, epsilon=epsilon,
        neighbor_radius=neighbor_radius,
        residual_threshold=residual_threshold, meta=meta)


def load_model(path: str) -> _SurrogateBase:
    """Load a saved surrogate (dispatching on its ``kind``)."""
    with np.load(path, allow_pickle=False) as data:
        payload = json.loads(str(data["meta"][()]))
        kind = payload["kind"]
        common = dict(
            gate=payload["gate"], tier=payload["tier"],
            axis_names=payload["axis_names"],
            resp_names=payload["response_names"],
            residual_threshold=payload["residual_threshold"],
            meta=payload.get("meta") or {})
        if kind == "multilinear":
            axis_values = []
            k = 0
            while f"axis{k}" in data:
                axis_values.append(data[f"axis{k}"])
                k += 1
            return MultilinearSurrogate(
                axis_values=axis_values, table=data["table"],
                residual=data["residual"], **common)
        if kind == "rbf":
            return RbfSurrogate(
                points=data["points"], weights=data["weights"],
                residual=data["residual"], scale_lo=data["scale_lo"],
                scale_hi=data["scale_hi"],
                epsilon=float(data["epsilon"]),
                neighbor_radius=float(data["neighbor_radius"]),
                **common)
    raise ValueError(f"unknown surrogate kind {kind!r} in {path}")
