"""repro.surrogate: characterization store + instant surrogate tier.

The OpenRAM-style characterize-then-lookup flow over the triangle FO2
gates:

1. **Characterize** (:mod:`repro.surrogate.store`,
   :mod:`repro.surrogate.jobs`) -- sweep the ablation axes (phase
   noise, frequency detuning, geometry jitter, temperature) through
   the runtime engine into a versioned, content-addressed on-disk
   dataset with a manifest and incremental append.
2. **Fit** (:mod:`repro.surrogate.model`) -- pure-NumPy multilinear
   (grid) or Gaussian-RBF/ridge (scattered) interpolation over the
   per-pattern output envelopes, margins and truth-table error rate,
   with ``save``/``load`` round-trip to a single ``.npz``.
3. **Query** (:mod:`repro.surrogate.tier`) -- microsecond gate-case
   answers guarded by grid-bounds and leave-one-out-residual checks;
   domain misses raise :class:`repro.errors.SurrogateDomainError` and
   the degradation ladder re-answers from the network tier with
   ``degraded_from="surrogate"`` recorded.

Quickstart
----------
>>> from repro.surrogate import (CharacterizationStore, characterize,
...                              fit_surrogate, register)
>>> store = CharacterizationStore("/tmp/char")      # doctest: +SKIP
>>> ds = store.dataset("maj3")                      # doctest: +SKIP
>>> records = characterize(ds)                      # doctest: +SKIP
>>> model = fit_surrogate(records.values())         # doctest: +SKIP
>>> model.save(store.model_path("maj3"))            # doctest: +SKIP
>>> register(model)                                 # doctest: +SKIP
>>> # run_gate_case(..., tier="surrogate") now answers in microseconds

See ``docs/SURROGATE.md``.
"""

from ..errors import SurrogateDomainError
from .jobs import (
    AXIS_NAMES,
    build_gate,
    characterize_point,
    thermal_phase_sigma,
)
from .model import (
    MultilinearSurrogate,
    RbfSurrogate,
    fit_surrogate,
    load_model,
    response_names,
    response_vector,
)
from .store import (
    DEFAULT_AXES,
    DEFAULT_ROOT,
    AxisSpec,
    CharacterizationDataset,
    CharacterizationStore,
    characterize,
    dataset_id,
    point_key,
)
from .tier import (
    clear_registry,
    evaluate_surrogate,
    get_model,
    model_path,
    query_point,
    register,
    surrogate_root,
)

__all__ = [
    "AXIS_NAMES",
    "AxisSpec",
    "CharacterizationDataset",
    "CharacterizationStore",
    "DEFAULT_AXES",
    "DEFAULT_ROOT",
    "MultilinearSurrogate",
    "RbfSurrogate",
    "SurrogateDomainError",
    "build_gate",
    "characterize",
    "characterize_point",
    "clear_registry",
    "dataset_id",
    "evaluate_surrogate",
    "fit_surrogate",
    "get_model",
    "load_model",
    "model_path",
    "point_key",
    "query_point",
    "register",
    "response_names",
    "response_vector",
    "surrogate_root",
    "thermal_phase_sigma",
]
