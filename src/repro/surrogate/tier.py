"""The surrogate as a fidelity tier: model registry + instant queries.

``evaluate_surrogate`` is the entry point the degradation ladder
(:func:`repro.micromag.experiments.run_gate_case`) and the serving
tier call.  Models come from an in-process registry (fast path for
tests, benchmarks and the serve loop) or are loaded lazily from the
characterization store root -- ``$REPRO_SURROGATE_DIR`` if set, else
``.repro_characterization/<gate>.surrogate.npz``.

Every query is metered (``surrogate.hit`` / ``surrogate.fallback``
counters, ``surrogate.query_ms`` latency histogram) and passes the
``surrogate.query`` fault-injection site, so chaos drills can knock
out the tier's top rung on demand.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Mapping, Optional, Sequence

from .. import obs
from ..errors import SurrogateDomainError
from ..resilience import faults
from .store import DEFAULT_ROOT

#: In-process model registry: gate name -> fitted surrogate.
_REGISTRY: Dict[str, Any] = {}

#: Query-latency histogram buckets [ms] -- the tier's whole point is
#: sub-millisecond answers, so the resolution is microsecond-scale.
QUERY_MS_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                    5.0, 10.0)


def register(model: Any) -> None:
    """Install a fitted surrogate for its gate, in-process."""
    _REGISTRY[model.gate] = model


def clear_registry() -> None:
    """Drop every registered model (tests)."""
    _REGISTRY.clear()


def surrogate_root(root: Optional[str] = None) -> str:
    """The characterization-store root models are loaded from."""
    if root:
        return root
    return os.environ.get("REPRO_SURROGATE_DIR", DEFAULT_ROOT)


def model_path(gate: str, root: Optional[str] = None) -> str:
    """Default on-disk location of a gate's fitted surrogate."""
    return os.path.join(surrogate_root(root), f"{gate}.surrogate.npz")


def get_model(gate: str, root: Optional[str] = None) -> Any:
    """A fitted surrogate for ``gate``: registry first, then disk.

    Raises :class:`SurrogateDomainError` (reason ``"unfitted"``) when
    neither has one -- the ladder treats that exactly like any other
    domain miss and answers from the network tier instead.
    """
    model = _REGISTRY.get(gate)
    if model is not None:
        return model
    path = model_path(gate, root)
    if not os.path.exists(path):
        raise SurrogateDomainError(
            gate, "unfitted",
            f"no surrogate model at {path}; run "
            f"`python -m repro characterize {gate}` first")
    from .model import load_model

    model = load_model(path)
    _REGISTRY[gate] = model
    return model


def query_point(phase_noise: float = 0.0,
                frequency: Optional[float] = None,
                geometry_jitter: float = 0.0,
                temperature: float = 0.0) -> Dict[str, float]:
    """Map :func:`run_gate_case`-style knobs onto characterization axes.

    ``frequency`` [Hz] becomes relative detuning from the paper's
    operating point; absent knobs sit at their nominal (zero) values,
    which the model clamps to the nearest characterized value on
    single-point axes.
    """
    from ..core.layout import PAPER_FREQUENCY

    point = {"phase_noise": float(phase_noise),
             "geometry_jitter": float(geometry_jitter),
             "temperature": float(temperature)}
    if frequency is not None:
        point["frequency_detune"] = float(frequency) / PAPER_FREQUENCY - 1.0
    return point


def evaluate_surrogate(gate: str, bits: Sequence[int],
                       point: Optional[Mapping[str, float]] = None,
                       root: Optional[str] = None) -> Dict[str, Any]:
    """Answer one gate case from the fitted surrogate.

    Returns the same result shape as :func:`run_gate_case` with
    ``tier="surrogate"`` plus a ``"surrogate"`` provenance block.
    Raises :class:`SurrogateDomainError` when the guardrails reject the
    query (unfitted / out of bounds / residual too high / sparse) --
    metered as ``surrogate.fallback`` -- and :class:`FaultInjected`
    when a chaos plan has armed the ``surrogate.query`` site.
    """
    faults.trip("surrogate.query")
    metered = obs.enabled()
    t0 = time.perf_counter() if metered else 0.0
    try:
        model = get_model(gate, root)
        case = model.query_case(bits, point or {})
    except SurrogateDomainError:
        if metered:
            obs.counter("surrogate.fallback").inc()
        raise
    if metered:
        obs.counter("surrogate.hit").inc()
        obs.histogram("surrogate.query_ms", buckets=QUERY_MS_BUCKETS) \
            .observe((time.perf_counter() - t0) * 1e3)
    return case
