"""Placer: netlist -> 2-D triangle-gate fabric with routed waveguides.

Maps a validated :class:`~repro.circuits.netlist.Netlist` onto a
column-per-stage fabric.  All placement coordinates are expressed in
**multiples of the design wavelength** (lambda = 55 nm in the paper) so
every figure in a placement report reads directly against the paper's
d1..d4 dimensioning, and gate origins snap to integer lambda -- a
translated gate keeps all its internal path lengths, so the phase
design (Section III-A) survives placement by construction.

Structure (standard-cell style):

* gates are levelised (stage = longest driver chain) and each level
  becomes a **column**; rows within a column are ordered by the
  barycenter of their fan-in rows to shorten wires;
* physical gates (MAJ3/XOR and their derived variants) take their
  footprint from the actual :mod:`repro.core.layout` geometry;
  repeaters and splitters use compact synthetic footprints;
* wires enter a cell from the **left edge** and leave from the
  **right edge** (the edge-to-transducer stub is the cell's internal
  detail); routing is Manhattan: a dedicated vertical track in the
  channel left of the sink column, plus an over-the-fabric corridor
  for wires spanning more than one channel.  Every wire owns its
  tracks, so wires never overlap -- they only *cross* (H against V),
  and crossings are what the design-rule checker polices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..circuits.netlist import Netlist
from ..core.layout import (
    GateDimensions,
    GateLayout,
    maj3_layout,
    segment_length,
    xor_layout,
)
from .drc import DesignRules

Point = Tuple[float, float]

#: Netlist gate type -> (layout kind, invert d4) for physical gates.
_PHYSICAL = {
    "MAJ3": ("maj3", False),
    "AND": ("maj3", False),
    "OR": ("maj3", False),
    "NMAJ3": ("maj3", True),
    "NAND": ("maj3", True),
    "NOR": ("maj3", True),
    "XOR": ("xor", False),
    "XNOR": ("xor", False),
    "NOT": ("xor", False),   # XOR with a constant-1 control wave
}

#: Input-pin node names per layout kind, in netlist port order.
_INPUT_NODES = {"maj3": ("I1", "I2", "I3"), "xor": ("I1", "I2")}

#: Synthetic footprints (width, height) in lambda for non-interference
#: cells: a repeater is one ME cell plus a stub; splitters are passive
#: Y-branches.
_SYNTHETIC_FOOTPRINT = {
    "REPEATER": (4.0, 4.0),
    "SPLITTER2": (4.0, 6.0),
    "SPLITTER3": (4.0, 8.0),
}

#: Width of the virtual I/O pin columns [lambda].
_PIN_COLUMN_WIDTH = 1.0


def _even(v: float) -> float:
    """Nearest even integer at or near ``v`` (cell-edge access grid)."""
    return 2.0 * math.floor(v / 2.0 + 0.5)


def _odd(v: float) -> float:
    """Odd integer nearest below ``v + 1`` (output access grid)."""
    return 2.0 * math.floor(v / 2.0) + 1.0


@dataclass(frozen=True)
class PlacedGate:
    """One gate instance fixed on the fabric.

    Coordinates are in lambda multiples; ``origin`` is the lower-left
    corner of the bounding box.  ``layout`` (physical gates only) is
    the metre-space :class:`~repro.core.layout.GateLayout` translated
    to the placed position, ready for phase-rule checking.
    """

    name: str
    gate_type: str
    column: int
    row: int
    origin: Point
    width: float
    height: float
    in_pins: Tuple[Point, ...]
    out_pins: Tuple[Point, ...]
    layout: Optional[GateLayout] = None

    @property
    def bbox(self) -> Tuple[float, float, float, float]:
        """``(x_min, y_min, x_max, y_max)`` in lambda."""
        x, y = self.origin
        return (x, y, x + self.width, y + self.height)


@dataclass(frozen=True)
class Wire:
    """One routed net connection as a Manhattan polyline [lambda]."""

    net: str
    source: str          # driving gate name, or "<input>" for a PI
    sink: str            # consuming gate name, or "<output>" for a PO
    points: Tuple[Point, ...]

    @property
    def segments(self) -> List[Tuple[Point, Point]]:
        return list(zip(self.points, self.points[1:]))

    @property
    def length(self) -> float:
        return sum(abs(b[0] - a[0]) + abs(b[1] - a[1])
                   for a, b in self.segments)


@dataclass
class Placement:
    """A fully placed and routed fabric (lambda coordinates)."""

    netlist: Netlist
    rules: DesignRules
    gates: Dict[str, PlacedGate]
    wires: List[Wire]
    input_pins: Dict[str, Point]
    output_pins: Dict[str, Point]
    width: float
    height: float

    @property
    def area_lambda2(self) -> float:
        return self.width * self.height

    @property
    def area_um2(self) -> float:
        lam_um = self.rules.wavelength * 1e6
        return self.area_lambda2 * lam_um * lam_um

    def total_wire_length(self) -> float:
        return sum(w.length for w in self.wires)

    def stats(self) -> Dict[str, object]:
        """Placement summary for reports and the CLI."""
        kinds: Dict[str, int] = {}
        for gate in self.gates.values():
            kinds[gate.gate_type] = kinds.get(gate.gate_type, 0) + 1
        columns = max((g.column for g in self.gates.values()), default=-1) + 1
        return {
            "gates": len(self.gates),
            "gate_kinds": dict(sorted(kinds.items())),
            "columns": columns,
            "wires": len(self.wires),
            "wire_length_lambda": round(self.total_wire_length(), 3),
            "width_lambda": self.width,
            "height_lambda": self.height,
            "area_lambda2": round(self.area_lambda2, 3),
            "area_um2": round(self.area_um2, 6),
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form (for reports and the service)."""
        return {
            "name": self.netlist.name,
            "rules": self.rules.to_params(),
            "stats": self.stats(),
            "gates": {
                name: {
                    "type": g.gate_type,
                    "column": g.column,
                    "row": g.row,
                    "origin": list(g.origin),
                    "size": [g.width, g.height],
                }
                for name, g in sorted(self.gates.items())
            },
            "wires": [
                {"net": w.net, "source": w.source, "sink": w.sink,
                 "points": [list(p) for p in w.points],
                 "length_lambda": round(w.length, 3)}
                for w in self.wires
            ],
            "input_pins": {k: list(v) for k, v in self.input_pins.items()},
            "output_pins": {k: list(v) for k, v in self.output_pins.items()},
        }


def _gate_dimensions(rules: DesignRules, kind: str,
                     inverted: bool) -> GateDimensions:
    """Instantiate the rule set's d-multiples as metre dimensions."""
    lam = rules.wavelength
    if kind == "maj3":
        return GateDimensions(
            wavelength=lam, width=rules.width,
            d1=segment_length(rules.d1_multiple, lam),
            d2=segment_length(rules.d2_multiple, lam),
            d3=segment_length(rules.d3_multiple, lam),
            d4=segment_length(rules.d4_multiple, lam, inverted=inverted),
            stem=segment_length(rules.stem_multiple, lam),
        )
    return GateDimensions(
        wavelength=lam, width=rules.width,
        d1=segment_length(rules.d1_multiple, lam),
        d2_xor=rules.xor_output_distance,
        stem=segment_length(rules.stem_multiple, lam),
    )


def _build_cell(name: str, gate_type: str, rules: DesignRules
                ) -> Tuple[float, float, List[float], List[float],
                           Optional[GateLayout]]:
    """Footprint + pin offsets for one gate type.

    Returns ``(width, height, in_pin_ys, out_pin_ys, layout)`` with the
    layout still at its native origin (metre space).  Pin ys are offsets
    from the cell's lower edge; inputs sit on the left edge, outputs on
    the right edge.
    """
    lam = rules.wavelength
    if gate_type in _PHYSICAL:
        kind, inverted = _PHYSICAL[gate_type]
        dims = _gate_dimensions(rules, kind, inverted)
        layout = maj3_layout(dims) if kind == "maj3" else xor_layout(dims)
        x0, y0, x1, y1 = layout.bounding_box()
        width = math.ceil((x1 - x0) / lam)
        height = math.ceil((y1 - y0) / lam)
        in_ys = [(layout.nodes[node][1] - y0) / lam
                 for node in _INPUT_NODES[kind]]
        out_ys = [(layout.nodes[node][1] - y0) / lam
                  for node in ("O1", "O2")]
        return float(width), float(height), in_ys, out_ys, layout
    width, height = _SYNTHETIC_FOOTPRINT[gate_type]
    n_out = {"REPEATER": 1, "SPLITTER2": 2, "SPLITTER3": 3}[gate_type]
    in_ys = [height / 2.0]
    out_ys = [height * (k + 1) / (n_out + 1) for k in range(n_out)]
    return width, height, in_ys, out_ys, None


def _levelize(netlist: Netlist) -> Dict[str, int]:
    """Gate -> pipeline stage (longest driver chain, stages from 0)."""
    driver_of: Dict[str, str] = {}
    for name, inst in netlist.gates.items():
        for net in inst.outputs:
            if net is not None:
                driver_of[net] = name
    levels: Dict[str, int] = {}
    for name in netlist.topological_order():
        inst = netlist.gates[name]
        level = 0
        for net in inst.inputs:
            drv = driver_of.get(net)
            if drv is not None:
                level = max(level, levels[drv] + 1)
        levels[name] = level
    return levels


def place(netlist: Netlist,
          rules: Optional[DesignRules] = None) -> Placement:
    """Place and route a netlist onto the triangle-gate fabric.

    The netlist is validated first (typed
    :class:`repro.errors.NetlistError` on structural problems).  The
    returned :class:`Placement` is geometrically self-consistent but
    **not** yet design-rule checked -- run
    :func:`repro.compiler.drc.check` (the compiler driver does).
    """
    rules = rules if rules is not None else DesignRules()
    netlist.validate()

    levels = _levelize(netlist)
    n_cols = max(levels.values(), default=-1) + 1
    columns: List[List[str]] = [[] for _ in range(n_cols)]
    for name, level in levels.items():
        columns[level].append(name)
    for col in columns:
        col.sort()

    # Cells: footprint + pin offsets per gate.
    cells = {name: _build_cell(name, inst.gate_type, rules)
             for name, inst in netlist.gates.items()}

    driver_of: Dict[str, Tuple[str, int]] = {}   # net -> (gate, out index)
    for name, inst in netlist.gates.items():
        for idx, net in enumerate(inst.outputs):
            if net is not None:
                driver_of[net] = (name, idx)

    # Barycenter row ordering, one left-to-right pass: order a column by
    # the mean row of its drivers in earlier columns.
    row_of: Dict[str, int] = {}
    pi_row = {net: i for i, net in enumerate(netlist.primary_inputs)}
    for ci, col in enumerate(columns):
        def _barycenter(name: str) -> float:
            refs: List[float] = []
            for net in netlist.gates[name].inputs:
                if net in pi_row:
                    refs.append(float(pi_row[net]))
                elif net in driver_of:
                    refs.append(float(row_of.get(driver_of[net][0], 0)))
            return sum(refs) / len(refs) if refs else 0.0

        col.sort(key=lambda name: (_barycenter(name), name))
        for ri, name in enumerate(col):
            row_of[name] = ri

    # Channel demand: every wire claims one vertical track in the
    # channel left of its sink column; long wires additionally claim a
    # track in the channel right of their source column and a corridor
    # lane above the fabric.  Channel c sits between columns c and c+1;
    # c = -1 is the input-pin channel, c = n_cols - 1 feeds the output
    # pins.
    def _source_col(net: str) -> int:
        if net in driver_of:
            return levels[driver_of[net][0]]
        return -1   # primary input pin column

    connections: List[Tuple[str, int, str, int]] = []  # net, scol, sink, tcol
    for name, inst in netlist.gates.items():
        for net in inst.inputs:
            connections.append((net, _source_col(net), name, levels[name]))
    for net in netlist.primary_outputs:
        connections.append((net, _source_col(net), "<output>", n_cols))

    channel_tracks: Dict[int, int] = {c: 0 for c in range(-1, n_cols)}
    corridor_lanes = 0
    for net, scol, _sink, tcol in connections:
        channel_tracks[tcol - 1] += 1
        if tcol - scol > 1:
            channel_tracks[scol] += 1
            corridor_lanes += 1

    channel_width = {
        c: max(rules.col_clearance,
               channel_tracks[c] * rules.track_pitch + 2.0)
        for c in channel_tracks
    }

    # Column x extents.
    col_width = [max((cells[name][0] for name in col), default=0.0)
                 for col in columns]
    col_x: List[float] = []
    x = _PIN_COLUMN_WIDTH + channel_width[-1]
    for ci in range(n_cols):
        col_x.append(x)
        x += col_width[ci] + channel_width[ci]
    fabric_width = x + _PIN_COLUMN_WIDTH

    # Row y positions (columns bottom-aligned at y = 0), snapped to
    # integer lambda so translations keep phase lengths exact.
    gates: Dict[str, PlacedGate] = {}
    fabric_top = 0.0
    lam = rules.wavelength
    for ci, col in enumerate(columns):
        y = 0.0
        for name in col:
            width, height, in_ys, out_ys, layout = cells[name]
            inst = netlist.gates[name]
            # Exact stacking: the placer applies the rule deck's
            # clearances verbatim, so an over-tight deck produces a
            # genuine spacing violation instead of being silently
            # rounded up to a legal gap.
            origin = (float(math.ceil(col_x[ci])), y)
            placed_layout = None
            if layout is not None:
                x0, y0, _, _ = layout.bounding_box()
                placed_layout = layout.translated(
                    origin[0] * lam - x0, origin[1] * lam - y0)
            # Access points snap to the absolute parity grid: inputs on
            # even lambda rows, outputs on odd ones, so horizontal runs
            # of the two families are never collinear and crossings
            # stay >= 1 lambda apart.
            in_pins = tuple((origin[0], _even(origin[1] + dy))
                            for dy in in_ys[: len(inst.inputs)])
            out_pins = tuple((origin[0] + width, _odd(origin[1] + dy))
                             for dy in out_ys[: len(inst.outputs)])
            gates[name] = PlacedGate(
                name=name, gate_type=inst.gate_type, column=ci,
                row=row_of[name], origin=origin, width=width,
                height=height, in_pins=in_pins, out_pins=out_pins,
                layout=placed_layout)
            y = origin[1] + height + rules.row_clearance
            fabric_top = max(fabric_top, origin[1] + height)

    pad_top = 2.0 * max(len(netlist.primary_inputs),
                        len(netlist.primary_outputs)) + 1.0
    corridor_base = max(fabric_top, pad_top) + rules.row_clearance

    # I/O pads on odd rows: shares the "output" parity class, which
    # never collides because pad horizontals stay in the outermost
    # channels where no gate output exits.
    input_pins = {
        net: (0.0, 2.0 * i + 1.0)
        for i, net in enumerate(netlist.primary_inputs)
    }
    output_pins = {
        net: (fabric_width, 2.0 * i + 1.0)
        for i, net in enumerate(netlist.primary_outputs)
    }

    # Routing: every wire owns one vertical track in the channel left
    # of its sink; wires spanning multiple channels additionally own a
    # track in the channel right of their source and a horizontal
    # corridor lane above the fabric.  Exclusive tracks mean wires can
    # cross (H against V) but never overlap.
    next_track: Dict[int, int] = {c: 0 for c in channel_tracks}
    corridor_state = {"next": 0}

    def _track_x(channel: int) -> float:
        base = (col_x[channel] + col_width[channel]) if channel >= 0 \
            else _PIN_COLUMN_WIDTH
        xpos = base + 1.0 + next_track[channel] * rules.track_pitch
        next_track[channel] += 1
        return xpos

    def _corridor_y() -> float:
        ypos = corridor_base + 1.0 \
            + corridor_state["next"] * rules.track_pitch
        corridor_state["next"] += 1
        return ypos

    def _pin_point(net: str) -> Tuple[str, Point]:
        if net in driver_of:
            gate, idx = driver_of[net]
            return gate, gates[gate].out_pins[idx]
        return "<input>", input_pins[net]

    def _route(net: str, source: str, sink: str, s: Point, t: Point,
               scol: int, tcol: int) -> Wire:
        track = _track_x(tcol - 1)
        if tcol - scol > 1:
            exit_track = _track_x(scol)
            lane = _corridor_y()
            raw = [s, (exit_track, s[1]), (exit_track, lane),
                   (track, lane), (track, t[1]), t]
        else:
            raw = [s, (track, s[1]), (track, t[1]), t]
        points = [raw[0]]
        for p in raw[1:]:
            if p != points[-1]:
                points.append(p)
        return Wire(net=net, source=source, sink=sink,
                    points=tuple(points))

    wires: List[Wire] = []
    for name, inst in netlist.gates.items():
        placed = gates[name]
        for pin_idx, net in enumerate(inst.inputs):
            source, s = _pin_point(net)
            wires.append(_route(net, source, name, s,
                                placed.in_pins[pin_idx],
                                _source_col(net), levels[name]))
    for net in netlist.primary_outputs:
        source, s = _pin_point(net)
        wires.append(_route(net, source, "<output>", s,
                            output_pins[net], _source_col(net), n_cols))

    corridor_used = max((p[1] for w in wires for p in w.points),
                        default=fabric_top)
    fabric_height = max(fabric_top, corridor_used) + 2.0

    return Placement(netlist=netlist, rules=rules, gates=gates,
                     wires=wires, input_pins=input_pins,
                     output_pins=output_pins,
                     width=float(math.ceil(fabric_width)),
                     height=float(math.ceil(fabric_height)))
