"""Synthesizer front-end: boolean function -> triangle-gate netlist.

Lowers a :class:`~repro.compiler.spec.CircuitSpec` onto the triangle
FO2 gate library (:data:`repro.circuits.netlist.GATE_PORT_COUNTS`):

1. every output definition becomes a simplified expression AST --
   expressions are taken structurally (the user's ``maj(a,b,c)`` IS one
   MAJ3 gate), truth tables are synthesised (parity/majority pattern
   detection first, then Quine-McCluskey minimal sum-of-products);
2. identical sub-expressions are hash-consed into one DAG node, so a
   shared term is computed once and distributed -- the paper's fan-out
   of 2 makes the *second* consumer free;
3. each DAG node's physical copies are planned exactly: a gate natively
   provides two identical outputs (FO2), a primary input provides one
   excitation, and any demand beyond that inserts a SPLITTER2 tree
   (:func:`repro.circuits.components.fanout_chain` economics).

The resulting :class:`~repro.circuits.netlist.Netlist` passes
``validate()`` by construction (single drivers, every net one
consumer, no loops) and is checked exhaustively against the spec's
truth tables before the compiler hands it to the placer.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..circuits.netlist import Netlist
from ..core.logic import input_patterns
from .spec import CircuitSpec, parse_expression

_TABLE_CHARS = frozenset("01")

#: AST node -> netlist gate type for the direct lowerings.
_NODE_GATE = {"and": "AND", "or": "OR", "xor": "XOR", "not": "NOT",
              "maj": "MAJ3"}


# -- AST simplification -------------------------------------------------------------

def _key(tree: Tuple) -> str:
    """Canonical structural key of an AST (for hash-consing)."""
    kind = tree[0]
    if kind == "var":
        return tree[1]
    if kind == "const":
        return str(tree[1])
    return f"{kind}({','.join(_key(sub) for sub in tree[1:])})"


def simplify(tree: Tuple) -> Tuple:
    """Constant-fold and canonicalise an expression AST.

    Folds ``x & 1``, ``x ^ 0``, ``maj(a, b, 1) = a | b`` and kin,
    collapses double negation and idempotent/absorbing duplicates, and
    sorts commutative operands so ``a ^ b`` and ``b ^ a`` hash-cons to
    the same DAG node.
    """
    kind = tree[0]
    if kind in ("var", "const"):
        return tree
    children = [simplify(sub) for sub in tree[1:]]

    if kind == "not":
        child = children[0]
        if child[0] == "const":
            return ("const", 1 - child[1])
        if child[0] == "not":
            return child[1]
        return ("not", child)

    if kind == "maj":
        consts = [c for c in children if c[0] == "const"]
        if len(consts) >= 2:
            total = sum(c[1] for c in consts)
            if total != 1:
                return ("const", 1 if total >= 2 else 0)
            # one 0 and one 1: majority reduces to the remaining input
            return next(c for c in children if c[0] != "const")
        if len(consts) == 1:
            rest = [c for c in children if c[0] != "const"]
            folded = ("or", rest[0], rest[1]) if consts[0][1] == 1 \
                else ("and", rest[0], rest[1])
            return simplify(folded)
        keys = [_key(c) for c in children]
        for i, j in ((0, 1), (0, 2), (1, 2)):
            if keys[i] == keys[j]:   # maj(a, a, b) = a
                return children[i]
        order = sorted(range(3), key=lambda i: keys[i])
        return ("maj",) + tuple(children[i] for i in order)

    a, b = children
    ka, kb = _key(a), _key(b)
    if kind == "and":
        if a[0] == "const":
            return b if a[1] == 1 else ("const", 0)
        if b[0] == "const":
            return a if b[1] == 1 else ("const", 0)
        if ka == kb:
            return a
    elif kind == "or":
        if a[0] == "const":
            return b if a[1] == 0 else ("const", 1)
        if b[0] == "const":
            return a if b[1] == 0 else ("const", 1)
        if ka == kb:
            return a
    elif kind == "xor":
        if a[0] == "const":
            return b if a[1] == 0 else simplify(("not", b))
        if b[0] == "const":
            return a if b[1] == 0 else simplify(("not", a))
        if ka == kb:
            return ("const", 0)
    if kb < ka:
        a, b = b, a
    return (kind, a, b)


# -- truth-table synthesis ----------------------------------------------------------

def _linear_fit(table: Sequence[int], inputs: Sequence[str]
                ) -> Optional[Tuple]:
    """AST if the table is affine over GF(2): ``c ^ x_i ^ x_j ...``.

    Covers buffers, inverters and parity chains -- the functions XOR
    gates implement natively -- in one test: ``c = f(0...0)``,
    ``a_i = f(e_i) ^ c``, verified over every pattern.
    """
    n = len(inputs)
    c = table[0]
    coeffs = [table[1 << (n - 1 - i)] ^ c for i in range(n)]
    for index, bits in enumerate(input_patterns(n)):
        acc = c
        for i, bit in enumerate(bits):
            acc ^= coeffs[i] & bit
        if acc != table[index]:
            return None
    terms = [("var", inputs[i]) for i in range(n) if coeffs[i]]
    if not terms:
        return ("const", c)
    tree = terms[0]
    for term in terms[1:]:
        tree = ("xor", tree, term)
    return ("not", tree) if c else tree


def _majority_fit(table: Sequence[int], inputs: Sequence[str]
                  ) -> Optional[Tuple]:
    """AST if the table is a (possibly inverted) 3-input majority."""
    if len(inputs) != 3:
        return None
    maj = tuple(1 if sum(bits) >= 2 else 0 for bits in input_patterns(3))
    if tuple(table) == maj:
        return ("maj", ("var", inputs[0]), ("var", inputs[1]),
                ("var", inputs[2]))
    if tuple(table) == tuple(1 - v for v in maj):
        return ("not", ("maj", ("var", inputs[0]), ("var", inputs[1]),
                        ("var", inputs[2])))
    return None


def _combine(a: str, b: str) -> Optional[str]:
    """Merge two implicant cubes differing in exactly one position."""
    diff = 0
    merged = []
    for ca, cb in zip(a, b):
        if ca != cb:
            diff += 1
            merged.append("-")
        else:
            merged.append(ca)
    return "".join(merged) if diff == 1 else None


def _covers(cube: str, minterm: int, n: int) -> bool:
    for i, c in enumerate(cube):
        if c == "-":
            continue
        bit = (minterm >> (n - 1 - i)) & 1
        if bit != int(c):
            return False
    return True


def minimal_sop(table: Sequence[int], n: int) -> List[str]:
    """Quine-McCluskey: minimal-ish sum-of-products cover.

    Returns implicant cubes over ``n`` inputs (``"1-0"`` = x0 & ~x2);
    prime implicants via iterative combination, then essential-first
    greedy cover (exact for the table sizes the spec admits).
    """
    minterms = [i for i, v in enumerate(table) if v]
    if not minterms:
        return []
    cubes = {format(m, f"0{n}b") for m in minterms}
    primes: Set[str] = set()
    while cubes:
        merged: Set[str] = set()
        used: Set[str] = set()
        for a, b in itertools.combinations(sorted(cubes), 2):
            m = _combine(a, b)
            if m is not None:
                merged.add(m)
                used.add(a)
                used.add(b)
        primes.update(cubes - used)
        cubes = merged
    # Essential primes first, then greedy set cover on the rest.
    cover: List[str] = []
    remaining = set(minterms)
    for m in minterms:
        covering = [p for p in sorted(primes) if _covers(p, m, n)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for p in cover:
        remaining -= {m for m in remaining if _covers(p, m, n)}
    while remaining:
        best = max(sorted(primes),
                   key=lambda p: sum(_covers(p, m, n) for m in remaining))
        cover.append(best)
        remaining -= {m for m in remaining if _covers(best, m, n)}
    return cover


def _balanced(kind: str, terms: List[Tuple]) -> Tuple:
    """Balanced binary reduction tree (minimal logic depth)."""
    while len(terms) > 1:
        nxt = []
        for i in range(0, len(terms) - 1, 2):
            nxt.append((kind, terms[i], terms[i + 1]))
        if len(terms) % 2:
            nxt.append(terms[-1])
        terms = nxt
    return terms[0]


def table_to_ast(table: Sequence[int], inputs: Sequence[str]) -> Tuple:
    """Synthesise an expression AST from a truth table.

    Pattern detectors first (affine/parity, 3-input majority -- the
    shapes the triangle library implements in one gate), then minimal
    SOP via Quine-McCluskey lowered as balanced AND/OR trees.
    """
    fit = _linear_fit(table, inputs)
    if fit is not None:
        return fit
    fit = _majority_fit(table, inputs)
    if fit is not None:
        return fit
    n = len(inputs)
    terms = []
    for cube in minimal_sop(table, n):
        literals: List[Tuple] = []
        for i, c in enumerate(cube):
            if c == "1":
                literals.append(("var", inputs[i]))
            elif c == "0":
                literals.append(("not", ("var", inputs[i])))
        if not literals:
            return ("const", 1)
        terms.append(_balanced("and", literals))
    if not terms:
        return ("const", 0)
    return _balanced("or", terms)


def spec_to_asts(spec: CircuitSpec) -> Dict[str, Tuple]:
    """Simplified AST per output (structural for expressions,
    synthesised for truth-table definitions)."""
    asts: Dict[str, Tuple] = {}
    for out, definition in spec.outputs.items():
        definition = definition.strip()
        if set(definition) <= _TABLE_CHARS:
            tree = table_to_ast(spec.truth_table(out), spec.inputs)
        else:
            tree = parse_expression(definition, spec.inputs)
        asts[out] = simplify(tree)
    return asts


# -- DAG lowering -------------------------------------------------------------------

class _Node:
    """One hash-consed DAG node awaiting netlist emission."""

    __slots__ = ("tree", "key", "children", "uses", "taps", "copies")

    def __init__(self, tree: Tuple, key: str, children: List["_Node"]):
        self.tree = tree
        self.key = key
        self.children = children
        self.uses = 0            # gate-input edges consuming this value
        self.taps: List[str] = []  # primary outputs exporting this value
        self.copies: List[str] = []  # physical nets still available


class _Lowerer:
    """Emit a netlist from output ASTs with exact fan-out planning."""

    def __init__(self, spec: CircuitSpec):
        self.spec = spec
        self.netlist = Netlist(spec.name)
        self.nodes: Dict[str, _Node] = {}
        self.order: List[_Node] = []   # topological (children first)
        self._net_counter = 0
        self._gate_counter: Dict[str, int] = {}

    # -- DAG construction --

    def intern(self, tree: Tuple) -> _Node:
        key = _key(tree)
        node = self.nodes.get(key)
        if node is None:
            children = [] if tree[0] in ("var", "const") \
                else [self.intern(sub) for sub in tree[1:]]
            node = _Node(tree, key, children)
            self.nodes[key] = node
            self.order.append(node)
        return node

    # -- naming --

    def _fresh_net(self) -> str:
        self._net_counter += 1
        return f"n{self._net_counter}"

    def _gate_name(self, kind: str) -> str:
        index = self._gate_counter.get(kind, 0)
        self._gate_counter[kind] = index + 1
        return f"{kind.lower()}{index}"

    # -- copy management --

    def _take(self, node: _Node) -> str:
        """Consume one physical copy of a node's value."""
        if not node.copies:
            raise AssertionError(
                f"fan-out plan exhausted for {node.key!r} -- demand "
                "accounting bug")
        return node.copies.pop(0)

    def _split(self, node: _Node, extra: int) -> None:
        """Grow a node's copy pool by ``extra`` via SPLITTER2 gates."""
        for _ in range(extra):
            source = self._take(node)
            a, b = self._fresh_net(), self._fresh_net()
            self.netlist.add_gate(self._gate_name("split"), "SPLITTER2",
                                  [source], [a, b])
            node.copies.extend([a, b])

    # -- emission --

    def run(self, asts: Mapping[str, Tuple]) -> Netlist:
        for net in self.spec.inputs:
            self.netlist.add_input(net)
        roots: Dict[str, _Node] = {}
        for out, tree in asts.items():
            if tree[0] == "const":
                raise ValueError(
                    f"output {out!r} is constant {tree[1]}; a spin-wave "
                    "fabric has no constant generator -- wire it "
                    "externally")
            node = self.intern(tree)
            node.taps.append(out)
            roots[out] = node
        for out in self.spec.outputs:
            self.netlist.add_output(out)
        # Demand count: one use per gate-input edge.
        for node in self.order:
            for child in node.children:
                child.uses += 1
        for node in self.order:     # children precede parents
            self._emit(node)
        self.netlist.validate()
        return self.netlist

    def _emit(self, node: _Node) -> None:
        kind = node.tree[0]
        demand = node.uses + len(node.taps)
        if demand == 0:
            return   # simplified away entirely
        if kind == "const":
            raise AssertionError("const nodes cannot be emitted")

        if kind == "var":
            # A primary input is one excitation: its net is the single
            # native copy.  Taps on an input need a driven net, which a
            # REPEATER (one regenerating transducer) provides.
            node.copies = [node.tree[1]]
            self._split(node, demand - 1)
            for out in node.taps:
                self.netlist.add_gate(self._gate_name("buf"), "REPEATER",
                                      [self._take(node)], [out])
            return

        in_nets = [self._take(child) for child in node.children]
        # The gate's two FO2 terminals: primary-output taps claim their
        # names first (exported, never consumed); the rest are fresh.
        first = node.taps[0] if node.taps else self._fresh_net()
        second: Optional[str]
        if demand >= 2:
            second = node.taps[1] if len(node.taps) > 1 else self._fresh_net()
        else:
            second = None
        self.netlist.add_gate(self._gate_name(kind), _NODE_GATE[kind],
                              in_nets, [first, second])
        consumable = []
        if not node.taps:
            consumable.append(first)
        if second is not None and len(node.taps) <= 1:
            consumable.append(second)
        node.copies = consumable
        extra = demand - (2 if second is not None else 1)
        self._split(node, extra)
        # Remaining taps (3rd+ output aliasing one value) ride on
        # splitter outputs: rename by inserting a repeater would cost a
        # stage; instead reserve splitter terminals directly.
        for out in node.taps[2:]:
            source = self._take(node)
            self.netlist.add_gate(self._gate_name("buf"), "REPEATER",
                                  [source], [out])


def synthesize(spec: CircuitSpec) -> Netlist:
    """Lower a spec to a validated triangle-gate netlist.

    The netlist is structurally valid (``Netlist.validate()`` has run)
    and logically equivalent to the spec -- equivalence is re-checked
    exhaustively here so a synthesis bug can never reach the placer.

    Raises
    ------
    ValueError
        Malformed spec, constant outputs, or (never expected) a failed
        equivalence check.
    repro.errors.NetlistError
        Structural self-check failure.
    """
    asts = spec_to_asts(spec)
    netlist = _Lowerer(spec).run(asts)

    from ..circuits.simulator import CascadeSimulator

    simulator = CascadeSimulator(netlist)
    reference = spec.reference()
    for bits, outputs in simulator.truth_table().items():
        want = reference(dict(zip(spec.inputs, bits)))
        if outputs != want:
            raise ValueError(
                f"synthesis self-check failed for {spec.name!r} at input "
                f"{bits}: netlist gives {outputs}, spec wants {want}")
    return netlist
