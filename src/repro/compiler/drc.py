"""Design-rule checker for placed triangle-gate fabrics.

Validates a :class:`~repro.compiler.place.Placement` against the
paper's Section III dimensioning rules plus the fabric-level spacing
rules a manufacturable layout needs:

* **phase** -- every placed MAJ3/XOR instance must satisfy the
  lambda-multiple conditions (d1/d2/d3/stem integer multiples, d4
  integer or half-integer, waveguide width <= lambda), checked on the
  gate's actual placed geometry via
  :func:`repro.core.layout.validate_phase_design`;
* **spacing** -- gate bounding boxes must be separated by at least
  ``gate_clearance`` lambda (dipolar stray fields couple neighbouring
  waveguides; the clearance keeps crosstalk below the detection
  margin);
* **wire-gate clearance** -- routed waveguides must not pass through
  or hug a foreign gate's box;
* **crossings** -- waveguide crossings are allowed (spin waves pass
  through an orthogonal crossing with little modal mixing, the same
  physics that forced the merge-stem-split gate topology) but must be
  at least ``crossing_spacing`` apart and ``crossing_gate_clearance``
  away from any gate;
* **fan-out** -- the netlist must respect the FO2 budget (delegated to
  :meth:`~repro.circuits.netlist.Netlist.validate`).

Every violation is a typed :class:`repro.errors.DRCViolation` carrying
the rule name, the offending object pair and the actual/required
values.  :func:`check` collects all of them into a :class:`DRCReport`;
``check(..., raise_on_violation=True)`` raises the first (most severe)
one instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..core.layout import PAPER_WAVELENGTH, PAPER_WIDTH, validate_phase_design
from ..errors import DRCViolation

if TYPE_CHECKING:   # pragma: no cover - typing only
    from .place import Placement, Wire

Point = Tuple[float, float]
BBox = Tuple[float, float, float, float]


@dataclass(frozen=True)
class DesignRules:
    """The technology rule deck, all clearances in lambda multiples.

    The ``*_multiple`` fields fix the gate-internal phase design
    (paper defaults 6/16/4/1 plus the reconstruction's 2-lambda stem).
    ``row_clearance``/``col_clearance`` are what the **placer targets**;
    ``gate_clearance`` is what the **checker requires** -- keeping them
    separate means an over-tight rule deck (placer told to pack closer
    than the required minimum) produces a real, checkable violation
    instead of being silently corrected.
    """

    wavelength: float = PAPER_WAVELENGTH
    width: float = PAPER_WIDTH
    d1_multiple: float = 6.0
    d2_multiple: float = 16.0
    d3_multiple: float = 4.0
    d4_multiple: float = 1.0
    stem_multiple: float = 2.0
    xor_output_distance: float = 40e-9
    gate_clearance: float = 2.0       # required minimum box-to-box gap
    row_clearance: float = 4.0        # placer target, vertical
    col_clearance: float = 6.0        # placer target, horizontal
    track_pitch: float = 1.0
    crossing_spacing: float = 0.5
    crossing_gate_clearance: float = 1.0
    max_fanout: int = 2

    def __post_init__(self) -> None:
        if self.wavelength <= 0:
            raise ValueError("wavelength must be positive")
        if self.width <= 0:
            raise ValueError("width must be positive")
        if self.track_pitch <= 0:
            raise ValueError("track_pitch must be positive")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be at least 1")

    def to_params(self) -> Dict[str, Any]:
        """JSON-canonicalisable form (runtime job-spec friendly)."""
        return {
            "wavelength": self.wavelength,
            "width": self.width,
            "d1_multiple": self.d1_multiple,
            "d2_multiple": self.d2_multiple,
            "d3_multiple": self.d3_multiple,
            "d4_multiple": self.d4_multiple,
            "stem_multiple": self.stem_multiple,
            "xor_output_distance": self.xor_output_distance,
            "gate_clearance": self.gate_clearance,
            "row_clearance": self.row_clearance,
            "col_clearance": self.col_clearance,
            "track_pitch": self.track_pitch,
            "crossing_spacing": self.crossing_spacing,
            "crossing_gate_clearance": self.crossing_gate_clearance,
            "max_fanout": self.max_fanout,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DesignRules":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown design-rule fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class DRCReport:
    """Outcome of one full design-rule check."""

    circuit: str
    rules: DesignRules
    checks_run: List[str] = field(default_factory=list)
    violations: List[DRCViolation] = field(default_factory=list)
    crossings: int = 0

    @property
    def clean(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "clean": self.clean,
            "checks_run": list(self.checks_run),
            "crossings": self.crossings,
            "violations": [
                {"rule": v.rule, "offenders": list(v.offenders),
                 "detail": v.detail, "actual": v.actual,
                 "required": v.required}
                for v in self.violations
            ],
        }


# -- geometry helpers ---------------------------------------------------------------

def _bbox_gap(a: BBox, b: BBox) -> float:
    """Smallest axis gap between two boxes (negative = overlap)."""
    dx = max(a[0] - b[2], b[0] - a[2])
    dy = max(a[1] - b[3], b[1] - a[3])
    if dx < 0 and dy < 0:
        return max(dx, dy)   # overlap depth (negative)
    return math.hypot(max(dx, 0.0), max(dy, 0.0)) if dx > 0 and dy > 0 \
        else max(dx, dy)


def _segment_orientation(a: Point, b: Point) -> str:
    if abs(a[1] - b[1]) < 1e-9:
        return "h"
    if abs(a[0] - b[0]) < 1e-9:
        return "v"
    return "d"


def _hv_intersection(h: Tuple[Point, Point],
                     v: Tuple[Point, Point]) -> Optional[Point]:
    """Interior intersection of a horizontal and a vertical segment."""
    (hx0, hy), (hx1, _) = h
    (vx, vy0), (_, vy1) = v
    x0, x1 = min(hx0, hx1), max(hx0, hx1)
    y0, y1 = min(vy0, vy1), max(vy0, vy1)
    eps = 1e-9
    if x0 + eps < vx < x1 - eps and y0 + eps < hy < y1 - eps:
        return (vx, hy)
    return None


def _point_box_distance(p: Point, box: BBox) -> float:
    dx = max(box[0] - p[0], 0.0, p[0] - box[2])
    dy = max(box[1] - p[1], 0.0, p[1] - box[3])
    return math.hypot(dx, dy)


def _segment_box_gap(a: Point, b: Point, box: BBox) -> float:
    """Distance from an axis-aligned segment to a box (<=0 if touching)."""
    x0, y0 = min(a[0], b[0]), min(a[1], b[1])
    x1, y1 = max(a[0], b[0]), max(a[1], b[1])
    return _bbox_gap((x0, y0, x1, y1), box)


# -- individual rule passes ---------------------------------------------------------

def _check_phase(placement: "Placement", report: DRCReport) -> None:
    report.checks_run.append("phase")
    lam = placement.rules.wavelength
    for name, gate in sorted(placement.gates.items()):
        if gate.layout is None:
            continue
        if gate.layout.dimensions.width > lam:
            report.violations.append(DRCViolation(
                "phase.width", (name,),
                "waveguide width exceeds the wavelength",
                actual=gate.layout.dimensions.width, required=lam))
        for check, ok in validate_phase_design(gate.layout).items():
            if not ok:
                report.violations.append(DRCViolation(
                    "phase.lambda-multiple", (name,),
                    f"failed phase condition: {check}"))


def _check_spacing(placement: "Placement", report: DRCReport) -> None:
    report.checks_run.append("spacing")
    required = placement.rules.gate_clearance
    gates = sorted(placement.gates.values(), key=lambda g: g.name)
    for i, a in enumerate(gates):
        for b in gates[i + 1:]:
            gap = _bbox_gap(a.bbox, b.bbox)
            if gap < required:
                detail = ("bounding boxes overlap" if gap < 0 else
                          "gate clearance below the rule deck minimum")
                report.violations.append(DRCViolation(
                    "spacing.gate", (a.name, b.name), detail,
                    actual=round(gap, 6), required=required))


def _wire_segments(placement: "Placement"
                   ) -> List[Tuple["Wire", Point, Point, str]]:
    segments = []
    for wire in placement.wires:
        for a, b in wire.segments:
            segments.append((wire, a, b, _segment_orientation(a, b)))
    return segments


def _check_wires(placement: "Placement", report: DRCReport) -> None:
    report.checks_run.append("wire-gate-clearance")
    required = placement.rules.crossing_gate_clearance
    for wire, a, b, orient in _wire_segments(placement):
        if orient == "d":
            report.violations.append(DRCViolation(
                "wire.manhattan", (wire.net,),
                f"non-axis-aligned wire segment {a} -> {b}"))
            continue
        for name, gate in sorted(placement.gates.items()):
            if name in (wire.source, wire.sink):
                continue   # pin stubs legitimately touch their own cell
            gap = _segment_box_gap(a, b, gate.bbox)
            if gap < required:
                report.violations.append(DRCViolation(
                    "wire.gate-clearance", (wire.net, name),
                    "routed waveguide passes too close to a foreign gate",
                    actual=round(gap, 6), required=required))


def _check_crossings(placement: "Placement", report: DRCReport) -> None:
    report.checks_run.append("crossings")
    rules = placement.rules
    segments = _wire_segments(placement)
    horizontals = [s for s in segments if s[3] == "h"]
    verticals = [s for s in segments if s[3] == "v"]
    crossings: List[Tuple[Point, str, str]] = []
    for hw, ha, hb, _ in horizontals:
        for vw, va, vb, _ in verticals:
            if hw.net == vw.net:
                continue
            point = _hv_intersection((ha, hb), (va, vb))
            if point is not None:
                crossings.append((point, hw.net, vw.net))
    report.crossings = len(crossings)
    for i, (p, net_a, net_b) in enumerate(crossings):
        for q, net_c, net_d in crossings[i + 1:]:
            dist = math.hypot(p[0] - q[0], p[1] - q[1])
            if dist < rules.crossing_spacing:
                report.violations.append(DRCViolation(
                    "crossing.spacing",
                    (f"{net_a}x{net_b}", f"{net_c}x{net_d}"),
                    "waveguide crossings closer than the rule deck "
                    "minimum", actual=round(dist, 6),
                    required=rules.crossing_spacing))
        for name, gate in sorted(placement.gates.items()):
            dist = _point_box_distance(p, gate.bbox)
            if dist < rules.crossing_gate_clearance:
                report.violations.append(DRCViolation(
                    "crossing.gate-clearance",
                    (f"{net_a}x{net_b}", name),
                    "waveguide crossing too close to a gate",
                    actual=round(dist, 6),
                    required=rules.crossing_gate_clearance))


def _check_fanout(placement: "Placement", report: DRCReport) -> None:
    report.checks_run.append("fan-out")
    netlist = placement.netlist
    netlist.validate()   # FO2 budget: one consumer per physical net
    for name, inst in sorted(netlist.gates.items()):
        driven = [n for n in inst.outputs if n is not None]
        budget = 3 if inst.gate_type == "SPLITTER3" \
            else placement.rules.max_fanout
        if len(driven) > budget:
            report.violations.append(DRCViolation(
                "fanout.budget", (name,),
                f"gate drives {len(driven)} nets, budget is {budget}",
                actual=float(len(driven)), required=float(budget)))


def check(placement: "Placement",
          raise_on_violation: bool = False) -> DRCReport:
    """Run every design-rule pass over a placement.

    Parameters
    ----------
    placement:
        The placed fabric (carries its own rule deck).
    raise_on_violation:
        If True, raise the first :class:`~repro.errors.DRCViolation`
        after completing all passes (the full report is attached to
        the exception as ``.report``).
    """
    report = DRCReport(circuit=placement.netlist.name,
                       rules=placement.rules)
    _check_phase(placement, report)
    _check_spacing(placement, report)
    _check_wires(placement, report)
    _check_crossings(placement, report)
    _check_fanout(placement, report)
    if raise_on_violation and report.violations:
        violation = report.violations[0]
        violation.report = report
        raise violation
    return report
