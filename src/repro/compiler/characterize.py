"""Auto-characterizer: compiled circuit -> energy/delay/error report.

Pushes a compiled circuit through the repository's evaluation stack:

* **functional** -- exhaustive truth-table equivalence between the
  placed netlist (via
  :class:`~repro.circuits.simulator.CascadeSimulator`) and the spec's
  reference function;
* **figures of merit** -- energy, critical-path delay and transducer
  area from :func:`repro.evaluation.circuit_level.
  spin_wave_circuit_figures`, plus the fabric area the placement
  actually occupies;
* **CMOS comparison** -- the 16 nm and 7 nm equivalents from the
  paper's Table III data (every MAJ3-embedding gate costs one CMOS
  MAJ, every XOR-embedding gate one CMOS XOR; repeaters and splitters
  are plain wires in CMOS);
* **error rates** -- each physical gate *kind* used by the circuit is
  swept through the requested simulation tier
  (:func:`repro.micromag.experiments.sweep_gate_truth_table`, jobs
  content-addressed-cached by the runtime), and per-kind pattern
  failure rates compose into a circuit-level error rate under the
  independent-gate-failure model
  ``p_circuit = 1 - prod_g (1 - p_kind(g))``.

Reports persist as JSON via the runtime's crash-safe
:func:`~repro.runtime.cache.atomic_write`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..circuits.netlist import Netlist
from ..circuits.simulator import CascadeSimulator
from ..evaluation.circuit_level import (
    CMOS_TRANSISTOR_AREA,
    spin_wave_circuit_figures,
)
from ..evaluation.cmos import cmos_gate
from ..runtime.cache import atomic_write
from .spec import CircuitSpec

#: Physical gate type -> the characterized primitive it embeds.
#: Derived 2-input gates are MAJ3 with a constant control input; NOT
#: and XNOR are XOR embeddings.  Repeaters/splitters carry one wave
#: with no interference, so they have no pattern-failure mode here.
GATE_KIND = {
    "MAJ3": "maj3", "NMAJ3": "maj3", "AND": "maj3", "NAND": "maj3",
    "OR": "maj3", "NOR": "maj3",
    "XOR": "xor", "XNOR": "xor", "NOT": "xor",
}

#: Gate kind -> CMOS Table III function name.
_CMOS_FUNCTION = {"maj3": "MAJ", "xor": "XOR"}


@dataclass
class CharacterizationReport:
    """Everything measured about one compiled circuit."""

    circuit: str
    tier: str
    functional: Dict[str, Any]
    spin_wave: Dict[str, Any]
    cmos: Dict[str, Dict[str, Any]]
    error_rates: Dict[str, Any]
    placement: Dict[str, Any] = field(default_factory=dict)

    @property
    def verified(self) -> bool:
        return bool(self.functional.get("equivalent"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "tier": self.tier,
            "functional": self.functional,
            "spin_wave": self.spin_wave,
            "cmos": self.cmos,
            "error_rates": self.error_rates,
            "placement": self.placement,
        }


def verify_functional(netlist: Netlist,
                      spec: CircuitSpec) -> Dict[str, Any]:
    """Exhaustive netlist-vs-spec equivalence over all 2^n patterns."""
    simulator = CascadeSimulator(netlist)
    reference = spec.reference()
    mismatches: List[Dict[str, Any]] = []
    table = simulator.truth_table()
    for bits, outputs in table.items():
        want = reference(dict(zip(spec.inputs, bits)))
        if outputs != want:
            mismatches.append({"inputs": list(bits), "got": outputs,
                               "want": want})
    return {
        "equivalent": not mismatches,
        "patterns": len(table),
        "mismatches": mismatches,
    }


def _cmos_equivalent(netlist: Netlist, technology: str) -> Dict[str, Any]:
    """Table III figures for a CMOS realisation of the same netlist.

    Energy and device count sum over the mapped gates; delay is the
    critical path through the gate DAG with per-function Table III
    delays (repeaters/splitters are wires: zero CMOS cost).
    """
    energy = 0.0
    devices = 0
    depth: Dict[str, float] = {net: 0.0
                               for net in netlist.primary_inputs}
    for name in netlist.topological_order():
        inst = netlist.gates[name]
        kind = GATE_KIND.get(inst.gate_type)
        stage = 0.0
        if kind is not None:
            data = cmos_gate(technology, _CMOS_FUNCTION[kind])
            energy += data.energy
            devices += data.device_count
            stage = data.delay
        arrival = max((depth[n] for n in inst.inputs), default=0.0) + stage
        for net in inst.outputs:
            if net is not None:
                depth[net] = arrival
    delay = max((depth[n] for n in netlist.primary_outputs), default=0.0)
    area = devices * CMOS_TRANSISTOR_AREA[technology.lower()]
    return {
        "technology": technology,
        "device_count": devices,
        "energy_j": energy,
        "delay_s": delay,
        "area_m2": area,
        "energy_delay_product": energy * delay,
    }


def measure_error_rates(netlist: Netlist, tier: str = "network",
                        executor: Optional[Any] = None,
                        **case_kwargs: Any) -> Dict[str, Any]:
    """Per-gate-kind and circuit-level error rates at one sim tier.

    Each primitive kind the circuit uses is swept exhaustively through
    the tier; a kind's error rate is its fraction of incorrect
    patterns, and the circuit rate composes them independently across
    gate instances.  Margins (minimum detection margin across the
    sweep) come along for free.
    """
    from ..micromag.experiments import sweep_gate_truth_table

    kind_counts: Dict[str, int] = {}
    for inst in netlist.gates.values():
        kind = GATE_KIND.get(inst.gate_type)
        if kind is not None:
            kind_counts[kind] = kind_counts.get(kind, 0) + 1

    per_kind: Dict[str, Dict[str, Any]] = {}
    survival = 1.0
    for kind in sorted(kind_counts):
        sweep = sweep_gate_truth_table(kind, tier=tier, executor=executor,
                                       raise_on_failure=False,
                                       **case_kwargs)
        cases = sweep.cases
        n_wrong = sum(1 for case in cases.values() if not case["correct"])
        rate = n_wrong / len(cases) if cases else 1.0
        margins = [out["margin"] for case in cases.values()
                   for out in case["outputs"].values()
                   if out.get("margin") is not None]
        per_kind[kind] = {
            "patterns": len(cases),
            "incorrect": n_wrong,
            "error_rate": rate,
            "min_margin": min(margins) if margins else None,
            "instances": kind_counts[kind],
        }
        survival *= (1.0 - rate) ** kind_counts[kind]
    return {
        "tier": tier,
        "per_kind": per_kind,
        "circuit_error_rate": 1.0 - survival,
    }


def characterize(netlist: Netlist, spec: CircuitSpec,
                 placement_stats: Optional[Mapping[str, Any]] = None,
                 tier: str = "network",
                 executor: Optional[Any] = None,
                 cmos_technologies: tuple = ("16nm", "7nm"),
                 **case_kwargs: Any) -> CharacterizationReport:
    """Full characterization of a compiled circuit.

    Parameters
    ----------
    netlist / spec:
        The compiled netlist and the spec it was compiled from.
    placement_stats:
        Optional :meth:`~repro.compiler.place.Placement.stats` output,
        folded into the report (the compile driver passes it).
    tier:
        Simulation tier for the per-gate error sweeps (``"network"``
        analytic default, ``"fdtd"``/``"llg"`` for physics).
    executor:
        Optional preconfigured :class:`repro.runtime.Executor` -- the
        sweeps then share its cache and worker pool.
    """
    functional = verify_functional(netlist, spec)
    figures = spin_wave_circuit_figures(netlist)
    spin_wave = {
        "technology": figures.technology,
        "device_count": figures.device_count,
        "energy_j": figures.energy,
        "delay_s": figures.delay,
        "area_m2": figures.area,
        "energy_delay_product": figures.energy_delay_product,
        "area_delay_power_product": figures.area_delay_power_product,
    }
    cmos = {tech: _cmos_equivalent(netlist, tech)
            for tech in cmos_technologies}
    for tech, data in cmos.items():
        if data["energy_delay_product"] > 0:
            data["edp_ratio_vs_sw"] = (spin_wave["energy_delay_product"]
                                       / data["energy_delay_product"])
    error_rates = measure_error_rates(netlist, tier=tier,
                                      executor=executor, **case_kwargs)
    return CharacterizationReport(
        circuit=netlist.name,
        tier=tier,
        functional=functional,
        spin_wave=spin_wave,
        cmos=cmos,
        error_rates=error_rates,
        placement=dict(placement_stats or {}),
    )


def write_report(report: CharacterizationReport, path: str) -> str:
    """Persist a characterization report as JSON (crash-safe)."""
    payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)

    atomic_write(path, lambda handle: handle.write(payload.encode("utf-8")))
    return path
