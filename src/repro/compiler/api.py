"""The compile driver: spec in, placed + checked + characterized out.

One call, four phases, each observable as a ``compile.*`` span:

1. :func:`~repro.compiler.synth.synthesize` -- boolean function to a
   validated triangle-gate netlist (exhaustively equivalence-checked);
2. :func:`~repro.compiler.place.place` -- netlist to a 2-D fabric with
   routed waveguides, all coordinates in lambda multiples;
3. :func:`~repro.compiler.drc.check` -- the full design-rule battery
   (phase lambda-multiples, spacings, crossings, fan-out);
4. :func:`~repro.compiler.characterize.characterize` (opt-in) --
   energy/delay/area/error-rate figures against the evaluation models
   and the requested simulation tier.

:func:`compile_job` is the same flow as a flat JSON-in / JSON-out
callable, addressable as ``"repro.compiler.api:compile_job"`` in a
:class:`repro.runtime.JobSpec` -- that is what makes ``/v1/compile``
requests content-addressed-cacheable and coalescable like any gate
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Union

from .. import obs
from ..circuits.netlist import Netlist
from .characterize import CharacterizationReport, characterize
from .drc import DesignRules, DRCReport, check
from .place import Placement, place
from .spec import CircuitSpec, load_spec
from .synth import synthesize


def netlist_to_dict(netlist: Netlist) -> Dict[str, Any]:
    """JSON form of a netlist (gates in declaration order)."""
    return {
        "name": netlist.name,
        "primary_inputs": list(netlist.primary_inputs),
        "primary_outputs": list(netlist.primary_outputs),
        "gates": [
            {"name": inst.name, "type": inst.gate_type,
             "inputs": list(inst.inputs),
             "outputs": [net for net in inst.outputs]}
            for inst in netlist.gates.values()
        ],
    }


def netlist_from_dict(payload: Mapping[str, Any]) -> Netlist:
    """Rebuild a netlist from :func:`netlist_to_dict` output."""
    netlist = Netlist(str(payload.get("name", "circuit")))
    for net in payload.get("primary_inputs", []):
        netlist.add_input(net)
    for net in payload.get("primary_outputs", []):
        netlist.add_output(net)
    for gate in payload.get("gates", []):
        netlist.add_gate(gate["name"], gate["type"], gate["inputs"],
                         gate["outputs"])
    netlist.validate()
    return netlist


@dataclass
class CompileResult:
    """Everything one compile produced."""

    spec: CircuitSpec
    netlist: Netlist
    placement: Placement
    drc: DRCReport
    characterization: Optional[CharacterizationReport] = None

    @property
    def clean(self) -> bool:
        """True when the placement passed every design rule."""
        return self.drc.clean

    def to_dict(self) -> Dict[str, Any]:
        """Flat JSON form (the ``/v1/compile`` response body)."""
        payload: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "netlist": netlist_to_dict(self.netlist),
            "placement": self.placement.to_dict(),
            "drc": self.drc.to_dict(),
            "clean": self.clean,
        }
        if self.characterization is not None:
            payload["characterization"] = self.characterization.to_dict()
        return payload


def compile_spec(source: Union[str, Mapping[str, Any], CircuitSpec],
                 rules: Optional[DesignRules] = None,
                 characterize_circuit: bool = False,
                 tier: str = "network",
                 executor: Optional[Any] = None,
                 raise_on_violation: bool = True,
                 **case_kwargs: Any) -> CompileResult:
    """Compile a circuit spec into a placed, checked triangle fabric.

    Parameters
    ----------
    source:
        A :class:`CircuitSpec`, its dict form, or any string
        :func:`~repro.compiler.spec.load_spec` accepts (builtin name,
        inline JSON, equation list, file path).
    rules:
        The technology rule deck; defaults to the paper's.
    characterize_circuit:
        Also run the auto-characterizer (energy/delay/error report).
    tier:
        Simulation tier for the characterizer's error-rate sweeps.
    executor:
        Optional :class:`repro.runtime.Executor` shared by the sweeps.
    raise_on_violation:
        Raise the first :class:`repro.errors.DRCViolation` (with the
        full report attached as ``.report``) instead of returning a
        dirty result.

    Raises
    ------
    ValueError
        Malformed spec (bad expression, wrong table size, constant
        output, too many inputs).
    repro.errors.NetlistError
        The synthesized netlist failed its structural self-check.
    repro.errors.DRCViolation
        The placement breaks a design rule (when
        ``raise_on_violation``); the message names the offending pair.
    """
    if isinstance(source, CircuitSpec):
        spec = source
    elif isinstance(source, Mapping):
        spec = CircuitSpec.from_dict(source)
    else:
        spec = load_spec(source)
    rules = rules if rules is not None else DesignRules()

    with obs.span("compile", circuit=spec.name):
        with obs.span("compile.synthesize"):
            netlist = synthesize(spec)
        with obs.span("compile.place"):
            placement = place(netlist, rules)
        with obs.span("compile.drc"):
            drc = check(placement, raise_on_violation=raise_on_violation)
        obs.counter("compile.circuits").inc()
        if not drc.clean:
            obs.counter("compile.drc_violations").inc(len(drc.violations))
        report = None
        if characterize_circuit:
            with obs.span("compile.characterize", tier=tier):
                report = characterize(netlist, spec,
                                      placement_stats=placement.stats(),
                                      tier=tier, executor=executor,
                                      **case_kwargs)
    return CompileResult(spec=spec, netlist=netlist, placement=placement,
                         drc=drc, characterization=report)


def compile_job(spec: Mapping[str, Any],
                rules: Optional[Mapping[str, Any]] = None,
                characterize: bool = False,
                tier: str = "network") -> Dict[str, Any]:
    """JobSpec-addressable compile: plain JSON in, plain JSON out.

    ``JobSpec(fn="repro.compiler.api:compile_job", params={...})`` --
    every parameter is JSON-canonicalisable, so identical compile
    requests share one content-addressed cache entry and coalesce
    in-flight.  DRC violations are *data* here (``clean: false`` plus
    the violation list), not exceptions: a dirty compile is a valid,
    cacheable answer for a service client.
    """
    deck = DesignRules.from_dict(dict(rules)) if rules else None
    result = compile_spec(spec, rules=deck,
                          characterize_circuit=characterize, tier=tier,
                          raise_on_violation=False)
    return result.to_dict()
