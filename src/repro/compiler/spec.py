"""Circuit specifications: what the compiler's front door accepts.

A :class:`CircuitSpec` names a combinational boolean function --
ordered primary inputs plus one definition per output -- without saying
anything about gates or geometry.  Definitions come in two forms:

* a **truth table**: a string of ``2^n`` bits, one per input pattern in
  counting order (:func:`repro.core.logic.input_patterns` -- the first
  declared input is the most significant bit), e.g. the 3-input
  majority is ``"00010111"``;
* an **expression** over the input names with ``~`` (NOT), ``&`` (AND),
  ``^`` (XOR), ``|`` (OR), parentheses, the literals ``0``/``1`` and
  the function form ``maj(a, b, c)`` -- the native triangle gate.

Specs are plain JSON data (``{"name", "inputs", "outputs"}``), so they
travel unchanged through config files, the CLI, :class:`JobSpec`
parameters (``/v1/compile``) and the content-addressed result cache.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..core.logic import input_patterns, majority

#: Compiling is exponential in input count (truth-table equivalence is
#: checked exhaustively); the front door refuses beyond this arity.
MAX_INPUTS = 6

_NAME_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
_TABLE_RE = re.compile(r"^[01]+$")

TruthTable = Tuple[int, ...]


# -- expression parsing -------------------------------------------------------------

class _ExprParser:
    """Recursive-descent parser for the spec expression grammar.

    Precedence (loosest first): ``|``, ``^``, ``&``, unary ``~``.
    Produces a nested-tuple AST: ``("var", name)``, ``("const", 0|1)``,
    ``("not", x)``, ``("and"|"or"|"xor", x, y)``, ``("maj", x, y, z)``.
    """

    _TOKEN_RE = re.compile(
        r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<const>[01])"
        r"|(?P<op>[~&^|(),!]))")

    def __init__(self, text: str, inputs: Sequence[str]):
        self.text = text
        self.inputs = set(inputs)
        self.tokens = self._tokenize(text)
        self.pos = 0

    def _tokenize(self, text: str) -> List[str]:
        tokens: List[str] = []
        index = 0
        while index < len(text):
            match = self._TOKEN_RE.match(text, index)
            if match is None:
                if text[index:].strip():
                    raise ValueError(
                        f"unexpected character {text[index:].strip()[0]!r} "
                        f"in expression {text!r}")
                break
            tokens.append(match.group("name") or match.group("const")
                          or match.group("op"))
            index = match.end()
        return tokens

    def _peek(self) -> str:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else ""

    def _take(self) -> str:
        token = self._peek()
        self.pos += 1
        return token

    def _expect(self, token: str) -> None:
        got = self._take()
        if got != token:
            raise ValueError(f"expected {token!r} in expression "
                             f"{self.text!r}, got {got or 'end'!r}")

    def parse(self) -> Tuple:
        tree = self._or()
        if self.pos != len(self.tokens):
            raise ValueError(f"trailing tokens after expression in "
                             f"{self.text!r}: {self.tokens[self.pos:]}")
        return tree

    def _or(self) -> Tuple:
        left = self._xor()
        while self._peek() == "|":
            self._take()
            left = ("or", left, self._xor())
        return left

    def _xor(self) -> Tuple:
        left = self._and()
        while self._peek() == "^":
            self._take()
            left = ("xor", left, self._and())
        return left

    def _and(self) -> Tuple:
        left = self._unary()
        while self._peek() == "&":
            self._take()
            left = ("and", left, self._unary())
        return left

    def _unary(self) -> Tuple:
        token = self._peek()
        if token in ("~", "!"):
            self._take()
            return ("not", self._unary())
        if token == "(":
            self._take()
            tree = self._or()
            self._expect(")")
            return tree
        if token in ("0", "1"):
            self._take()
            return ("const", int(token))
        if _NAME_RE.match(token or ""):
            self._take()
            if token.lower() == "maj" and self._peek() == "(":
                self._take()
                args = [self._or()]
                while self._peek() == ",":
                    self._take()
                    args.append(self._or())
                self._expect(")")
                if len(args) != 3:
                    raise ValueError(
                        f"maj() takes exactly 3 arguments in {self.text!r}")
                return ("maj",) + tuple(args)
            if token not in self.inputs:
                raise ValueError(f"unknown input {token!r} in expression "
                                 f"{self.text!r}; declared inputs: "
                                 f"{sorted(self.inputs)}")
            return ("var", token)
        raise ValueError(f"malformed expression {self.text!r}")


def parse_expression(text: str, inputs: Sequence[str]) -> Tuple:
    """Parse one definition expression into its AST (see _ExprParser)."""
    return _ExprParser(text, inputs).parse()


def evaluate_expression(tree: Tuple, values: Mapping[str, int]) -> int:
    """Evaluate an expression AST on one input assignment."""
    kind = tree[0]
    if kind == "var":
        return values[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "not":
        return 1 - evaluate_expression(tree[1], values)
    args = [evaluate_expression(sub, values) for sub in tree[1:]]
    if kind == "and":
        return args[0] & args[1]
    if kind == "or":
        return args[0] | args[1]
    if kind == "xor":
        return args[0] ^ args[1]
    if kind == "maj":
        return majority(*args)
    raise ValueError(f"unknown AST node {kind!r}")


# -- the spec -----------------------------------------------------------------------

@dataclass(frozen=True)
class CircuitSpec:
    """A named boolean function: the compiler's input contract.

    Attributes
    ----------
    name:
        Circuit name (used for report files and telemetry labels).
    inputs:
        Ordered primary input names; the first is the most significant
        bit of truth-table indexing.
    outputs:
        Output name -> definition (truth-table bit string of length
        ``2^len(inputs)``, or an expression -- see the module
        docstring).
    """

    name: str
    inputs: Tuple[str, ...]
    outputs: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(f"bad circuit name {self.name!r}")
        if not self.inputs:
            raise ValueError("spec needs at least one input")
        if len(self.inputs) > MAX_INPUTS:
            raise ValueError(
                f"{len(self.inputs)} inputs exceed the compiler's "
                f"{MAX_INPUTS}-input budget (truth-table equivalence is "
                "checked exhaustively)")
        if len(set(self.inputs)) != len(self.inputs):
            raise ValueError(f"duplicate input names in {self.inputs}")
        for net in self.inputs:
            if not _NAME_RE.match(net):
                raise ValueError(f"bad input name {net!r}")
        if not self.outputs:
            raise ValueError("spec needs at least one output")
        for out, definition in self.outputs.items():
            if not _NAME_RE.match(out):
                raise ValueError(f"bad output name {out!r}")
            if out in self.inputs:
                raise ValueError(f"output {out!r} shadows an input")
            if not isinstance(definition, str) or not definition.strip():
                raise ValueError(f"output {out!r} needs a truth table or "
                                 "expression string")
        # Parse/validate every definition now: a malformed spec must
        # fail at the front door, not mid-compile.
        for out in self.outputs:
            self.truth_table(out)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CircuitSpec":
        """Build a spec from its JSON form.

        ``{"name": ..., "inputs": [...], "outputs": {out: def, ...}}``;
        ``name`` defaults to ``"circuit"``.
        """
        if not isinstance(payload, Mapping):
            raise ValueError("spec must be a JSON object")
        unknown = set(payload) - {"name", "inputs", "outputs"}
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        inputs = payload.get("inputs")
        if not isinstance(inputs, (list, tuple)):
            raise ValueError("spec 'inputs' must be a list of names")
        outputs = payload.get("outputs")
        if not isinstance(outputs, Mapping):
            raise ValueError("spec 'outputs' must be an object "
                             "{name: truth table or expression}")
        return cls(name=str(payload.get("name", "circuit")),
                   inputs=tuple(str(net) for net in inputs),
                   outputs={str(k): str(v) for k, v in outputs.items()})

    @classmethod
    def from_json(cls, text: str) -> "CircuitSpec":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"invalid spec JSON: {exc}")
        return cls.from_dict(payload)

    @classmethod
    def from_equations(cls, text: str,
                       name: str = "circuit") -> "CircuitSpec":
        """Parse the CLI shorthand ``out1 = expr1; out2 = expr2``.

        Inputs are inferred: every name referenced on a right-hand side
        that is not itself an output, in first-appearance order.
        """
        outputs: Dict[str, str] = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            lhs, sep, rhs = clause.partition("=")
            if not sep:
                raise ValueError(f"equation {clause!r} is missing '='; "
                                 "expected 'out = expression'")
            out = lhs.strip()
            if not _NAME_RE.match(out):
                raise ValueError(f"bad output name {out!r}")
            if out in outputs:
                raise ValueError(f"output {out!r} defined twice")
            outputs[out] = rhs.strip()
        if not outputs:
            raise ValueError("no equations found; expected "
                             "'out = expression [; ...]'")
        inputs: List[str] = []
        for rhs in outputs.values():
            for token in re.findall(r"[A-Za-z_][A-Za-z0-9_]*", rhs):
                if (token.lower() != "maj" and token not in outputs
                        and token not in inputs):
                    inputs.append(token)
        return cls(name=name, inputs=tuple(inputs), outputs=outputs)

    # -- queries --------------------------------------------------------------

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def truth_table(self, output: str) -> TruthTable:
        """The output's truth table in counting order of the inputs."""
        definition = self.outputs[output].strip()
        n = 1 << self.n_inputs
        if _TABLE_RE.match(definition):
            if len(definition) != n:
                raise ValueError(
                    f"output {output!r}: truth table has "
                    f"{len(definition)} bits, expected {n} for "
                    f"{self.n_inputs} inputs")
            return tuple(int(c) for c in definition)
        tree = parse_expression(definition, self.inputs)
        table = []
        for bits in input_patterns(self.n_inputs):
            table.append(evaluate_expression(
                tree, dict(zip(self.inputs, bits))))
        return tuple(table)

    def truth_tables(self) -> Dict[str, TruthTable]:
        """All outputs' truth tables."""
        return {out: self.truth_table(out) for out in self.outputs}

    def reference(self) -> Callable[[Mapping[str, int]], Dict[str, int]]:
        """A reference evaluator (input dict -> output dict) for
        equivalence checks against a synthesised netlist."""
        tables = self.truth_tables()

        def evaluate(assignment: Mapping[str, int]) -> Dict[str, int]:
            index = 0
            for net in self.inputs:
                index = (index << 1) | int(assignment[net])
            return {out: table[index] for out, table in tables.items()}

        return evaluate

    def to_dict(self) -> Dict[str, Any]:
        """The canonical JSON form (round-trips through from_dict)."""
        return {"name": self.name, "inputs": list(self.inputs),
                "outputs": dict(self.outputs)}


#: Ready-made specs for the CLI (``python -m repro compile maj3``) and
#: the docs: the paper's two gates plus the Section II-B motivators.
BUILTIN_SPECS: Dict[str, Dict[str, Any]] = {
    "maj3": {"name": "maj3", "inputs": ["a", "b", "c"],
             "outputs": {"y": "maj(a, b, c)"}},
    "xor2": {"name": "xor2", "inputs": ["a", "b"],
             "outputs": {"y": "a ^ b"}},
    "full_adder": {"name": "full_adder", "inputs": ["a", "b", "cin"],
                   "outputs": {"sum": "a ^ b ^ cin",
                               "carry": "maj(a, b, cin)"}},
    "parity4": {"name": "parity4", "inputs": ["d0", "d1", "d2", "d3"],
                "outputs": {"p": "d0 ^ d1 ^ d2 ^ d3"}},
    "and_or": {"name": "and_or", "inputs": ["a", "b", "c"],
               "outputs": {"y": "(a & b) | c"}},
}


def load_spec(source: str) -> CircuitSpec:
    """Resolve a CLI spec argument to a :class:`CircuitSpec`.

    Accepts, in order of precedence: a builtin name (``maj3``,
    ``full_adder``...), inline JSON (starts with ``{``), an inline
    equation list (contains ``=``), or a path to a JSON spec file.
    """
    text = source.strip()
    if text in BUILTIN_SPECS:
        return CircuitSpec.from_dict(BUILTIN_SPECS[text])
    if text.startswith("{"):
        return CircuitSpec.from_json(text)
    if "=" in text:
        return CircuitSpec.from_equations(text)
    import os

    if os.path.exists(text):
        with open(text, "r", encoding="utf-8") as handle:
            return CircuitSpec.from_json(handle.read())
    raise ValueError(
        f"spec {source!r} is neither a builtin ({sorted(BUILTIN_SPECS)}), "
        "inline JSON, an equation list ('y = a ^ b'), nor a spec file")
