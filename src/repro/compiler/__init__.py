"""repro.compiler: spec -> placed triangle-gate fabric, OpenRAM-style.

The paper's claim is that the triangle FO2 gate is a *composable*
building block; this subsystem makes the claim executable.  Given an
arbitrary boolean function (truth table or expression, up to
:data:`~repro.compiler.spec.MAX_INPUTS` inputs), it

* **synthesizes** a majority/XOR netlist over the triangle library,
  planning every physical copy against the fan-out-of-2 budget
  (:mod:`~repro.compiler.synth`);
* **places and routes** it on a 2-D fabric with all coordinates in
  design-wavelength (lambda) multiples (:mod:`~repro.compiler.place`);
* **design-rule checks** the result -- d1..d4 phase multiples, gate
  spacings, waveguide crossings, FO2 budget -- raising typed
  :class:`repro.errors.DRCViolation` errors that name the offending
  pair (:mod:`~repro.compiler.drc`);
* **auto-characterizes** each compiled circuit for energy, delay,
  area, CMOS equivalents and per-tier error rates
  (:mod:`~repro.compiler.characterize`).

Entry points: :func:`compile_spec` in Python,
``python -m repro compile <spec>`` on the command line, and
``POST /v1/compile`` on the serving tier (cached + coalesced through
:func:`compile_job`).
"""

from .api import (
    CompileResult,
    compile_job,
    compile_spec,
    netlist_from_dict,
    netlist_to_dict,
)
from .characterize import (
    CharacterizationReport,
    characterize,
    measure_error_rates,
    verify_functional,
    write_report,
)
from .drc import DesignRules, DRCReport, check as run_drc
from .place import PlacedGate, Placement, Wire, place
from .spec import (
    BUILTIN_SPECS,
    MAX_INPUTS,
    CircuitSpec,
    load_spec,
    parse_expression,
)
from .synth import minimal_sop, synthesize, table_to_ast

__all__ = [
    "BUILTIN_SPECS",
    "MAX_INPUTS",
    "CharacterizationReport",
    "CircuitSpec",
    "CompileResult",
    "DRCReport",
    "DesignRules",
    "PlacedGate",
    "Placement",
    "Wire",
    "characterize",
    "compile_job",
    "compile_spec",
    "load_spec",
    "measure_error_rates",
    "minimal_sop",
    "netlist_from_dict",
    "netlist_to_dict",
    "parse_expression",
    "place",
    "run_drc",
    "synthesize",
    "table_to_ast",
    "verify_functional",
    "write_report",
]
