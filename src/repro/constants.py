"""Physical constants used throughout the spin-wave gate reproduction.

All values are CODATA-2018 in SI units.  The micromagnetics community
conventionally works with the *reduced* gyromagnetic ratio
``gamma = |gamma_e| = g_e * mu_B / hbar`` (positive, rad s^-1 T^-1 after
multiplication by mu0*H); MuMax3 uses ``gamma_LL = 1.7595e11 rad/(T s)``
which we adopt verbatim so that our Landau-Lifshitz-Gilbert (LLG)
integration matches the solver the paper used.
"""

from __future__ import annotations

import math

#: Vacuum permeability [T m / A].
MU0 = 4.0e-7 * math.pi

#: Reduced Planck constant [J s].
HBAR = 1.054571817e-34

#: Boltzmann constant [J / K].
KB = 1.380649e-23

#: Bohr magneton [J / T].
MU_B = 9.2740100783e-24

#: Electron g-factor (dimensionless, magnitude).
G_E = 2.00231930436256

#: Gyromagnetic ratio used by MuMax3 [rad / (T s)] -- the Landau-Lifshitz
#: convention value for a free electron.
GAMMA_LL = 1.7595e11

#: gamma * mu0 / (2 pi) -- converts field in A/m straight to linear
#: frequency in Hz; equals ~28.02 GHz/T divided into A/m units.
GAMMA_MU0_OVER_2PI = GAMMA_LL * MU0 / (2.0 * math.pi)

#: Elementary charge [C] (used by the CMOS energy sanity checks).
ELEMENTARY_CHARGE = 1.602176634e-19


def gyromagnetic_ratio(g_factor: float = G_E) -> float:
    """Return the gyromagnetic ratio ``g * mu_B / hbar`` for a given g-factor.

    Parameters
    ----------
    g_factor:
        Spectroscopic g-factor of the material.  Defaults to the free
        electron value.

    Returns
    -------
    float
        Gyromagnetic ratio in rad / (T s).
    """
    return g_factor * MU_B / HBAR
