"""Small SI-unit helper layer.

The spin-wave literature mixes nanometres, GHz, aJ, rad/um and A/m freely;
keeping raw floats in base SI units but *constructing* and *formatting*
them through this module removes an entire class of power-of-ten bugs.

The helpers are deliberately plain functions over floats rather than a
quantity class: the numerical kernels (LLG right-hand sides, FDTD update
loops) must stay allocation-free NumPy code, so values inside the solvers
are bare SI floats/arrays and units only appear at the API boundary.
"""

from __future__ import annotations

import math
from typing import Tuple

# ---------------------------------------------------------------------------
# SI prefixes
# ---------------------------------------------------------------------------

#: Multiplier for each supported SI prefix symbol.
SI_PREFIXES = {
    "y": 1e-24,
    "z": 1e-21,
    "a": 1e-18,
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "µ": 1e-6,
    "m": 1e-3,
    "": 1.0,
    "k": 1e3,
    "M": 1e6,
    "G": 1e9,
    "T": 1e12,
}

_PREFIX_BY_EXPONENT = {
    -24: "y", -21: "z", -18: "a", -15: "f", -12: "p", -9: "n",
    -6: "u", -3: "m", 0: "", 3: "k", 6: "M", 9: "G", 12: "T",
}


def nm(value: float) -> float:
    """Nanometres to metres."""
    return value * 1e-9


def um(value: float) -> float:
    """Micrometres to metres."""
    return value * 1e-6


def ns(value: float) -> float:
    """Nanoseconds to seconds."""
    return value * 1e-9


def ps(value: float) -> float:
    """Picoseconds to seconds."""
    return value * 1e-12

def fs(value: float) -> float:
    """Femtoseconds to seconds."""
    return value * 1e-15


def ghz(value: float) -> float:
    """Gigahertz to hertz."""
    return value * 1e9


def mhz(value: float) -> float:
    """Megahertz to hertz."""
    return value * 1e6


def aj(value: float) -> float:
    """Attojoules to joules."""
    return value * 1e-18


def nw(value: float) -> float:
    """Nanowatts to watts."""
    return value * 1e-9


def rad_per_um(value: float) -> float:
    """rad/um to rad/m (wave numbers)."""
    return value * 1e6


def ka_per_m(value: float) -> float:
    """kA/m to A/m (magnetisation, fields)."""
    return value * 1e3


def mj_per_m3(value: float) -> float:
    """MJ/m^3 to J/m^3 (anisotropy constants)."""
    return value * 1e6


def pj_per_m(value: float) -> float:
    """pJ/m to J/m (exchange stiffness)."""
    return value * 1e-12


# ---------------------------------------------------------------------------
# Formatting / parsing
# ---------------------------------------------------------------------------

def to_engineering(value: float) -> Tuple[float, str]:
    """Split ``value`` into mantissa and SI prefix.

    >>> to_engineering(5.5e-8)
    (55.0, 'n')

    Returns
    -------
    tuple
        ``(mantissa, prefix)`` such that ``mantissa * SI_PREFIXES[prefix]``
        reconstructs ``value`` (up to floating point rounding).
    """
    if value == 0.0 or not math.isfinite(value):
        return value, ""
    exponent = int(math.floor(math.log10(abs(value)) / 3.0) * 3)
    exponent = max(-24, min(12, exponent))
    prefix = _PREFIX_BY_EXPONENT[exponent]
    return value / (10.0 ** exponent), prefix


def format_quantity(value: float, unit: str, digits: int = 3) -> str:
    """Format a raw SI value with an automatic engineering prefix.

    >>> format_quantity(5.5e-8, 'm')
    '55 nm'
    """
    mantissa, prefix = to_engineering(value)
    text = f"{mantissa:.{digits}g}"
    return f"{text} {prefix}{unit}"


def parse_quantity(text: str) -> float:
    """Parse a string such as ``"55 nm"`` or ``"10GHz"`` into base SI.

    Only the single-character prefixes from :data:`SI_PREFIXES` are
    understood.  The unit itself is not validated -- callers know which
    dimension they expect.

    Raises
    ------
    ValueError
        If no leading number can be parsed.
    """
    stripped = text.strip()
    index = 0
    while index < len(stripped) and (stripped[index].isdigit()
                                     or stripped[index] in "+-.eE"):
        # Guard against consuming the exponent marker of a unit like 'eV'.
        if stripped[index] in "eE":
            remainder = stripped[index + 1:index + 2]
            if not (remainder.isdigit() or remainder in "+-"):
                break
        index += 1
    number_part = stripped[:index]
    unit_part = stripped[index:].strip()
    if not number_part:
        raise ValueError(f"no numeric part in quantity {text!r}")
    value = float(number_part)
    if unit_part and unit_part[0] in SI_PREFIXES and len(unit_part) > 1:
        value *= SI_PREFIXES[unit_part[0]]
    return value
