"""Colour mapping and image export for field snapshots.

Figure 5 of the paper renders the dynamic magnetisation with "blue
represents logic 0 and red logic 1"; this module provides the matching
diverging blue-white-red colormap, plus dependency-free PPM/PGM
writers so the benches can save genuine image files without
matplotlib.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

#: Anchor colours of the diverging map (negative, zero, positive).
_BLUE = np.array([33, 74, 185], dtype=float)
_WHITE = np.array([247, 247, 247], dtype=float)
_RED = np.array([187, 28, 38], dtype=float)


def diverging_rgb(values: np.ndarray, vmax: Optional[float] = None,
                  background: Tuple[int, int, int] = (20, 20, 20),
                  mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Map signed values to a blue-white-red RGB image.

    Parameters
    ----------
    values:
        2-D signed field (e.g. ``field_map(...).real``).
    vmax:
        Symmetric colour range; defaults to ``max(|values|)``.
    background:
        RGB for cells outside ``mask`` (vacuum).
    mask:
        Optional boolean 2-D mask of valid cells.

    Returns
    -------
    numpy.ndarray
        ``(ny, nx, 3)`` uint8 image.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be 2-D")
    limit = vmax if vmax is not None else float(np.max(np.abs(values)))
    if limit <= 0:
        limit = 1.0
    t = np.clip(values / limit, -1.0, 1.0)

    image = np.empty(values.shape + (3,), dtype=float)
    negative = t < 0
    # Interpolate white -> blue for negatives, white -> red for positives.
    for c in range(3):
        image[..., c] = np.where(
            negative,
            _WHITE[c] + (-t) * (_BLUE[c] - _WHITE[c]),
            _WHITE[c] + t * (_RED[c] - _WHITE[c]))
    if mask is not None:
        for c in range(3):
            channel = image[..., c]
            channel[~mask] = background[c]
    return np.clip(image, 0, 255).astype(np.uint8)


def amplitude_gray(values: np.ndarray, vmax: Optional[float] = None,
                   mask: Optional[np.ndarray] = None) -> np.ndarray:
    """Map non-negative amplitudes to an 8-bit grayscale image."""
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be 2-D")
    if np.any(values < 0):
        raise ValueError("amplitudes must be non-negative")
    limit = vmax if vmax is not None else float(values.max())
    if limit <= 0:
        limit = 1.0
    image = np.clip(values / limit, 0.0, 1.0) * 255.0
    if mask is not None:
        image = np.where(mask, image, 0.0)
    return image.astype(np.uint8)


def write_ppm(path: str, image: np.ndarray) -> None:
    """Write an ``(ny, nx, 3)`` uint8 array as binary PPM (P6)."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise ValueError("image must be (ny, nx, 3) uint8")
    ny, nx, _ = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{nx} {ny}\n255\n".encode("ascii"))
        # PPM rows run top to bottom; our y axis points up.
        handle.write(image[::-1, :, :].tobytes())


def write_pgm(path: str, image: np.ndarray) -> None:
    """Write an ``(ny, nx)`` uint8 array as binary PGM (P5)."""
    image = np.asarray(image)
    if image.ndim != 2 or image.dtype != np.uint8:
        raise ValueError("image must be (ny, nx) uint8")
    ny, nx = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P5\n{nx} {ny}\n255\n".encode("ascii"))
        handle.write(image[::-1, :].tobytes())


def snapshot_grid(images: "list[np.ndarray]", columns: int = 4,
                  gap: int = 4,
                  background: Tuple[int, int, int] = (0, 0, 0)
                  ) -> np.ndarray:
    """Tile equally sized RGB snapshots into one contact-sheet image.

    Used by the Figure 5 bench to compose the a)-h) panels.
    """
    if not images:
        raise ValueError("no images to tile")
    shape = images[0].shape
    for img in images:
        if img.shape != shape:
            raise ValueError("all snapshots must share one shape")
    ny, nx, _ = shape
    rows = (len(images) + columns - 1) // columns
    sheet = np.zeros((rows * ny + (rows - 1) * gap,
                      columns * nx + (columns - 1) * gap, 3), dtype=np.uint8)
    for c in range(3):
        sheet[..., c] = background[c]
    for index, img in enumerate(images):
        r, c = divmod(index, columns)
        y0 = r * (ny + gap)
        x0 = c * (nx + gap)
        sheet[y0:y0 + ny, x0:x0 + nx, :] = img
    return sheet
