"""Rendering helpers: MuMax3-style colour maps, PPM/PGM writers, SVG
layout drawings."""

from .colormap import amplitude_gray, diverging_rgb, snapshot_grid, write_pgm, write_ppm
from .svg import layout_to_svg, save_layout_svg

__all__ = ["amplitude_gray", "diverging_rgb", "snapshot_grid",
           "write_pgm", "write_ppm", "layout_to_svg", "save_layout_svg"]
