"""SVG rendering of gate layouts (documentation-quality figures).

Dependency-free vector rendering of :class:`~repro.core.layout.GateLayout`
objects: waveguide strips as rounded rectangles, terminals as labelled
circles -- the Figure 3 / Figure 4 style drawings, regenerated from the
actual layout solver so they are dimensionally exact.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..core.layout import GateLayout

_INPUT_COLOR = "#1f77b4"
_OUTPUT_COLOR = "#d62728"
_GUIDE_COLOR = "#888888"
_JUNCTION_COLOR = "#444444"


def layout_to_svg(layout: GateLayout, scale: float = 0.4e9,
                  margin: float = 60.0,
                  title: Optional[str] = None) -> str:
    """Render a gate layout as an SVG document string.

    Parameters
    ----------
    layout:
        Any gate layout (MAJ3, XOR, scaled variants).
    scale:
        Pixels per metre (0.4e9 = 0.4 px/nm suits the 55 nm designs).
    margin:
        Canvas padding in pixels.
    title:
        Optional caption rendered above the device.
    """
    x_min, y_min, x_max, y_max = layout.bounding_box()
    width_px = (x_max - x_min) * scale + 2 * margin
    height_px = (y_max - y_min) * scale + 2 * margin
    offset_x = margin - x_min * scale
    offset_y = height_px - (margin - y_min * scale)

    def to_pixels(point):
        # SVG y grows downward: flip the physical y axis.
        return point[0] * scale + offset_x, offset_y - point[1] * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px:.0f}" height="{height_px:.0f}" '
        f'viewBox="0 0 {width_px:.0f} {height_px:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    if title:
        parts.append(f'<text x="{width_px / 2:.0f}" y="24" '
                     'text-anchor="middle" font-family="sans-serif" '
                     f'font-size="16">{title}</text>')

    # Waveguide strips: rotated rounded rectangles, half a width of
    # overhang at both ends so junctions close cleanly (mirroring the
    # rasteriser's extend_ends behaviour).
    guide_width = layout.dimensions.width
    for seg in layout.segments:
        (sx, sy), (ex, ey) = to_pixels(seg.start), to_pixels(seg.end)
        length = math.hypot(ex - sx, ey - sy)
        angle = math.degrees(math.atan2(ey - sy, ex - sx))
        cx, cy = (sx + ex) / 2, (sy + ey) / 2
        half_len = length / 2 + guide_width * scale / 2
        half_w = guide_width * scale / 2
        parts.append(
            f'<rect x="{cx - half_len:.2f}" y="{cy - half_w:.2f}" '
            f'width="{2 * half_len:.2f}" height="{2 * half_w:.2f}" '
            f'rx="{half_w:.2f}" fill="{_GUIDE_COLOR}" '
            f'fill-opacity="0.55" '
            f'transform="rotate({angle:.3f} {cx:.2f} {cy:.2f})"/>')

    # Terminals and junctions.
    radius = max(6.0, guide_width * scale * 0.7)
    for name, point in layout.nodes.items():
        x, y = to_pixels(point)
        if name.startswith("I"):
            color = _INPUT_COLOR
        elif name.startswith("O"):
            color = _OUTPUT_COLOR
        else:
            color = _JUNCTION_COLOR
        r = radius if name[0] in "IO" else radius * 0.45
        parts.append(f'<circle cx="{x:.2f}" cy="{y:.2f}" r="{r:.2f}" '
                     f'fill="{color}"/>')
        if name[0] in "IO":
            parts.append(
                f'<text x="{x:.2f}" y="{y - r - 4:.2f}" '
                'text-anchor="middle" font-family="sans-serif" '
                f'font-size="13" fill="{color}">{name}</text>')

    # Dimension legend (bottom-left).
    dims = layout.dimensions
    legend = [f"lambda = {dims.wavelength * 1e9:.0f} nm",
              f"w = {dims.width * 1e9:.0f} nm",
              f"d1 = {dims.d1 * 1e9:.0f} nm"]
    if dims.d2:
        legend += [f"d2 = {dims.d2 * 1e9:.0f} nm",
                   f"d3 = {dims.d3 * 1e9:.0f} nm",
                   f"d4 = {dims.d4 * 1e9:.0f} nm"]
    if dims.d2_xor:
        legend.append(f"d2 = {dims.d2_xor * 1e9:.0f} nm")
    for index, text in enumerate(legend):
        y = height_px - 12 - 16 * (len(legend) - 1 - index)
        parts.append(f'<text x="12" y="{y:.0f}" '
                     'font-family="monospace" font-size="12" '
                     f'fill="#333">{text}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def save_layout_svg(layout: GateLayout, path: str, **kwargs) -> None:
    """Write a layout SVG to ``path``."""
    with open(path, "w") as handle:
        handle.write(layout_to_svg(layout, **kwargs))
